"""Setuptools configuration.

The offline environment this repository targets has no ``wheel`` package, so
PEP 517 editable installs (which build a wheel) are not available.  Keeping a
metadata-bearing ``setup.py`` allows the legacy editable install path::

    pip install -e . --no-build-isolation --no-use-pep517

which also puts the ``repro`` console script on PATH (equivalent to
``python -m repro``).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def _read_version() -> str:
    init = Path(__file__).parent / "src" / "repro" / "__init__.py"
    match = re.search(r'^__version__ = "([^"]+)"', init.read_text(), re.MULTILINE)
    if match is None:
        raise RuntimeError("could not find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-massivegnn",
    version=_read_version(),
    description=(
        "MassiveGNN reproduction: prefetching and eviction for distributed GNN "
        "training (CLUSTER 2024), in pure Python/NumPy"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
