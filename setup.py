"""Setuptools shim.

The offline environment this repository targets has no ``wheel`` package, so
PEP 517 editable installs (which build a wheel) are not available.  Keeping a
``setup.py`` allows the legacy editable install path::

    pip install -e . --no-build-isolation --no-use-pep517

All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
