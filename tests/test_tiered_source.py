"""Integration tests: the tiered cache wired into sources, engines, scenarios.

The heart of the suite is differential: the default
:class:`~repro.cache.config.CacheConfig` must make the tier-backed data path
**bit-identical** to the pre-tier static cache — same rows, same FetchStats,
same losses and simulated times — while the non-default configurations are
pinned for their intended behavior (shared-tier wire reduction, adaptive
controller activity, hot-set drift).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.core.config import PrefetchConfig
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.features import SourceContext, StaticDegreeCacheSource, build_feature_source
from repro.features.sources import TieredCacheSource
from repro.sampling.seeds import SeedIterator
from repro.scenarios import SCENARIOS
from repro.training.cluster_engine import ClusterEngine
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine

PREFETCH = dict(halo_fraction=0.25, gamma=0.995, delta=8)


@pytest.fixture()
def trainer(small_cluster):
    small_cluster.reset()
    return small_cluster.trainers[0]


def make_ctx(small_cluster, trainer, cache_config=None, shared_tier=None):
    return SourceContext(
        rpc=trainer.rpc,
        partition=trainer.partition,
        num_global_nodes=small_cluster.dataset.num_nodes,
        book=small_cluster.book,
        prefetch_config=PrefetchConfig(**PREFETCH),
        seed=0,
        cache_config=cache_config,
        shared_tier=shared_tier,
    )


class TestTieredSourceDefaultEquivalence:
    """Default config == the historical static cache, stat for stat."""

    def test_fetch_stats_match_static_cache_exactly(self, small_cluster, trainer):
        static = build_feature_source("static-cache", make_ctx(small_cluster, trainer))
        report_a = static.initialize()
        small_cluster.reset()
        tiered = build_feature_source("tiered-cache", make_ctx(small_cluster, trainer))
        report_b = tiered.initialize()
        assert isinstance(static, StaticDegreeCacheSource)
        assert isinstance(tiered, TieredCacheSource)
        assert report_a == report_b

        halo = trainer.partition.halo_global
        for batch in (halo[:40], halo[5:25], halo[:0], np.repeat(halo[:6], 2)):
            rows_a, stats_a = static.fetch(batch)
            rows_b, stats_b = tiered.fetch(batch)
            np.testing.assert_array_equal(rows_a, rows_b)
            assert stats_a.num_hits == stats_b.num_hits
            assert stats_a.num_misses == stats_b.num_misses
            assert stats_a.rpc_time_s == stats_b.rpc_time_s
            assert stats_a.bytes_fetched == stats_b.bytes_fetched
            assert stats_a.remote_nodes_fetched == stats_b.remote_nodes_fetched
            assert stats_a.lookup_nodes == stats_b.lookup_nodes
            assert stats_a.buffer_capacity == stats_b.buffer_capacity
            assert stats_b.tier_counters == {}  # default config: legacy flat schema
        assert static.summary() == tiered.summary()

    def test_static_cache_exposes_legacy_introspection(self, small_cluster, trainer):
        source = build_feature_source("static-cache", make_ctx(small_cluster, trainer))
        source.initialize()
        cached = source._cached_ids
        assert np.all(np.diff(cached) > 0)  # ascending, unique
        assert len(cached) == source.hot_tier.size

    def test_engine_runs_bit_identical(self, small_dataset, quick_train_config):
        # Fresh clusters per run: RNG streams advance across runs on a shared
        # cluster, so a differential comparison needs identical start states.
        def run(pipeline, cache_config=None):
            cluster = SimCluster(
                small_dataset,
                ClusterConfig(num_machines=2, trainers_per_machine=2,
                              batch_size=128, fanouts=(5, 10), seed=11),
            )
            engine = TrainingEngine(cluster, quick_train_config)
            return engine.run_pipeline(
                pipeline,
                prefetch_config=PrefetchConfig(**PREFETCH),
                cache_config=cache_config,
            )

        static = run("static-cache")
        tiered = run("tiered-cache", CacheConfig())
        assert [r.loss for r in static.epoch_records] == [
            r.loss for r in tiered.epoch_records
        ]
        assert [r.simulated_time_s for r in static.epoch_records] == [
            r.simulated_time_s for r in tiered.epoch_records
        ]
        assert static.hit_rate == tiered.hit_rate
        assert static.rpc_stats.as_extended_dict() == tiered.rpc_stats.as_extended_dict()


class TestTieredSourceEdgeCases:
    def test_zero_capacity_budget_serves_correct_rows(self, small_cluster, trainer):
        source = TieredCacheSource(
            trainer.rpc, trainer.partition, capacity=0,
            cache_config=CacheConfig(admission="always", eviction="lru"),
        )
        report = source.initialize()
        assert report["num_prefetched"] == 0.0
        halo = trainer.partition.halo_global[:12]
        rows, stats = source.fetch(halo)
        np.testing.assert_array_equal(rows, small_cluster.dataset.features[halo])
        assert stats.num_hits == 0 and stats.num_misses == 12
        assert source.stack.total_resident == 0

    def test_empty_fetch_counts_nothing(self, small_cluster, trainer):
        source = build_feature_source("tiered-cache", make_ctx(small_cluster, trainer))
        source.initialize()
        before = trainer.rpc.stats.as_dict()
        rows, stats = source.fetch(np.zeros(0, dtype=np.int64))
        assert rows.shape[0] == 0
        assert stats.num_requested == 0 and stats.rpc_time_s == 0.0
        assert trainer.rpc.stats.as_dict() == before  # zero-miss fetch: no RPC traffic

    def test_repeated_batches_converge_to_all_hits(self, small_cluster, trainer):
        source = build_feature_source(
            "tiered-cache",
            make_ctx(small_cluster, trainer,
                     cache_config=CacheConfig(admission="always", eviction="lru")),
        )
        source.initialize()
        batch = trainer.partition.halo_global[:30]
        # Two warm-up rounds: at step 0 the seeded rows and the fresh hits tie
        # on recency, so LRU may churn batch members once before converging.
        source.fetch(batch)
        source.fetch(batch)
        wire_before = trainer.rpc.stats.nodes_fetched
        rows, stats = source.fetch(batch)
        np.testing.assert_array_equal(rows, small_cluster.dataset.features[batch])
        assert stats.num_hits == 30 and stats.num_misses == 0
        assert trainer.rpc.stats.nodes_fetched == wire_before

    def test_fetch_before_initialize_raises(self, small_cluster, trainer):
        source = build_feature_source("tiered-cache", make_ctx(small_cluster, trainer))
        with pytest.raises(RuntimeError, match="initialize"):
            source.fetch(trainer.partition.halo_global[:2])


class TestSharedTierAcrossTrainers:
    def _products_cluster(self, products_dataset):
        return SimCluster(
            products_dataset,
            ClusterConfig(
                num_machines=2, trainers_per_machine=2,
                batch_size=64, fanouts=(5, 10), seed=3,
            ),
        )

    def test_prefetch_with_shared_tier_keeps_numerics_cuts_wire_rows(
        self, products_dataset
    ):
        # Fresh cluster per run (RNG streams advance across runs).
        def run(cache_config=None):
            cluster = self._products_cluster(products_dataset)
            engine = ClusterEngine(cluster, TrainConfig(epochs=2, hidden_dim=32, seed=1))
            return engine.run(
                "prefetch",
                prefetch_config=PrefetchConfig(**PREFETCH),
                cache_config=cache_config,
            )

        plain = run()
        plain_losses = [r.loss for r in plain.report.epoch_records]
        plain_wire = plain.report.rpc_stats.nodes_fetched

        shared = run(
            CacheConfig(
                tiers=2, admission="always", eviction="lru",
                shared_admission="always", shared_eviction="lru",
            ),
        )
        shared_losses = [r.loss for r in shared.report.epoch_records]
        # Same minibatches, same feature values -> identical training numerics.
        assert plain_losses == shared_losses
        # Rows a machine peer already pulled ride the shared tier, not the wire.
        assert shared.report.rpc_stats.nodes_fetched < plain_wire
        # The shared tier counters surface in trainer cache stats.
        assert any(
            t.cache_stats.get("halo.tier.shared.hits", 0) > 0
            for t in shared.trainer_stats
        )

    def test_tiered_pipeline_shared_tier_is_per_machine(self, products_dataset):
        cluster = self._products_cluster(products_dataset)
        engine = ClusterEngine(cluster, TrainConfig(epochs=1, hidden_dim=32, seed=1))
        engine.run(
            "tiered-cache",
            prefetch_config=PrefetchConfig(**PREFETCH),
            cache_config=CacheConfig(tiers=2, admission="always", eviction="lru"),
        )
        tiers = cluster._shared_cache_tiers
        assert set(tiers) == {0, 1}
        # Both trainers on the machine funded the same tier instance.
        for machine, tier in tiers.items():
            contributions = [
                t for t in cluster.trainers if t.machine == machine
            ]
            assert tier.capacity > 0 and len(contributions) == 2

    def test_shared_tier_counters_counted_once_per_machine(self):
        # Regression: the shared tier is one object reported identically by
        # every trainer on its machine; cluster totals used to sum it per
        # trainer, multiplying shared evictions by trainers_per_machine.
        from repro.features.store import merge_store_summaries
        from repro.training.cluster_engine import ClusterReport, TrainerRunStats

        def trainer(rank, machine):
            return TrainerRunStats(
                global_rank=rank, machine=machine, local_rank=rank % 2,
                simulated_time_s=1.0, barrier_wait_s=0.0, num_steps=1,
                cache_stats={
                    "halo.tier.hot.evictions": 3.0,
                    "halo.tier.shared.evictions": 10.0,   # same tier, same value
                    "halo.tier.shared.hit_rate": 0.5,
                },
            )

        report = ClusterReport(
            report=None,  # totals below only read trainer_stats
            trainer_stats=[trainer(0, 0), trainer(1, 0), trainer(2, 1), trainer(3, 1)],
        )
        # 4 trainers x 3 hot + one shared tier of 10 per machine x 2 machines.
        assert report.total_tier_evictions == 4 * 3 + 2 * 10
        merged = merge_store_summaries(
            [t.cache_stats for t in report.trainer_stats]
        )
        assert merged["halo.tier.shared.evictions"] == 10.0   # averaged, not 40
        assert merged["halo.tier.hot.evictions"] == 12.0      # still summed

    def test_cluster_reset_drops_shared_tiers(self, products_dataset):
        cluster = self._products_cluster(products_dataset)
        cluster.shared_cache_tier(0, CacheConfig(tiers=2))
        assert cluster._shared_cache_tiers
        cluster.reset()
        assert cluster._shared_cache_tiers == {}


class TestAdaptiveControllerWiring:
    def test_controller_history_in_cluster_report(self, products_dataset):
        cluster = SimCluster(
            products_dataset,
            ClusterConfig(num_machines=2, trainers_per_machine=2,
                          batch_size=64, fanouts=(5, 10), seed=3),
        )
        engine = ClusterEngine(cluster, TrainConfig(epochs=3, hidden_dim=32, seed=1))
        report = engine.run(
            "tiered-cache",
            prefetch_config=PrefetchConfig(halo_fraction=0.1, gamma=0.995, delta=8),
            cache_config=CacheConfig(
                tiers=2, admission="always", eviction="clock", adaptive=True
            ),
        )
        adjustments = report.store_summary.get("halo.controller.adjustments", 0.0)
        assert adjustments > 0
        rates = report.mean_tier_hit_rates()
        assert "halo.tier.hot" in rates and "halo.tier.shared" in rates
        assert "cache.halo.tier.hot.hit_rate" in report.summary()


class TestCacheCLIGuards:
    """The --cache-* flags never silently no-op (review regressions)."""

    def test_cache_flags_rejected_on_cacheless_pipelines(self, capsys):
        from repro.cli import main
        for pipeline in ("baseline", "static-cache"):
            code = main(["run", "--pipeline", pipeline, "--cache-tiers", "2",
                         "--scale", "0.05", "--epochs", "1"])
            assert code == 2
            assert "no effect" in capsys.readouterr().err

    def test_adaptive_without_two_tiers_exits(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--adaptive-cache", "--scale", "0.05", "--epochs", "1"])
        assert excinfo.value.code == 2
        assert "tiers=2" in capsys.readouterr().err

    def test_explicit_eviction_implies_open_admission(self):
        from repro.cli import _build_cache_config, build_parser
        args = build_parser().parse_args(["run", "--eviction", "lru"])
        config = _build_cache_config(args)
        assert config.eviction == "lru" and config.admission == "always"
        # An explicit admission choice always wins.
        args = build_parser().parse_args(
            ["run", "--eviction", "lru", "--admission", "static-degree"]
        )
        assert _build_cache_config(args).admission == "static-degree"

    def test_buffered_source_builds_private_shared_tier(self, small_cluster, trainer):
        # Parity with TieredCacheSource: a two-tier config without a
        # cluster-owned tier must not silently degrade to single-tier.
        source = build_feature_source(
            "buffered",
            make_ctx(small_cluster, trainer,
                     cache_config=CacheConfig(tiers=2, admission="always",
                                              eviction="lru")),
        )
        assert source.prefetcher.shared_tier is not None
        assert source.prefetcher.shared_tier.capacity > 0

    def test_buffered_source_rejects_adaptive_config(self, small_cluster, trainer):
        with pytest.raises(ValueError, match="tiered-cache"):
            build_feature_source(
                "buffered",
                make_ctx(small_cluster, trainer,
                         cache_config=CacheConfig(tiers=2, admission="always",
                                                  eviction="lru", adaptive=True)),
            )


class TestSeedDrift:
    def test_defaults_are_the_full_stationary_window(self):
        seeds = np.arange(50, dtype=np.int64)
        it = SeedIterator(seeds, batch_size=16, seed=5)
        window = it.active_window(3)
        np.testing.assert_array_equal(np.sort(window), seeds)
        assert it.num_active == 50 and it.num_batches == 4

    def test_window_rotates_and_wraps(self):
        seeds = np.arange(10, dtype=np.int64)
        it = SeedIterator(seeds, batch_size=4, seed=5,
                          active_fraction=0.4, rotation=0.5)
        np.testing.assert_array_equal(it.active_window(0), [0, 1, 2, 3])
        np.testing.assert_array_equal(it.active_window(1), [5, 6, 7, 8])
        np.testing.assert_array_equal(it.active_window(2), [0, 1, 2, 3])  # wrapped
        it_wrap = SeedIterator(seeds, batch_size=4, seed=5,
                               active_fraction=0.4, rotation=0.8)
        np.testing.assert_array_equal(it_wrap.active_window(1), [8, 9, 0, 1])

    def test_internal_epoch_counter_drives_rotation_and_resets(self):
        seeds = np.arange(10, dtype=np.int64)
        it = SeedIterator(seeds, batch_size=10, seed=5,
                          active_fraction=0.4, rotation=0.5)
        first = np.sort(np.concatenate(list(it.epoch())))
        second = np.sort(np.concatenate(list(it.epoch())))
        np.testing.assert_array_equal(first, [0, 1, 2, 3])
        np.testing.assert_array_equal(second, [5, 6, 7, 8])
        it.reset()
        again = np.sort(np.concatenate(list(it.epoch())))
        np.testing.assert_array_equal(again, first)

    def test_each_epoch_emits_only_the_active_window(self):
        seeds = np.arange(40, dtype=np.int64)
        it = SeedIterator(seeds, batch_size=8, seed=5,
                          active_fraction=0.25, rotation=0.25)
        for epoch in range(4):
            batches = list(it.epoch(epoch))
            emitted = np.sort(np.concatenate(batches))
            np.testing.assert_array_equal(emitted, it.active_window(epoch))
            assert len(emitted) == it.num_active == 10

    def test_validation(self):
        seeds = np.arange(4, dtype=np.int64)
        with pytest.raises(ValueError, match="active_fraction"):
            SeedIterator(seeds, 2, active_fraction=0.0)
        with pytest.raises(ValueError, match="rotation"):
            SeedIterator(seeds, 2, rotation=1.5)
        with pytest.raises(ValueError, match="seed_active_fraction"):
            ClusterConfig(num_machines=1, trainers_per_machine=1,
                          seed_active_fraction=0.0)


class TestCacheScenarios:
    @pytest.mark.parametrize("name", ["hot-set-drift", "cache-churn"])
    def test_scenario_runs_end_to_end(self, name):
        workload = (
            SCENARIOS.build(name)
            .with_overrides(scale=0.05, epochs=1)
            .materialize(seed=0)
        )
        report = workload.run()
        assert report.report.mode == "tiered-cache"
        assert report.mean_hit_rate is not None
        assert report.report.num_minibatches > 0

    def test_drift_scenario_prefers_adaptive_tiers(self):
        """The acceptance property: a non-default policy beats static on drift."""
        results = {}
        for key, cache_config in {
            "static": CacheConfig(),
            "adaptive": CacheConfig(
                tiers=2, admission="always", eviction="lru",
                hot_fraction=0.25, adaptive=True,
            ),
        }.items():
            workload = (
                SCENARIOS.build("hot-set-drift")
                .with_overrides(scale=0.05, epochs=3)
                .materialize(seed=0)
            )
            results[key] = workload.run(cache_config=cache_config).mean_hit_rate
        assert results["adaptive"] > results["static"] + 0.01
