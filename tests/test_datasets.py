"""Tests for the synthetic OGB-style dataset registry."""

import numpy as np
import pytest

from repro.graph.datasets import (
    DATASET_SPECS,
    available_datasets,
    load_dataset,
    make_custom_dataset,
)


class TestRegistry:
    def test_four_paper_datasets_registered(self):
        assert set(available_datasets()) >= {"arxiv", "products", "reddit", "papers"}

    def test_feature_dims_match_paper(self):
        # Table II feature dimensions: 128 / 100 / 602 / 128.
        assert DATASET_SPECS["arxiv"].feature_dim == 128
        assert DATASET_SPECS["products"].feature_dim == 100
        assert DATASET_SPECS["reddit"].feature_dim == 602
        assert DATASET_SPECS["papers"].feature_dim == 128

    def test_relative_scale_ordering(self):
        # papers > products > reddit > arxiv in node count, as in the paper.
        specs = DATASET_SPECS
        assert specs["papers"].base_num_nodes > specs["products"].base_num_nodes
        assert specs["products"].base_num_nodes > specs["reddit"].base_num_nodes
        assert specs["reddit"].base_num_nodes > specs["arxiv"].base_num_nodes

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imaginary")


class TestLoadDataset:
    def test_basic_shapes(self, small_dataset):
        ds = small_dataset
        assert ds.features.shape == (ds.num_nodes, 128)
        assert len(ds.labels) == ds.num_nodes
        assert ds.labels.max() < ds.num_classes

    def test_masks_partition_nodes(self, small_dataset):
        ds = small_dataset
        combined = ds.train_mask.astype(int) + ds.val_mask.astype(int) + ds.test_mask.astype(int)
        assert np.all(combined == 1)

    def test_nids_accessors(self, small_dataset):
        ds = small_dataset
        assert len(ds.train_nids()) == ds.train_mask.sum()
        assert len(ds.val_nids()) == ds.val_mask.sum()
        assert len(ds.test_nids()) == ds.test_mask.sum()

    def test_scale_changes_size(self):
        small = load_dataset("arxiv", scale=0.1, seed=0)
        large = load_dataset("arxiv", scale=0.5, seed=0)
        assert large.num_nodes > small.num_nodes

    def test_scale_minimum(self):
        ds = load_dataset("arxiv", scale=0.001, seed=0)
        assert ds.num_nodes >= 256

    def test_deterministic_given_seed(self):
        a = load_dataset("arxiv", scale=0.1, seed=42)
        b = load_dataset("arxiv", scale=0.1, seed=42)
        np.testing.assert_array_equal(a.graph.indices, b.graph.indices)
        np.testing.assert_allclose(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = load_dataset("arxiv", scale=0.1, seed=1)
        b = load_dataset("arxiv", scale=0.1, seed=2)
        assert not np.array_equal(a.labels, b.labels) or not np.allclose(a.features, b.features)

    def test_summary_keys(self, small_dataset):
        summary = small_dataset.summary()
        for key in ("num_nodes", "num_edges", "feature_dim", "num_classes", "avg_degree"):
            assert key in summary

    def test_planted_dataset_has_homophily(self, products_dataset):
        ds = products_dataset
        src, dst = ds.graph.edges()
        same = np.mean(ds.labels[src] == ds.labels[dst])
        # Far above the 1/num_classes chance rate.
        assert same > 3.0 / ds.num_classes

    def test_feature_nbytes(self, small_dataset):
        assert small_dataset.feature_nbytes() == small_dataset.features.nbytes

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("arxiv", scale=0.0)


class TestCustomDataset:
    def test_make_custom(self):
        ds = make_custom_dataset(
            num_nodes=512, avg_degree=8, feature_dim=32, num_classes=5, seed=0, name="tiny-test"
        )
        assert ds.num_nodes >= 256
        assert ds.feature_dim == 32
        assert ds.num_classes == 5

    def test_custom_does_not_pollute_registry(self):
        before = set(available_datasets())
        make_custom_dataset(300, 6, 16, 4, seed=0, name="ephemeral")
        after = set(available_datasets())
        assert before == after
