"""Tests for the KVStore, partition servers, and the simulated RPC channel."""

import numpy as np
import pytest

from repro.distributed.cost_model import CostModel
from repro.distributed.kvstore import KVStore
from repro.distributed.rpc import RPCChannel, RPCStats, aggregate_rpc_stats
from repro.distributed.server import PartitionServer


@pytest.fixture()
def stores():
    """Two KVStores splitting 10 nodes with 4-dim features."""
    features = np.arange(40, dtype=np.float32).reshape(10, 4)
    even = np.arange(0, 10, 2)
    odd = np.arange(1, 10, 2)
    return {
        0: KVStore(even, features[even], part_id=0),
        1: KVStore(odd, features[odd], part_id=1),
    }, features


class TestKVStore:
    def test_pull_returns_correct_rows(self, stores):
        kv, features = stores
        out = kv[0].pull(np.array([0, 4, 8]))
        np.testing.assert_allclose(out, features[[0, 4, 8]])

    def test_pull_unsorted_ids(self, stores):
        kv, features = stores
        out = kv[0].pull(np.array([8, 0]))
        np.testing.assert_allclose(out, features[[8, 0]])

    def test_pull_missing_raises(self, stores):
        kv, _ = stores
        with pytest.raises(KeyError):
            kv[0].pull(np.array([1]))

    def test_pull_empty(self, stores):
        kv, _ = stores
        out = kv[0].pull(np.array([], dtype=np.int64))
        assert out.shape == (0, 4)

    def test_contains(self, stores):
        kv, _ = stores
        np.testing.assert_array_equal(kv[0].contains(np.array([0, 1, 2])), [True, False, True])

    def test_stats_local_vs_remote(self, stores):
        kv, _ = stores
        kv[0].pull(np.array([0]), remote=False)
        kv[0].pull(np.array([2, 4]), remote=True)
        stats = kv[0].stats
        assert stats.local_pulls == 1 and stats.local_rows == 1
        assert stats.remote_pulls == 1 and stats.remote_rows == 2
        assert stats.bytes_served_remote == 2 * 4 * 4
        kv[0].reset_stats()
        assert kv[0].stats.remote_rows == 0

    def test_push_updates_rows(self, stores):
        kv, _ = stores
        kv[0].push(np.array([0]), np.full((1, 4), 9.0, dtype=np.float32))
        np.testing.assert_allclose(kv[0].pull(np.array([0])), 9.0)

    def test_push_foreign_raises(self, stores):
        kv, _ = stores
        with pytest.raises(KeyError):
            kv[0].push(np.array([1]), np.zeros((1, 4), dtype=np.float32))

    def test_misaligned_construction_raises(self):
        with pytest.raises(ValueError):
            KVStore(np.array([0, 1]), np.zeros((3, 4), dtype=np.float32))


class TestRPCChannel:
    def test_local_pull(self, stores):
        kv, features = stores
        channel = RPCChannel(kv, local_part=0, cost_model=CostModel.cpu())
        rows, t_copy = channel.local_pull(np.array([0, 2]))
        np.testing.assert_allclose(rows, features[[0, 2]])
        assert t_copy > 0

    def test_remote_pull_routes_by_owner(self, stores):
        kv, features = stores
        channel = RPCChannel(kv, local_part=0, cost_model=CostModel.cpu())
        ids = np.array([1, 3, 5])
        owners = np.ones(3, dtype=np.int64)
        rows, t_rpc, delta = channel.remote_pull(ids, owners)
        np.testing.assert_allclose(rows, features[ids])
        assert t_rpc > 0
        assert delta.nodes_fetched == 3
        assert delta.requests == 1

    def test_remote_pull_rejects_local_nodes(self, stores):
        kv, _ = stores
        channel = RPCChannel(kv, local_part=0)
        with pytest.raises(ValueError):
            channel.remote_pull(np.array([0]), np.array([0]))

    def test_remote_pull_empty(self, stores):
        kv, _ = stores
        channel = RPCChannel(kv, local_part=0)
        rows, t, delta = channel.remote_pull(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert rows.shape == (0, 4)
        assert t == 0.0 and delta.nodes_fetched == 0

    def test_stats_accumulate(self, stores):
        kv, _ = stores
        channel = RPCChannel(kv, local_part=0)
        channel.remote_pull(np.array([1]), np.array([1]))
        channel.remote_pull(np.array([3, 5]), np.array([1, 1]))
        assert channel.stats.nodes_fetched == 3
        assert channel.stats.requests == 2
        channel.reset_stats()
        assert channel.stats.nodes_fetched == 0

    def test_unknown_owner_raises(self, stores):
        kv, _ = stores
        channel = RPCChannel(kv, local_part=0)
        with pytest.raises(KeyError):
            channel.remote_pull(np.array([1]), np.array([7]))

    def test_aggregate_rpc_stats(self, stores):
        kv, _ = stores
        a = RPCChannel(kv, local_part=0)
        b = RPCChannel(kv, local_part=0)
        a.remote_pull(np.array([1]), np.array([1]))
        b.remote_pull(np.array([3, 5]), np.array([1, 1]))
        total = aggregate_rpc_stats([a, b])
        assert total.nodes_fetched == 3
        assert total.requests == 2

    def test_rpc_stats_merge(self):
        merged = RPCStats(1, 2, 3, 0.5).merge(RPCStats(1, 1, 1, 0.5))
        assert merged.requests == 2 and merged.nodes_fetched == 3
        assert merged.simulated_time_s == pytest.approx(1.0)


class TestPartitionServer:
    def test_server_wraps_partition(self, small_dataset, small_partitions):
        p = small_partitions[0]
        server = PartitionServer(p, small_dataset.features, small_dataset.labels)
        assert server.num_owned == p.num_owned
        assert server.feature_dim == small_dataset.feature_dim
        sample = p.owned_global[:5]
        np.testing.assert_allclose(server.pull_features(sample), small_dataset.features[sample])
        np.testing.assert_array_equal(server.pull_labels(sample), small_dataset.labels[sample])

    def test_server_degrees(self, small_dataset, small_partitions):
        p = small_partitions[0]
        server = PartitionServer(p, small_dataset.features)
        degs = server.node_degrees(p.owned_global[:5])
        np.testing.assert_array_equal(degs, small_dataset.graph.out_degree(p.owned_global[:5]))

    def test_labels_missing_raises(self, small_dataset, small_partitions):
        server = PartitionServer(small_partitions[0], small_dataset.features, labels=None)
        with pytest.raises(RuntimeError):
            server.pull_labels(small_partitions[0].owned_global[:1])
