"""Tests for the Prefetcher (Algorithms 1 & 2): initialization, hits/misses,
score maintenance, and eviction rounds."""

import numpy as np
import pytest

from repro.core.config import PrefetchConfig
from repro.core.eviction import LRUPolicy, NoEvictionPolicy, RandomEvictionPolicy, ScoreThresholdPolicy, build_eviction_policy
from repro.core.metrics import HitRateTracker, PrefetchCounters, hit_rate, merge_hit_trackers
from repro.core.prefetcher import Prefetcher
from repro.distributed.cost_model import CostModel
from repro.distributed.rpc import RPCChannel
from repro.distributed.server import PartitionServer


def make_prefetcher(dataset, partitions, part_id=0, config=None, policy=None):
    """Build a Prefetcher wired to real KVStore servers for the given partition."""
    servers = {p.part_id: PartitionServer(p, dataset.features, dataset.labels).kvstore for p in partitions}
    rpc = RPCChannel(servers, local_part=part_id, cost_model=CostModel.cpu())
    prefetcher = Prefetcher(
        partition=partitions[part_id],
        config=config or PrefetchConfig(halo_fraction=0.25, gamma=0.9, delta=4),
        rpc=rpc,
        num_global_nodes=dataset.num_nodes,
        eviction_policy=policy,
    )
    return prefetcher, rpc


class TestInitialization:
    def test_buffer_holds_top_degree_halo_nodes(self, small_dataset, small_partitions):
        prefetcher, _ = make_prefetcher(small_dataset, small_partitions)
        report = prefetcher.initialize()
        partition = small_partitions[0]
        capacity = prefetcher.config.buffer_capacity(partition.num_halo)
        assert report.buffer_capacity == capacity
        resident = prefetcher.resident_nodes()
        # All resident nodes are halo nodes ...
        assert np.all(np.isin(resident, partition.halo_global))
        # ... and they are the highest-degree ones.
        degrees = small_dataset.graph.out_degree()
        min_resident_degree = degrees[resident].min()
        non_resident = np.setdiff1d(partition.halo_global, resident)
        if len(non_resident):
            assert degrees[non_resident].max() <= max(min_resident_degree, degrees[non_resident].max())
            # the k-th largest degree among halos is >= any non-resident degree
            kth = np.sort(degrees[partition.halo_global])[::-1][len(resident) - 1]
            assert min_resident_degree >= 0 and degrees[non_resident].max() <= np.sort(degrees[partition.halo_global])[::-1][0]
            assert min_resident_degree >= np.partition(degrees[partition.halo_global], -len(resident))[-len(resident)] or True

    def test_initialization_features_match_kvstore(self, small_dataset, small_partitions):
        prefetcher, _ = make_prefetcher(small_dataset, small_partitions)
        prefetcher.initialize()
        resident = prefetcher.resident_nodes()
        np.testing.assert_allclose(
            prefetcher.buffer.get_features_by_id(resident), small_dataset.features[resident]
        )

    def test_initialization_counts_rpc(self, small_dataset, small_partitions):
        prefetcher, rpc = make_prefetcher(small_dataset, small_partitions)
        report = prefetcher.initialize()
        assert rpc.stats.nodes_fetched == report.num_prefetched
        assert report.rpc_time_s > 0
        assert report.bytes_fetched > 0

    def test_scoreboard_initial_values(self, small_dataset, small_partitions):
        prefetcher, _ = make_prefetcher(small_dataset, small_partitions)
        prefetcher.initialize()
        resident = prefetcher.resident_nodes()
        np.testing.assert_allclose(prefetcher.access_scores.get(resident), -1.0)
        others = np.setdiff1d(small_partitions[0].halo_global, resident)
        if len(others):
            np.testing.assert_allclose(prefetcher.access_scores.get(others), 0.0)
        np.testing.assert_allclose(prefetcher.eviction_scores.values, 1.0)

    def test_use_before_initialize_raises(self, small_dataset, small_partitions):
        prefetcher, _ = make_prefetcher(small_dataset, small_partitions)
        with pytest.raises(RuntimeError):
            prefetcher.process_minibatch(np.array([0]), step=0)

    def test_compact_scoreboard_variant(self, small_dataset, small_partitions):
        config = PrefetchConfig(halo_fraction=0.25, scoreboard="compact")
        prefetcher, _ = make_prefetcher(small_dataset, small_partitions, config=config)
        report = prefetcher.initialize()
        assert report.scoreboard_nbytes < small_dataset.num_nodes * 8


class TestProcessMinibatch:
    def test_hits_served_from_buffer_without_rpc(self, small_dataset, small_partitions):
        prefetcher, rpc = make_prefetcher(small_dataset, small_partitions)
        prefetcher.initialize()
        rpc.reset_stats()
        resident = prefetcher.resident_nodes()[:5]
        result = prefetcher.process_minibatch(resident, step=1)
        assert result.num_hits == len(resident)
        assert result.num_misses == 0
        assert rpc.stats.nodes_fetched == 0
        np.testing.assert_allclose(result.features, small_dataset.features[resident])

    def test_misses_fetched_over_rpc(self, small_dataset, small_partitions):
        prefetcher, rpc = make_prefetcher(small_dataset, small_partitions)
        prefetcher.initialize()
        rpc.reset_stats()
        missing = np.setdiff1d(small_partitions[0].halo_global, prefetcher.resident_nodes())[:5]
        if len(missing) == 0:
            pytest.skip("buffer holds every halo node at this scale")
        result = prefetcher.process_minibatch(missing, step=1)
        assert result.num_misses == len(missing)
        assert rpc.stats.nodes_fetched == len(np.unique(missing))
        np.testing.assert_allclose(result.features, small_dataset.features[missing])

    def test_mixed_hits_and_misses_rows_align(self, small_dataset, small_partitions):
        prefetcher, _ = make_prefetcher(small_dataset, small_partitions)
        prefetcher.initialize()
        resident = prefetcher.resident_nodes()[:3]
        missing = np.setdiff1d(small_partitions[0].halo_global, prefetcher.resident_nodes())[:3]
        request = np.concatenate([missing, resident, missing])
        result = prefetcher.process_minibatch(request, step=1)
        np.testing.assert_allclose(result.features, small_dataset.features[request])

    def test_access_score_incremented_on_miss(self, small_dataset, small_partitions):
        prefetcher, _ = make_prefetcher(small_dataset, small_partitions)
        prefetcher.initialize()
        missing = np.setdiff1d(small_partitions[0].halo_global, prefetcher.resident_nodes())[:2]
        if len(missing) < 2:
            pytest.skip("not enough non-resident halo nodes")
        prefetcher.process_minibatch(missing, step=1)
        prefetcher.process_minibatch(missing[:1], step=2)
        scores = prefetcher.access_scores.get(missing)
        assert scores[0] == pytest.approx(2.0)
        assert scores[1] == pytest.approx(1.0)

    def test_eviction_score_decays_for_unused(self, small_dataset, small_partitions):
        config = PrefetchConfig(halo_fraction=0.25, gamma=0.5, delta=100)
        prefetcher, _ = make_prefetcher(small_dataset, small_partitions, config=config)
        prefetcher.initialize()
        resident = prefetcher.resident_nodes()
        used = resident[:1]
        prefetcher.process_minibatch(used, step=1)
        slots_used = prefetcher.buffer.slot_of(used)
        se = prefetcher.eviction_scores.values
        assert se[slots_used[0]] == pytest.approx(1.0)
        unused_slots = np.setdiff1d(np.arange(prefetcher.buffer.capacity), slots_used)
        np.testing.assert_allclose(se[unused_slots], 0.5)

    def test_hit_rate_tracker_updates(self, small_dataset, small_partitions):
        prefetcher, _ = make_prefetcher(small_dataset, small_partitions)
        prefetcher.initialize()
        resident = prefetcher.resident_nodes()[:4]
        prefetcher.process_minibatch(resident, step=1)
        assert prefetcher.hit_rate == pytest.approx(1.0)
        assert prefetcher.tracker.num_steps == 1

    def test_empty_request(self, small_dataset, small_partitions):
        prefetcher, _ = make_prefetcher(small_dataset, small_partitions)
        prefetcher.initialize()
        result = prefetcher.process_minibatch(np.array([], dtype=np.int64), step=1)
        assert result.num_requested == 0
        assert result.features.shape[0] == 0


class TestEvictionRounds:
    def _force_eviction_setup(self, dataset, partitions):
        """Config where unused slots decay below alpha before the first eviction round."""
        config = PrefetchConfig(halo_fraction=0.25, gamma=0.5, delta=3, alpha=0.9)
        return make_prefetcher(dataset, partitions, config=config)

    def test_eviction_replaces_unused_with_hot_misses(self, small_dataset, small_partitions):
        prefetcher, _ = self._force_eviction_setup(small_dataset, small_partitions)
        prefetcher.initialize()
        resident_before = prefetcher.resident_nodes()
        missing = np.setdiff1d(small_partitions[0].halo_global, resident_before)
        if len(missing) < 2:
            pytest.skip("not enough non-resident halo nodes to test eviction")
        hot = missing[:2]
        # Steps 1-2: repeatedly miss the hot nodes; buffer slots go unused and decay.
        prefetcher.process_minibatch(hot, step=1)
        prefetcher.process_minibatch(hot, step=2)
        # Step 3 (= delta): eviction round.
        result = prefetcher.process_minibatch(hot, step=3)
        assert result.eviction_round
        assert result.nodes_evicted > 0
        assert result.nodes_evicted == result.nodes_replaced
        resident_after = prefetcher.resident_nodes()
        assert len(resident_after) == len(resident_before)  # constant capacity
        assert np.all(np.isin(hot, resident_after))          # hot nodes now resident

    def test_post_eviction_hits(self, small_dataset, small_partitions):
        prefetcher, rpc = self._force_eviction_setup(small_dataset, small_partitions)
        prefetcher.initialize()
        missing = np.setdiff1d(small_partitions[0].halo_global, prefetcher.resident_nodes())
        if len(missing) < 1:
            pytest.skip("no non-resident halo nodes")
        hot = missing[:1]
        for step in range(1, 4):
            prefetcher.process_minibatch(hot, step=step)
        rpc.reset_stats()
        result = prefetcher.process_minibatch(hot, step=4)
        assert result.num_hits == 1
        assert rpc.stats.nodes_fetched == 0

    def test_replacement_features_correct(self, small_dataset, small_partitions):
        prefetcher, _ = self._force_eviction_setup(small_dataset, small_partitions)
        prefetcher.initialize()
        missing = np.setdiff1d(small_partitions[0].halo_global, prefetcher.resident_nodes())
        if len(missing) < 1:
            pytest.skip("no non-resident halo nodes")
        hot = missing[:1]
        for step in range(1, 4):
            prefetcher.process_minibatch(hot, step=step)
        if prefetcher.buffer.contains(hot).item():
            np.testing.assert_allclose(
                prefetcher.buffer.get_features_by_id(hot), small_dataset.features[hot]
            )

    def test_no_eviction_when_disabled(self, small_dataset, small_partitions):
        config = PrefetchConfig(halo_fraction=0.25, gamma=0.5, delta=2, eviction_enabled=False)
        prefetcher, _ = make_prefetcher(small_dataset, small_partitions, config=config)
        prefetcher.initialize()
        before = prefetcher.resident_nodes()
        missing = np.setdiff1d(small_partitions[0].halo_global, before)[:2]
        for step in range(1, 7):
            prefetcher.process_minibatch(missing, step=step)
        np.testing.assert_array_equal(np.sort(prefetcher.resident_nodes()), np.sort(before))
        assert prefetcher.counters.eviction_rounds == 0

    def test_score_swap_on_eviction(self, small_dataset, small_partitions):
        prefetcher, _ = self._force_eviction_setup(small_dataset, small_partitions)
        prefetcher.initialize()
        before = prefetcher.resident_nodes()
        missing = np.setdiff1d(small_partitions[0].halo_global, before)
        if len(missing) < 1:
            pytest.skip("no non-resident halo nodes")
        hot = missing[:1]
        for step in range(1, 4):
            prefetcher.process_minibatch(hot, step=step)
        evicted = np.setdiff1d(before, prefetcher.resident_nodes())
        if len(evicted):
            # Evicted nodes' S_A now carries their final S_E (below alpha, > 0).
            sa = prefetcher.access_scores.get(evicted)
            assert np.all(sa > 0) and np.all(sa < 1.0)
        # The replacement's S_A is reset to -1 (it is resident now).
        if prefetcher.buffer.contains(hot).item():
            assert prefetcher.access_scores.get(hot)[0] == pytest.approx(-1.0)

    def test_counters_and_summary(self, small_dataset, small_partitions):
        prefetcher, _ = self._force_eviction_setup(small_dataset, small_partitions)
        prefetcher.initialize()
        missing = np.setdiff1d(small_partitions[0].halo_global, prefetcher.resident_nodes())[:2]
        for step in range(1, 5):
            prefetcher.process_minibatch(missing, step=step)
        summary = prefetcher.summary()
        assert summary["halo_nodes_sampled"] == 4 * len(missing)
        assert summary["remote_nodes_fetched"] >= summary["remote_nodes_at_init"]
        assert 0.0 <= summary["hit_rate"] <= 1.0


class TestEvictionPolicies:
    def test_build_policy_factory(self):
        assert isinstance(build_eviction_policy("score-threshold"), ScoreThresholdPolicy)
        assert isinstance(build_eviction_policy("lru"), LRUPolicy)
        assert isinstance(build_eviction_policy("random", seed=0), RandomEvictionPolicy)
        assert isinstance(build_eviction_policy("none"), NoEvictionPolicy)
        with pytest.raises(ValueError):
            build_eviction_policy("fifo")

    def test_score_threshold_policy(self):
        from repro.core.scoreboard import EvictionScores

        scores = EvictionScores(4)
        scores.set(np.arange(4), np.array([0.1, 0.9, 0.2, 0.95]))
        chosen = ScoreThresholdPolicy().select(scores, 0.5, np.zeros(4, dtype=np.int64), 10)
        np.testing.assert_array_equal(chosen, [0, 2])

    def test_lru_policy_matches_count(self):
        from repro.core.scoreboard import EvictionScores

        scores = EvictionScores(4)
        scores.set(np.arange(4), np.array([0.1, 0.9, 0.2, 0.95]))
        last_hit = np.array([5, 1, 9, 2])
        chosen = LRUPolicy().select(scores, 0.5, last_hit, 10)
        assert len(chosen) == 2
        np.testing.assert_array_equal(np.sort(chosen), [1, 3])  # least recently hit

    def test_random_policy_count(self):
        from repro.core.scoreboard import EvictionScores

        scores = EvictionScores(6)
        scores.set(np.arange(6), np.array([0.1, 0.1, 0.1, 0.9, 0.9, 0.9]))
        chosen = RandomEvictionPolicy(seed=0).select(scores, 0.5, np.zeros(6, dtype=np.int64), 1)
        assert len(chosen) == 3

    def test_none_policy(self):
        from repro.core.scoreboard import EvictionScores

        scores = EvictionScores(3)
        scores.set(np.arange(3), np.zeros(3))
        assert len(NoEvictionPolicy().select(scores, 0.5, np.zeros(3, dtype=np.int64), 1)) == 0

    def test_prefetcher_with_lru_policy_runs(self, small_dataset, small_partitions):
        config = PrefetchConfig(halo_fraction=0.25, gamma=0.5, delta=3, alpha=0.9)
        prefetcher, _ = make_prefetcher(
            small_dataset, small_partitions, config=config, policy=LRUPolicy()
        )
        prefetcher.initialize()
        missing = np.setdiff1d(small_partitions[0].halo_global, prefetcher.resident_nodes())[:2]
        for step in range(1, 5):
            result = prefetcher.process_minibatch(missing, step=step)
        assert prefetcher.tracker.num_steps == 4


class TestMetrics:
    def test_hit_rate_formula(self):
        assert hit_rate(3, 1) == pytest.approx(0.75)
        assert hit_rate(0, 0) == 0.0

    def test_tracker_histories(self):
        tracker = HitRateTracker()
        tracker.record(3, 1)
        tracker.record(1, 3, eviction=True)
        assert tracker.cumulative_hit_rate == pytest.approx(0.5)
        np.testing.assert_allclose(tracker.per_step_hit_rate(), [0.75, 0.25])
        np.testing.assert_allclose(tracker.running_hit_rate(), [0.75, 0.5])
        assert tracker.eviction_steps == [1]
        assert tracker.summary()["eviction_rounds"] == 1

    def test_tracker_rejects_negative(self):
        with pytest.raises(ValueError):
            HitRateTracker().record(-1, 0)

    def test_windowed_hit_rate(self):
        tracker = HitRateTracker()
        for _ in range(10):
            tracker.record(1, 1)
        window = tracker.windowed_hit_rate(window=5)
        np.testing.assert_allclose(window, 0.5)
        with pytest.raises(ValueError):
            tracker.windowed_hit_rate(0)

    def test_merge_hit_trackers(self):
        a, b = HitRateTracker(), HitRateTracker()
        a.record(2, 0)
        a.record(0, 2)
        b.record(0, 2)
        merged = merge_hit_trackers([a, b])
        assert merged.num_steps == 1  # truncated to the shortest history
        assert merged.cumulative_hit_rate == pytest.approx(0.5)
        assert merge_hit_trackers([]).num_steps == 0

    def test_prefetch_counters_dict(self):
        counters = PrefetchCounters(remote_nodes_fetched=5)
        assert counters.as_dict()["remote_nodes_fetched"] == 5
