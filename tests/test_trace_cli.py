"""Tests for run traces, the experiment registry, and the CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.training.telemetry import EpochRecord, TrainingReport
from repro.training.trace import (
    EXPERIMENTS,
    compare_traces,
    get_experiment,
    list_experiments,
    load_trace,
    report_to_dict,
    save_trace,
)


def _report(mode="baseline", time_s=2.0, hit=0.0):
    report = TrainingReport(
        mode=mode, backend="cpu", dataset="arxiv", arch="sage",
        num_machines=2, trainers_per_machine=2, epochs=2,
        total_simulated_time_s=time_s,
        epoch_records=[EpochRecord(0, time_s / 2, 1.5, 0.4), EpochRecord(1, time_s / 2, 1.0, 0.5)],
        component_breakdown={"rpc": 0.5, "ddp": 1.0},
        final_train_accuracy=0.5,
        num_minibatches=8,
    )
    return report


class TestExperimentRegistry:
    def test_all_paper_experiments_registered(self):
        ids = set(EXPERIMENTS)
        expected = {"table2", "table3", "table4", "fig5", "fig6", "fig7", "fig8",
                    "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "perfmodel"}
        assert expected <= ids

    def test_bench_targets_exist_on_disk(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        for spec in list_experiments():
            assert (root / spec.bench_target).exists(), spec.bench_target

    def test_modules_are_importable(self):
        import importlib

        for spec in list_experiments():
            for module in spec.modules:
                importlib.import_module(module)

    def test_get_experiment(self):
        assert get_experiment("fig6").paper_reference == "Fig. 6"
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_list_is_sorted_and_stable(self):
        ids = [s.experiment_id for s in list_experiments()]
        assert ids == sorted(ids)


class TestTraces:
    def test_report_to_dict_json_serializable(self):
        payload = report_to_dict(_report())
        json.dumps(payload)  # must not raise
        assert payload["total_simulated_time_s"] == 2.0
        assert payload["epoch_loss"] == [1.5, 1.0]

    def test_save_and_load_roundtrip(self, tmp_path):
        path = save_trace(_report(), tmp_path / "sub" / "trace.json", metadata={"note": "x"})
        assert path.exists()
        loaded = load_trace(path)
        assert loaded["metadata"]["note"] == "x"
        assert loaded["report"]["dataset"] == "arxiv"

    def test_load_rejects_non_trace(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError):
            load_trace(bogus)

    def test_compare_traces(self, tmp_path):
        base_path = save_trace(_report("baseline", 2.0), tmp_path / "base.json")
        fast_path = save_trace(_report("prefetch", 1.0), tmp_path / "fast.json")
        cmp = compare_traces(load_trace(base_path), load_trace(fast_path))
        assert cmp["improvement_percent"] == pytest.approx(50.0)
        assert cmp["speedup"] == pytest.approx(2.0)


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        for command in ("datasets", "experiments"):
            assert parser.parse_args([command]).command == command
        args = parser.parse_args(["run", "--dataset", "arxiv", "--epochs", "1"])
        assert args.dataset == "arxiv" and args.epochs == 1

    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "bench_fig6_training_time.py" in out

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "arxiv" in out and "602" in out  # reddit's feature dim appears

    def test_run_command_both_modes_with_traces(self, capsys, tmp_path):
        code = main([
            "run", "--dataset", "arxiv", "--scale", "0.15", "--epochs", "1",
            "--machines", "2", "--trainers-per-machine", "1", "--batch-size", "64",
            "--fanouts", "4", "6", "--hidden-dim", "16",
            "--trace-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert (tmp_path / "baseline.json").exists()
        assert (tmp_path / "prefetch.json").exists()

    def test_run_command_baseline_only(self, capsys):
        code = main([
            "run", "--dataset", "arxiv", "--scale", "0.15", "--mode", "baseline",
            "--epochs", "1", "--machines", "2", "--trainers-per-machine", "1",
            "--batch-size", "64", "--fanouts", "4", "6", "--hidden-dim", "16",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[baseline]" in out and "[prefetch]" not in out

    def test_sweep_command(self, capsys):
        code = main([
            "sweep", "--dataset", "arxiv", "--scale", "0.15", "--epochs", "1",
            "--machines", "2", "--batch-size", "64",
            "--halo-fractions", "0.25", "--gammas", "0.995", "--deltas", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimal:" in out


class TestAsyncEngineCLI:
    """CLI coverage for the event-driven backend and the scenario catalog."""

    def test_scenarios_markdown(self, capsys):
        assert main(["scenarios", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<!-- Generated by `repro scenarios --markdown`")
        assert "| `trainer-flaky` |" in out and "bounded-staleness(K=3)" in out

    def test_scenarios_plain_lists_execution(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "execution" in out and "async · local-sgd(H=4)" in out

    def test_engine_async_implies_cluster(self, capsys):
        code = main([
            "run", "--engine", "async", "--sync", "bounded-staleness",
            "--staleness", "2", "--scale", "0.05", "--epochs", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario 'uniform'" in out
        assert "execution=async · bounded-staleness(K=2)" in out
        assert "async sync: policy bounded-staleness(K=2)" in out

    def test_sync_flag_alone_selects_async_backend(self, capsys):
        code = main([
            "run", "--sync", "local-sgd", "--sync-period", "2",
            "--scale", "0.05", "--epochs", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "async sync: policy local-sgd(H=2)" in out

    def test_flaky_scenario_reports_failures(self, capsys):
        code = main([
            "run", "--cluster", "--scenario", "trainer-flaky",
            "--scale", "0.05", "--epochs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "failures" in out and "downtime" in out

    def test_lockstep_engine_rejects_async_sync(self, capsys):
        code = main([
            "run", "--engine", "lockstep", "--sync", "bounded-staleness",
            "--scale", "0.05", "--epochs", "1",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "event-driven" in err

    def test_staleness_without_matching_sync_rejected(self, capsys):
        code = main(["run", "--staleness", "3", "--scale", "0.05", "--epochs", "1"])
        assert code == 2
        assert "--sync bounded-staleness" in capsys.readouterr().err

    def test_sync_period_on_staleness_scenario_rejected(self, capsys):
        code = main([
            "run", "--cluster", "--scenario", "async-staleness",
            "--sync-period", "2", "--scale", "0.05", "--epochs", "1",
        ])
        assert code == 2
        assert "--sync local-sgd" in capsys.readouterr().err

    def test_staleness_applies_on_staleness_scenario(self, capsys):
        code = main([
            "run", "--cluster", "--scenario", "async-staleness",
            "--staleness", "4", "--scale", "0.05", "--epochs", "1",
        ])
        assert code == 0
        assert "bounded-staleness(K=4)" in capsys.readouterr().out
