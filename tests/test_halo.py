"""Tests for per-partition local graphs with halo nodes."""

import numpy as np
import pytest

from repro.graph.halo import build_partitions, halo_statistics
from repro.graph.partition import metis_partition, random_partition


class TestBuildPartitions:
    def test_every_node_owned_exactly_once(self, small_dataset, small_partitions):
        owned = np.concatenate([p.owned_global for p in small_partitions])
        assert len(owned) == small_dataset.num_nodes
        assert len(np.unique(owned)) == small_dataset.num_nodes

    def test_halo_nodes_are_remote(self, small_partitions):
        for p in small_partitions:
            assert len(np.intersect1d(p.halo_global, p.owned_global)) == 0

    def test_halo_owner_is_not_self(self, small_partitions):
        for p in small_partitions:
            assert np.all(p.halo_owner != p.part_id)

    def test_local_graph_size(self, small_partitions):
        for p in small_partitions:
            assert p.local_graph.num_nodes == p.num_owned + p.num_halo
            assert p.num_local == p.local_graph.num_nodes

    def test_halo_nodes_have_no_out_edges(self, small_partitions):
        """Halo nodes' neighborhoods live on the owning partition."""
        for p in small_partitions:
            halo_local = np.arange(p.num_owned, p.num_local)
            degs = p.local_graph.out_degree(halo_local)
            assert np.all(degs == 0)

    def test_local_edges_match_global_graph(self, small_dataset, small_partitions):
        graph = small_dataset.graph
        for p in small_partitions:
            src, dst = p.local_graph.edges()
            gsrc = p.local_to_global[src]
            gdst = p.local_to_global[dst]
            for u, v in list(zip(gsrc, gdst))[:200]:
                assert graph.has_edge(int(u), int(v))

    def test_owned_edge_count_preserved(self, small_dataset, small_partitions):
        """Every edge whose source is owned appears in exactly one local graph."""
        total_local_edges = sum(p.local_graph.num_edges for p in small_partitions)
        assert total_local_edges == small_dataset.graph.num_edges

    def test_global_degrees_match(self, small_dataset, small_partitions):
        degs = small_dataset.graph.out_degree()
        for p in small_partitions:
            np.testing.assert_array_equal(p.global_degrees, degs[p.local_to_global])


class TestGraphPartitionHelpers:
    def test_is_halo_local_id(self, small_partitions):
        p = small_partitions[0]
        assert not p.is_halo_local_id(np.array([0])).item()
        if p.num_halo:
            assert p.is_halo_local_id(np.array([p.num_owned])).item()

    def test_local_global_roundtrip(self, small_partitions):
        p = small_partitions[0]
        local = np.arange(min(50, p.num_local), dtype=np.int64)
        global_ids = p.global_ids(local)
        back = p.local_ids(global_ids)
        np.testing.assert_array_equal(back, local)

    def test_local_ids_raises_for_foreign_node(self, small_dataset, small_partitions):
        p = small_partitions[0]
        all_local = set(p.local_to_global.tolist())
        foreign = next(i for i in range(small_dataset.num_nodes) if i not in all_local)
        with pytest.raises(KeyError):
            p.local_ids(np.array([foreign]))

    def test_contains(self, small_dataset, small_partitions):
        p = small_partitions[0]
        assert p.contains(p.owned_global[:3]).all()
        all_local = set(p.local_to_global.tolist())
        foreign = [i for i in range(small_dataset.num_nodes) if i not in all_local][:3]
        assert not p.contains(np.array(foreign)).any()

    def test_halo_degrees_length(self, small_partitions):
        p = small_partitions[0]
        assert len(p.halo_degrees()) == p.num_halo


class TestHaloStatistics:
    def test_keys(self, small_partitions):
        stats = halo_statistics(small_partitions)
        for key in ("mean_halo", "max_halo", "mean_owned", "mean_halo_fraction"):
            assert key in stats

    def test_metis_has_fewer_halos_than_random(self, small_dataset):
        graph = small_dataset.graph
        metis_parts = build_partitions(graph, metis_partition(graph, 2, seed=0))
        random_parts = build_partitions(graph, random_partition(graph, 2, seed=0))
        assert (
            halo_statistics(metis_parts)["mean_halo"]
            <= halo_statistics(random_parts)["mean_halo"]
        )
