"""Tests for the CSR graph container."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph, merge_graphs, validate_graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges([0, 1, 2], [1, 2, 0], num_nodes=3)
        assert g.num_nodes == 3
        assert g.num_edges == 3

    def test_infer_num_nodes(self):
        g = CSRGraph.from_edges([0, 5], [1, 2])
        assert g.num_nodes == 6

    def test_symmetrize(self):
        g = CSRGraph.from_edges([0], [1], num_nodes=2, symmetrize=True)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_remove_self_loops(self):
        g = CSRGraph.from_edges([0, 1], [0, 1], num_nodes=2, remove_self_loops=True)
        assert g.num_edges == 0

    def test_deduplicate(self):
        g = CSRGraph.from_edges([0, 0, 0], [1, 1, 1], num_nodes=2)
        assert g.num_edges == 1

    def test_no_deduplicate(self):
        g = CSRGraph.from_edges([0, 0], [1, 1], num_nodes=2, deduplicate=False)
        assert g.num_edges == 2

    def test_empty(self):
        g = CSRGraph.empty(5)
        assert g.num_nodes == 5 and g.num_edges == 0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([0, 1], [1], num_nodes=2)

    def test_invalid_indptr_raises(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([0, 2]), indices=np.array([1]), num_nodes=1)

    def test_out_of_range_indices_raise(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([5]), num_nodes=1)


class TestQueries:
    def test_out_degree(self, tiny_graph):
        degs = tiny_graph.out_degree()
        assert len(degs) == tiny_graph.num_nodes
        assert degs.sum() == tiny_graph.num_edges

    def test_out_degree_subset(self, tiny_graph):
        degs = tiny_graph.out_degree(np.array([0, 1]))
        assert len(degs) == 2

    def test_in_degree_symmetric_graph(self, tiny_graph):
        # The fixture is symmetrized, so in-degree equals out-degree.
        np.testing.assert_array_equal(tiny_graph.in_degree(), tiny_graph.out_degree())

    def test_neighbors_sorted(self, tiny_graph):
        for node in range(tiny_graph.num_nodes):
            neigh = tiny_graph.neighbors(node)
            assert np.all(np.diff(neigh) >= 0)

    def test_neighbors_out_of_range(self, tiny_graph):
        with pytest.raises(IndexError):
            tiny_graph.neighbors(100)

    def test_edges_roundtrip(self, tiny_graph):
        src, dst = tiny_graph.edges()
        rebuilt = CSRGraph.from_edges(src, dst, num_nodes=tiny_graph.num_nodes, deduplicate=False)
        np.testing.assert_array_equal(rebuilt.indptr, tiny_graph.indptr)
        np.testing.assert_array_equal(rebuilt.indices, tiny_graph.indices)

    def test_has_edge(self, tiny_graph):
        src, dst = tiny_graph.edges()
        assert tiny_graph.has_edge(int(src[0]), int(dst[0]))
        assert not tiny_graph.has_edge(0, 0)

    def test_is_symmetric(self, tiny_graph):
        assert tiny_graph.is_symmetric()
        directed = CSRGraph.from_edges([0], [1], num_nodes=2)
        assert not directed.is_symmetric()

    def test_nbytes_positive(self, tiny_graph):
        assert tiny_graph.nbytes() > 0


class TestTransforms:
    def test_reverse(self):
        g = CSRGraph.from_edges([0, 1], [1, 2], num_nodes=3)
        r = g.reverse()
        assert r.has_edge(1, 0) and r.has_edge(2, 1)
        assert r.num_edges == g.num_edges

    def test_induced_subgraph(self, tiny_graph):
        nodes = np.array([0, 1, 2, 3])
        sub, mapping = tiny_graph.induced_subgraph(nodes)
        assert sub.num_nodes == 4
        np.testing.assert_array_equal(mapping, nodes)
        # Every subgraph edge must exist in the original graph.
        s, d = sub.edges()
        for u, v in zip(s, d):
            assert tiny_graph.has_edge(int(nodes[u]), int(nodes[v]))

    def test_induced_subgraph_rejects_duplicates(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.induced_subgraph(np.array([0, 0]))

    def test_to_networkx(self, tiny_graph):
        nx_graph = tiny_graph.to_networkx()
        assert nx_graph.number_of_nodes() == tiny_graph.num_nodes
        assert nx_graph.number_of_edges() == tiny_graph.num_edges

    def test_connected_components_single(self, tiny_graph):
        labels = tiny_graph.connected_components()
        assert len(np.unique(labels)) == 1

    def test_connected_components_two(self):
        g = CSRGraph.from_edges([0, 2], [1, 3], num_nodes=4, symmetrize=True)
        labels = g.connected_components()
        assert len(np.unique(labels)) == 2
        assert labels[0] == labels[1] and labels[2] == labels[3]

    def test_merge_graphs(self):
        a = CSRGraph.from_edges([0], [1], num_nodes=2)
        b = CSRGraph.from_edges([0], [1], num_nodes=3)
        merged = merge_graphs([a, b])
        assert merged.num_nodes == 5
        assert merged.has_edge(0, 1) and merged.has_edge(2, 3)

    def test_validate_graph(self, tiny_graph):
        validate_graph(tiny_graph)  # should not raise
