"""Tests for the global-id <-> (owner, local-id) partition book."""

import numpy as np
import pytest

from repro.graph.partition import metis_partition
from repro.graph.partition_book import PartitionBook


@pytest.fixture()
def book():
    parts = np.array([0, 1, 0, 1, 2, 2, 0, 1], dtype=np.int64)
    return PartitionBook(parts, 3)


class TestOwner:
    def test_owner_lookup(self, book):
        np.testing.assert_array_equal(book.owner(np.array([0, 1, 4])), [0, 1, 2])

    def test_owner_out_of_range(self, book):
        with pytest.raises(ValueError):
            book.owner(np.array([100]))

    def test_is_owned(self, book):
        mask = book.is_owned(np.array([0, 1, 2]), 0)
        np.testing.assert_array_equal(mask, [True, False, True])


class TestLocalGlobal:
    def test_partition_nodes_sorted(self, book):
        np.testing.assert_array_equal(book.partition_nodes(0), [0, 2, 6])

    def test_partition_size(self, book):
        assert book.partition_size(0) == 3
        assert book.partition_size(2) == 2

    def test_to_local_roundtrip(self, book):
        global_ids = book.partition_nodes(1)
        local = book.to_local(global_ids, 1)
        back = book.to_global(local, 1)
        np.testing.assert_array_equal(back, global_ids)

    def test_to_local_rejects_foreign_nodes(self, book):
        with pytest.raises(ValueError):
            book.to_local(np.array([1]), 0)

    def test_to_global_out_of_range(self, book):
        with pytest.raises(ValueError):
            book.to_global(np.array([10]), 0)

    def test_group_by_owner(self, book):
        groups = book.group_by_owner(np.array([0, 1, 4, 5, 6]))
        np.testing.assert_array_equal(groups[0], [0, 6])
        np.testing.assert_array_equal(groups[1], [1])
        np.testing.assert_array_equal(groups[2], [4, 5])

    def test_invalid_partition_index(self, book):
        with pytest.raises(IndexError):
            book.partition_nodes(5)


class TestFromResult:
    def test_consistency_with_partition_result(self, small_community_graph):
        graph, _ = small_community_graph
        result = metis_partition(graph, 3, seed=0)
        book = PartitionBook.from_result(result)
        assert book.num_parts == 3
        assert book.num_nodes == graph.num_nodes
        # Every node's owner matches the result's assignment.
        all_nodes = np.arange(graph.num_nodes)
        np.testing.assert_array_equal(book.owner(all_nodes), result.parts)
        # Local id spaces are dense 0..size-1.
        for p in range(3):
            local = book.to_local(book.partition_nodes(p), p)
            np.testing.assert_array_equal(np.sort(local), np.arange(book.partition_size(p)))

    def test_rejects_out_of_range_parts(self):
        with pytest.raises(ValueError):
            PartitionBook(np.array([0, 5]), 2)
