"""Unit tests for the discrete-event core (repro.events)."""

import numpy as np
import pytest

from repro.distributed.clock import SimClock
from repro.distributed.cost_model import CongestedCostModel, CostModel
from repro.events.loop import EventLoop
from repro.events.schedule import CongestionSpec, FailureSchedule, FailureSpec


class TestEventLoop:
    def test_pops_in_time_order(self):
        loop = EventLoop()
        loop.push(3.0, "c", rank=0)
        loop.push(1.0, "a", rank=0)
        loop.push(2.0, "b", rank=0)
        assert [loop.pop().kind for _ in range(3)] == ["a", "b", "c"]
        assert loop.pop() is None

    def test_ties_broken_by_rank_then_seq(self):
        loop = EventLoop()
        loop.push(1.0, "r2-first", rank=2)
        loop.push(1.0, "r0", rank=0)
        loop.push(1.0, "r2-second", rank=2)
        loop.push(1.0, "engine", rank=-1)
        kinds = [loop.pop().kind for _ in range(4)]
        assert kinds == ["engine", "r0", "r2-first", "r2-second"]

    def test_cancel_discards_lazily(self):
        loop = EventLoop()
        keep = loop.push(1.0, "keep", rank=0)
        drop = loop.push(0.5, "drop", rank=0)
        loop.cancel(drop)
        assert len(loop) == 1
        ev = loop.pop()
        assert ev is keep
        assert loop.empty

    def test_cancel_twice_is_idempotent(self):
        loop = EventLoop()
        ev = loop.push(1.0, "x", rank=0)
        loop.cancel(ev)
        loop.cancel(ev)
        assert len(loop) == 0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().push(-0.1, "bad")

    def test_history_records_pop_order(self):
        loop = EventLoop(record=True)
        loop.push(2.0, "b", rank=1)
        loop.push(1.0, "a", rank=0)
        loop.pop(), loop.pop()
        assert [h[0] for h in loop.history] == ["a", "b"]
        assert [h[2] for h in loop.history] == [0, 1]

    def test_peek_time_skips_cancelled(self):
        loop = EventLoop()
        first = loop.push(1.0, "a")
        loop.push(2.0, "b")
        loop.cancel(first)
        assert loop.peek_time() == 2.0


class TestFailureSchedule:
    def test_same_seed_same_plan(self):
        spec = FailureSpec(rate=0.2)
        a = FailureSchedule(spec, world_size=4, seed=7)
        b = FailureSchedule(spec, world_size=4, seed=7)
        for rank in range(4):
            assert a._plan[rank] == b._plan[rank]

    def test_different_seed_different_plan(self):
        spec = FailureSpec(rate=0.2)
        a = FailureSchedule(spec, world_size=4, seed=7)
        b = FailureSchedule(spec, world_size=4, seed=8)
        assert any(a._plan[r] != b._plan[r] for r in range(4))

    def test_per_rank_plans_independent_of_world_size(self):
        spec = FailureSpec(rate=0.2)
        small = FailureSchedule(spec, world_size=2, seed=7)
        large = FailureSchedule(spec, world_size=6, seed=7)
        for rank in range(2):
            assert small._plan[rank] == large._plan[rank]

    def test_downtime_factor_bounds(self):
        spec = FailureSpec(rate=0.5, min_downtime_steps=2.0, max_downtime_steps=4.0)
        schedule = FailureSchedule(spec, world_size=2, seed=0)
        factors = [
            schedule.downtime_factor(rank, step)
            for rank in range(2)
            for step in range(spec.horizon_steps)
            if schedule.downtime_factor(rank, step) is not None
        ]
        assert factors, "a 50% rate over the horizon must schedule failures"
        assert all(2.0 <= f <= 4.0 for f in factors)

    def test_zero_rate_schedules_nothing(self):
        schedule = FailureSchedule(FailureSpec(rate=0.0), world_size=3, seed=1)
        assert schedule.total_planned_failures() == 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FailureSpec(rate=1.5)
        with pytest.raises(ValueError):
            FailureSpec(min_downtime_steps=5.0, max_downtime_steps=2.0)


class TestCongestion:
    def test_square_wave_windows(self):
        spec = CongestionSpec(period_s=1.0, duty=0.5, latency_multiplier=8.0,
                              bandwidth_divisor=2.0)
        assert spec.congested_at(0.1) and spec.congested_at(0.49)
        assert not spec.congested_at(0.51) and not spec.congested_at(0.99)
        assert spec.congested_at(1.25)  # periodic
        assert spec.factors_at(0.1) == (8.0, 2.0)
        assert spec.factors_at(0.6) == (1.0, 1.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CongestionSpec(duty=0.0)
        with pytest.raises(ValueError):
            CongestionSpec(latency_multiplier=0.5)

    def test_congested_cost_model_scales_rpc_only(self):
        base = CostModel.cpu()
        clock = SimClock()
        spec = CongestionSpec(period_s=1.0, duty=0.5, latency_multiplier=10.0,
                              bandwidth_divisor=4.0)
        model = CongestedCostModel(base, spec, clock)
        # Congested window (t=0): latency x10, bandwidth /4.
        congested = model.time_rpc(100, 32, num_requests=2)
        payload = 100 * 32 * 4
        expected = 2 * base.rpc_latency_s * 10.0 + payload * 4.0 / base.network_bandwidth_Bps
        assert congested == pytest.approx(expected)
        # Clear window: identical to the base model.
        clock.advance(0.6)
        assert model.time_rpc(100, 32, num_requests=2) == pytest.approx(
            base.time_rpc(100, 32, num_requests=2)
        )
        # Non-RPC components always delegate untouched.
        assert model.time_copy(100, 32) == base.time_copy(100, 32)
        assert model.time_allreduce(1000, 4) == base.time_allreduce(1000, 4)
        assert model.backend == base.backend

    def test_congested_batched_pull_empty_is_free(self):
        model = CongestedCostModel(CostModel.cpu(), CongestionSpec(), SimClock())
        assert model.time_rpc_batched(0, 32, 0) == 0.0
        assert model.time_rpc(0, 32) == 0.0

    def test_deterministic_given_clock(self):
        base = CostModel.cpu()
        spec = CongestionSpec()
        times = []
        for _ in range(2):
            clock = SimClock()
            model = CongestedCostModel(base, spec, clock)
            clock.advance(1.234e-3)
            times.append(model.time_rpc(50, 16))
        assert times[0] == times[1]

    def test_factors_vary_over_time(self):
        spec = CongestionSpec(period_s=2.0e-3, duty=0.5)
        samples = {spec.congested_at(t) for t in np.linspace(0, 4.0e-3, 41)}
        assert samples == {True, False}
