"""Checkpoint/restore round-trips: mid-epoch state resumes bit-identically.

Every layer the elastic/recovery machinery snapshots — seed iterator, data
loader, simulated clock, optimizer buffers, cache tier contents — must
restore to a state whose continued execution is indistinguishable from an
uninterrupted run.  The engine-level consensus checkpoint (model + optimizer
at the last applied sync round) is exercised through a failure run: the
recovering trainer's ``restored_from_step`` provenance must be positive and
the downtime ledger must still reconcile.
"""

import numpy as np
import pytest

from repro.cache.tier import CacheTier
from repro.core.config import PrefetchConfig
from repro.distributed.clock import SimClock
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.events.schedule import FailureSpec
from repro.graph.datasets import load_dataset
from repro.nn.layers import Linear
from repro.nn.optim import SGD, Adam
from repro.sampling.seeds import SeedIterator
from repro.training.async_engine import AsyncClusterEngine
from repro.training.checkpoint import (
    CheckpointStore,
    ClusterCheckpoint,
    TrainerCheckpoint,
)
from repro.training.config import TrainConfig

PREFETCH = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=8)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("products", scale=0.05, seed=5)


def make_cluster(dataset, **overrides):
    kwargs = dict(num_machines=2, trainers_per_machine=2, batch_size=64,
                  fanouts=(5, 10), seed=7)
    kwargs.update(overrides)
    return SimCluster(dataset, ClusterConfig(**kwargs))


def make_iterator():
    return SeedIterator(np.arange(100, dtype=np.int64), batch_size=16, seed=11)


class TestSeedIteratorRoundTrip:
    def test_mid_epoch_restore_resumes_bit_identically(self):
        ref = make_iterator()
        it = ref.epoch()
        consumed = [next(it) for _ in range(3)]
        state = ref.snapshot()
        remainder = [b.copy() for b in it]
        next_epoch = [b.copy() for b in ref.epoch()]

        fresh = make_iterator()
        fresh.restore(state)
        resumed = list(fresh.epoch())
        assert len(resumed) == len(remainder)
        for a, b in zip(resumed, remainder):
            np.testing.assert_array_equal(a, b)
        # The RNG stream continues where the snapshot left it: the following
        # epoch's shuffle matches the uninterrupted iterator's.
        for a, b in zip(fresh.epoch(), next_epoch):
            np.testing.assert_array_equal(a, b)
        assert len(consumed) == 3  # the prefix was really consumed

    def test_between_epoch_snapshot_does_not_resume(self):
        ref = make_iterator()
        list(ref.epoch())
        state = ref.snapshot()
        assert state["mid_epoch"] is False
        fresh = make_iterator()
        fresh.restore(state)
        # Not a resume: the next epoch() starts epoch 1 with the checkpointed
        # RNG stream, identical to the uninterrupted iterator's epoch 1.
        for a, b in zip(fresh.epoch(), ref.epoch()):
            np.testing.assert_array_equal(a, b)

    def test_reassign_swaps_seeds_in_place_next_epoch(self):
        it = make_iterator()
        epoch0 = it.epoch()
        first = next(epoch0)
        it.reassign(np.arange(200, 232, dtype=np.int64))
        # The in-flight epoch finishes over the old shuffled order...
        rest = np.concatenate([first] + list(epoch0))
        assert set(rest.tolist()) <= set(range(100))
        # ...and the new assignment takes effect at the next epoch.
        new = np.concatenate(list(it.epoch()))
        assert set(new.tolist()) == set(range(200, 232))


class TestDataLoaderRoundTrip:
    def test_mid_epoch_loader_restore_matches_uninterrupted(self, dataset):
        cluster_a = make_cluster(dataset)
        cluster_b = make_cluster(dataset)
        loader_a = cluster_a.trainers[0].dataloader
        loader_b = cluster_b.trainers[0].dataloader

        it = loader_a.epoch()
        for _ in range(2):
            next(it)
        state = loader_a.snapshot()
        remainder = [mb.seeds.copy() for mb in it]

        loader_b.restore(state)
        resumed = [mb.seeds.copy() for mb in loader_b.epoch()]
        assert len(resumed) == len(remainder)
        for a, b in zip(resumed, remainder):
            np.testing.assert_array_equal(a, b)
        assert loader_b.steps_taken == loader_a.steps_taken


class TestClockRoundTrip:
    def test_snapshot_restore_round_trips_ledger(self):
        clock = SimClock()
        clock.advance(1.5e-3, "compute")
        clock.advance(0.5e-3, "ddp")
        state = clock.snapshot()
        clock.advance(2.0e-3, "downtime")
        clock.restore(state)
        assert clock.time == pytest.approx(2.0e-3)
        assert clock.component_time("compute") == pytest.approx(1.5e-3)
        assert clock.component_time("ddp") == pytest.approx(0.5e-3)
        assert clock.component_time("downtime") == 0.0
        # The restored ledger is live, not frozen.
        clock.advance(1.0e-3, "migration")
        assert clock.component_time("migration") == pytest.approx(1.0e-3)


class TestOptimizerState:
    def _step(self, opt, params):
        grads = {k: np.full_like(v, 0.25) for k, v in params.items()}
        opt.step(params, grads)

    @pytest.mark.parametrize("make_opt", [
        lambda: SGD(lr=0.1, momentum=0.9),
        lambda: Adam(lr=0.01),
    ])
    def test_restored_optimizer_continues_identically(self, make_opt):
        params_a = {"w": np.linspace(0.0, 1.0, 6).reshape(2, 3)}
        params_b = {"w": params_a["w"].copy()}
        opt_a, opt_b = make_opt(), make_opt()
        for _ in range(3):
            self._step(opt_a, params_a)
        state = opt_a.state_dict()
        opt_b.load_state_dict(state)
        params_b["w"][:] = params_a["w"]
        for _ in range(2):
            self._step(opt_a, params_a)
            self._step(opt_b, params_b)
        np.testing.assert_array_equal(params_a["w"], params_b["w"])

    def test_state_dict_copies_are_detached(self):
        opt = SGD(lr=0.1, momentum=0.9)
        params = {"w": np.ones(4)}
        self._step(opt, params)
        state = opt.state_dict()
        self._step(opt, params)
        assert not np.array_equal(state["velocity"]["w"], opt.state_dict()["velocity"]["w"])


class TestCacheTierRoundTrip:
    def test_snapshot_restore_preserves_resident_set(self):
        rows = np.arange(12, dtype=np.float32).reshape(3, 4)
        tier = CacheTier("hot", 4, 4, eviction="lru")
        tier.seed(np.array([2, 5, 9]), rows)
        tier.lookup(np.array([5]), step=3)
        state = tier.snapshot()
        tier.invalidate()
        assert tier.size == 0
        tier.restore(state)
        np.testing.assert_array_equal(tier.resident_ids, [2, 5, 9])
        hit_mask, got = tier.lookup(np.array([2, 5, 9]), step=4)
        assert hit_mask.all()
        np.testing.assert_array_equal(np.sort(got, axis=0), np.sort(rows, axis=0))

    def test_invalidate_counts_evictions(self):
        rows = np.ones((2, 4), dtype=np.float32)
        tier = CacheTier("shared", 4, 4)
        tier.seed(np.array([1, 2]), rows)
        dropped = tier.invalidate()
        assert dropped == 2
        assert tier.stats.evictions == 2
        assert tier.size == 0 and tier.nbytes() == 0


class TestCheckpointArtifacts:
    def _model_and_opt(self):
        model = Linear(3, 2, seed=4)
        opt = SGD(lr=0.1, momentum=0.9)
        params = model.state_dict()
        opt.step(params, {k: np.full_like(v, 0.1) for k, v in params.items()})
        return model, opt

    def test_cluster_checkpoint_round_trip(self):
        model, opt = self._model_and_opt()
        ckpt = ClusterCheckpoint.capture(model, opt, step=2, time_s=1.0e-3)
        assert ckpt.nbytes() > 0
        # Perturb, then restore: model and optimizer return bit-exactly.
        for v in model.state_dict().values():
            v += 1.0
        opt.load_state_dict(SGD(lr=0.1, momentum=0.9).state_dict())
        ckpt.restore_into(model, opt)
        assert ClusterCheckpoint.capture(model, opt, step=2, time_s=1.0e-3) == ckpt

    def test_trainer_checkpoint_rejects_wrong_rank(self, dataset):
        cluster = make_cluster(dataset)
        ckpt = TrainerCheckpoint.capture(cluster.trainers[0])
        with pytest.raises(ValueError, match="rank"):
            ckpt.restore_into(cluster.trainers[1])

    def test_trainer_checkpoint_round_trip(self, dataset):
        cluster = make_cluster(dataset)
        trainer = cluster.trainers[1]
        trainer.clock.advance(1.0e-3, "compute")
        it = trainer.dataloader.epoch()
        next(it)
        ckpt = TrainerCheckpoint.capture(trainer)
        trainer.clock.advance(5.0e-3, "stall")
        list(it)
        ckpt.restore_into(trainer)
        assert TrainerCheckpoint.capture(trainer) == ckpt

    def test_store_requires_a_capture_before_restore(self):
        store = CheckpointStore()
        model, opt = self._model_and_opt()
        assert store.last_step == 0
        with pytest.raises(RuntimeError, match="no checkpoint"):
            store.restore(model, opt)
        store.update(model, opt, step=1, time_s=0.5e-3)
        assert store.last_step == 1
        assert store.restore(model, opt).step == 1
        assert store.updates == 1 and store.restores == 1


class TestEngineRecoveryProvenance:
    def test_failure_recovery_restores_from_consensus_step(self, dataset):
        spec = FailureSpec(rate=0.3, min_downtime_steps=2.0, max_downtime_steps=4.0)
        cluster = make_cluster(dataset)
        engine = AsyncClusterEngine(
            cluster, TrainConfig(epochs=2, hidden_dim=32, seed=1),
            sync="bounded-staleness", sync_options={"staleness": 2}, failures=spec,
        )
        report = engine.run("prefetch", prefetch_config=PREFETCH)
        stats = report.trainer_stats
        failures = sum(t.sync_stats.get("failures", 0.0) for t in stats)
        restores = sum(t.sync_stats.get("restores", 0.0) for t in stats)
        assert failures > 0, "failure rate 0.3 must trigger at least one outage"
        assert restores > 0
        assert engine.checkpoint_store is not None
        assert engine.checkpoint_store.updates > 0
        restored_steps = [
            t.sync_stats["restored_from_step"]
            for t in stats
            if "restored_from_step" in t.sync_stats
        ]
        assert restored_steps and all(step > 0 for step in restored_steps)
        for t in stats:
            # Restore transfers ride the migration component, never downtime:
            # the outage ledger still reconciles exactly.
            assert t.components.get("downtime", 0.0) == pytest.approx(
                t.sync_stats.get("downtime_s", 0.0)
            )
            if t.sync_stats.get("restores", 0.0):
                assert t.components.get("migration", 0.0) > 0.0
