"""Tests for the owner-coalescing RPC channel and the RPC-accounting fixes.

Covers the :class:`BatchedRPCChannel`/:class:`CoalescingWindow` pair (wire vs.
logical request accounting, per-machine coalescing, window lifecycle), the
coalesced-RPC equivalence on the golden 2x2 cluster workload, the zero-miss
"no empty pulls" regression, and the feature-store membership validation.
"""

import numpy as np
import pytest

from repro.core.config import PrefetchConfig
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.rpc import (
    RPC_CHANNELS,
    BatchedRPCChannel,
    CoalescingWindow,
    RPCChannel,
    RPCStats,
    aggregate_rpc_stats,
    build_rpc_channel,
)
from repro.features import (
    FeatureStore,
    LocalKVStoreSource,
    RemoteRPCSource,
    SourceContext,
    build_feature_source,
)
from repro.graph.datasets import load_dataset
from repro.training.cluster_engine import ClusterEngine
from repro.training.config import TrainConfig


@pytest.fixture(scope="module")
def batched_cluster():
    """2x2 cluster whose trainers share one coalescing window per machine."""
    dataset = load_dataset("arxiv", scale=0.25, seed=3)
    config = ClusterConfig(
        num_machines=2, trainers_per_machine=2, batch_size=128,
        fanouts=(5, 10), seed=11, rpc="batched",
    )
    return SimCluster(dataset, config)


class TestRPCStatsExtended:
    def test_as_dict_keeps_legacy_schema(self):
        stats = RPCStats(requests=2, nodes_fetched=5, logical_requests=3, nodes_requested=9)
        assert sorted(stats.as_dict()) == [
            "bytes_fetched", "nodes_fetched", "requests", "simulated_time_s",
        ]
        extended = stats.as_extended_dict()
        assert extended["logical_requests"] == 3 and extended["nodes_requested"] == 9

    def test_merge_includes_logical_counters(self):
        a = RPCStats(requests=1, logical_requests=2, nodes_requested=10)
        b = RPCStats(requests=3, logical_requests=1, nodes_requested=4)
        merged = a.merge(b)
        assert merged.requests == 4
        assert merged.logical_requests == 3 and merged.nodes_requested == 14

    def test_per_call_channel_counts_logical_equal_to_wire_calls(self, small_cluster):
        trainer = small_cluster.trainers[0]
        channel = RPCChannel(small_cluster.servers, trainer.machine)
        halo = trainer.partition.halo_global[:13]
        owners = trainer.partition.halo_owners_of(halo)
        _, _, delta = channel.remote_pull(halo, owners)
        assert delta.logical_requests == 1
        assert delta.nodes_requested == 13 == delta.nodes_fetched
        assert delta.requests == len(np.unique(owners))


class TestRegistry:
    def test_names(self):
        assert set(RPC_CHANNELS.names()) == {"per-call", "batched"}
        assert RPC_CHANNELS.resolve("coalesced") == "batched"
        assert RPC_CHANNELS.resolve("plain") == "per-call"

    def test_build(self, small_cluster):
        per_call = build_rpc_channel("per-call", small_cluster.servers, 0)
        assert type(per_call) is RPCChannel
        batched = build_rpc_channel("batched", small_cluster.servers, 0)
        assert type(batched) is BatchedRPCChannel

    def test_config_rejects_unknown_keys(self, small_dataset):
        with pytest.raises(ValueError, match="rpc channel"):
            ClusterConfig(num_machines=2, trainers_per_machine=1, rpc="telepathy")
        with pytest.raises(ValueError, match="neighbor sampler"):
            ClusterConfig(num_machines=2, trainers_per_machine=1, sampler="psychic")


class TestBatchedChannel:
    def test_trainers_on_one_machine_share_a_window(self, batched_cluster):
        t0, t1 = batched_cluster.trainers[0], batched_cluster.trainers[1]
        assert t0.machine == t1.machine
        assert isinstance(t0.rpc, BatchedRPCChannel)
        assert t0.rpc.window is t1.rpc.window
        other = batched_cluster.trainers[2]
        assert other.rpc.window is not t0.rpc.window

    def test_same_step_pulls_coalesce_across_trainers(self, batched_cluster):
        batched_cluster.reset()
        t0, t1 = batched_cluster.trainers[0], batched_cluster.trainers[1]
        halo = t0.partition.halo_global[:20]
        owners = t0.partition.halo_owners_of(halo)
        t0.rpc.begin_step(0)
        t1.rpc.begin_step(0)
        rows0, time0, delta0 = t0.rpc.remote_pull(halo, owners)
        assert delta0.requests == len(np.unique(owners))
        assert delta0.nodes_fetched == 20
        # The second trainer asks for the same rows in the same step: they ride
        # the open per-owner requests and the window cache — zero wire traffic.
        rows1, time1, delta1 = t1.rpc.remote_pull(halo, owners)
        np.testing.assert_array_equal(rows0, rows1)
        assert delta1.requests == 0 and delta1.nodes_fetched == 0
        assert delta1.bytes_fetched == 0 and delta1.simulated_time_s == 0.0
        assert delta1.logical_requests == 1 and delta1.nodes_requested == 20
        # Overlapping (not identical) pulls only move the new rows.
        extra = t0.partition.halo_global[10:30]
        _, _, delta2 = t1.rpc.remote_pull(extra, t0.partition.halo_owners_of(extra))
        assert delta2.nodes_fetched == 10 and delta2.requests == 0

    def test_rows_match_per_call_channel(self, batched_cluster):
        batched_cluster.reset()
        t0 = batched_cluster.trainers[0]
        plain = RPCChannel(batched_cluster.servers, t0.machine)
        halo = t0.partition.halo_global[:17]
        owners = t0.partition.halo_owners_of(halo)
        t0.rpc.begin_step(3)
        batched_rows, _, _ = t0.rpc.remote_pull(halo, owners)
        plain_rows, _, _ = plain.remote_pull(halo, owners)
        np.testing.assert_array_equal(batched_rows, plain_rows)

    def test_new_step_resets_the_window(self, batched_cluster):
        batched_cluster.reset()
        t0 = batched_cluster.trainers[0]
        halo = t0.partition.halo_global[:5]
        owners = t0.partition.halo_owners_of(halo)
        t0.rpc.begin_step(0)
        _, _, first = t0.rpc.remote_pull(halo, owners)
        t0.rpc.begin_step(1)
        _, _, second = t0.rpc.remote_pull(halo, owners)
        assert second.nodes_fetched == first.nodes_fetched == 5
        assert second.requests == first.requests >= 1

    def test_inactive_window_behaves_per_call(self, batched_cluster):
        batched_cluster.reset()  # deactivates every window
        t0 = batched_cluster.trainers[0]
        halo = t0.partition.halo_global[:6]
        owners = t0.partition.halo_owners_of(halo)
        _, _, delta = t0.rpc.remote_pull(halo, owners)
        assert delta.requests == len(np.unique(owners))
        assert delta.nodes_fetched == 6
        # Pulling again still pays: no window, no cache.
        _, _, again = t0.rpc.remote_pull(halo, owners)
        assert again.nodes_fetched == 6

    def test_empty_pull_is_free(self, batched_cluster):
        t0 = batched_cluster.trainers[0]
        t0.rpc.begin_step(99)
        rows, time_s, delta = t0.rpc.remote_pull(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert rows.shape[0] == 0 and time_s == 0.0
        assert delta.requests == 0 and delta.logical_requests == 0

    def test_local_ids_rejected(self, batched_cluster):
        t0 = batched_cluster.trainers[0]
        t0.rpc.begin_step(100)
        owned = t0.partition.owned_global[:2]
        with pytest.raises(ValueError, match="local_pull"):
            t0.rpc.remote_pull(owned, np.full(2, t0.machine, dtype=np.int64))


class TestCoalescingWindow:
    def test_lifecycle(self):
        window = CoalescingWindow()
        assert not window.active
        window.begin_step(0)
        assert window.active
        ids = np.array([3, 8], dtype=np.int64)
        window.add(ids, np.ones((2, 4), dtype=np.float32))
        np.testing.assert_array_equal(window.contains(np.array([3, 5, 8])), [True, False, True])
        window.note_owner(1)
        assert window.owner_contacted(1) and not window.owner_contacted(2)
        window.begin_step(0)  # same step: state kept
        assert window.owner_contacted(1)
        window.begin_step(1)  # new step: cleared
        assert not window.owner_contacted(1)
        assert not window.contains(np.array([3]))[0]
        window.deactivate()
        assert not window.active

    def test_rows_for_missing_id_raises(self):
        window = CoalescingWindow()
        window.begin_step(0)
        window.add(np.array([2], dtype=np.int64), np.zeros((1, 3), dtype=np.float32))
        with pytest.raises(KeyError, match="missing"):
            window.rows_for(np.array([2, 9], dtype=np.int64))


def _golden_workload(rpc: str):
    """The golden 2x2 fixture's exact workload, parameterized by RPC channel."""
    dataset = load_dataset("products", scale=0.05, seed=5)
    cluster = SimCluster(
        dataset,
        ClusterConfig(
            num_machines=2, trainers_per_machine=2,
            batch_size=64, fanouts=(5, 10), seed=7, rpc=rpc,
        ),
    )
    engine = ClusterEngine(cluster, TrainConfig(epochs=2, hidden_dim=32, seed=1))
    report = engine.run(
        "prefetch",
        prefetch_config=PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=8),
    )
    return cluster, report


class TestCoalescedEquivalenceOnGoldenWorkload:
    def test_batched_rpc_preserves_numerics_and_reduces_wire_requests(self):
        cluster_a, report_a = _golden_workload("per-call")
        cluster_b, report_b = _golden_workload("batched")
        # Training numerics are bit-identical: the channel only changes which
        # wire the same rows travel on, never the rows themselves.
        for ra, rb in zip(report_a.report.epoch_records, report_b.report.epoch_records):
            assert ra.loss == rb.loss
            assert ra.train_accuracy == rb.train_accuracy
        assert report_a.report.num_minibatches == report_b.report.num_minibatches
        agg_a = aggregate_rpc_stats([t.rpc for t in cluster_a.trainers])
        agg_b = aggregate_rpc_stats([t.rpc for t in cluster_b.trainers])
        # Logical demand is identical; the wire carries strictly less.
        assert agg_a.logical_requests == agg_b.logical_requests
        assert agg_a.nodes_requested == agg_b.nodes_requested
        assert agg_b.requests < agg_a.requests
        assert agg_b.nodes_fetched <= agg_a.nodes_fetched
        assert agg_b.simulated_time_s < agg_a.simulated_time_s


class TestZeroMissSteps:
    """Satellite regression: steps that fetch nothing add zero requests/bytes."""

    def _full_buffer_source(self, small_cluster, trainer):
        ctx = SourceContext(
            rpc=trainer.rpc,
            partition=trainer.partition,
            num_global_nodes=small_cluster.dataset.num_nodes,
            book=small_cluster.book,
            # Buffer every halo node and disable eviction: every subsequent
            # step is all-hits, so no remote pull should ever be issued.
            prefetch_config=PrefetchConfig(halo_fraction=1.0, eviction_enabled=False),
            seed=0,
        )
        source = build_feature_source("buffered", ctx)
        source.initialize()
        return source

    def test_all_hit_steps_add_zero_requests_and_bytes(self, small_cluster):
        trainer = small_cluster.trainers[0]
        source = self._full_buffer_source(small_cluster, trainer)
        baseline = trainer.rpc.stats.merge(RPCStats())  # copy
        halo = trainer.partition.halo_global[:50]
        for _ in range(4):
            rows, stats = source.fetch(halo)
            assert stats.num_misses == 0 and stats.num_hits == len(halo)
            assert stats.rpc_time_s == 0.0 and stats.bytes_fetched == 0
            assert stats.remote_nodes_fetched == 0
        after = trainer.rpc.stats
        assert after.requests == baseline.requests
        assert after.logical_requests == baseline.logical_requests
        assert after.bytes_fetched == baseline.bytes_fetched
        assert after.nodes_fetched == baseline.nodes_fetched

    def test_empty_remote_fetch_counts_nothing(self, small_cluster):
        trainer = small_cluster.trainers[1]
        source = RemoteRPCSource.from_book(trainer.rpc, small_cluster.book)
        before_stats = trainer.rpc.stats.merge(RPCStats())
        rows, stats = source.fetch(np.zeros(0, dtype=np.int64))
        assert rows.shape[0] == 0
        assert stats.num_requested == 0 and stats.rpc_time_s == 0.0
        assert source.summary()["calls"] == 0.0
        assert trainer.rpc.stats.logical_requests == before_stats.logical_requests

    def test_empty_local_fetch_counts_nothing(self, small_cluster):
        trainer = small_cluster.trainers[1]
        source = LocalKVStoreSource(trainer.rpc)
        rows, stats = source.fetch(np.zeros(0, dtype=np.int64))
        assert rows.shape == (0, small_cluster.dataset.feature_dim)
        assert stats.copy_time_s == 0.0 and stats.num_requested == 0
        assert source.summary()["calls"] == 0.0


class TestFeatureStoreMembershipValidation:
    """Satellite regression: unknown global ids raise instead of mis-routing."""

    def _store(self, small_cluster, trainer):
        return FeatureStore(
            partition=trainer.partition,
            local_source=LocalKVStoreSource(trainer.rpc),
            halo_source=RemoteRPCSource.from_book(trainer.rpc, small_cluster.book),
        )

    def test_id_past_last_owned_raises_keyerror(self, small_cluster):
        trainer = small_cluster.trainers[0]
        store = self._store(small_cluster, trainer)
        known = np.concatenate([trainer.partition.owned_global, trainer.partition.halo_global])
        foreign = np.setdiff1d(
            np.arange(small_cluster.dataset.num_nodes + 3, dtype=np.int64), known
        )[-1:]
        assert len(foreign) == 1 and foreign[0] > trainer.partition.owned_global.max()
        with pytest.raises(KeyError, match=str(int(foreign[0]))):
            store.fetch(foreign)

    def test_mixed_request_names_only_the_offenders(self, small_cluster):
        trainer = small_cluster.trainers[0]
        store = self._store(small_cluster, trainer)
        known = np.concatenate([trainer.partition.owned_global, trainer.partition.halo_global])
        foreign = np.setdiff1d(np.arange(known.max() + 2, dtype=np.int64), known)[:1]
        mixed = np.concatenate([trainer.partition.owned_global[:3], foreign])
        with pytest.raises(KeyError, match=str(int(foreign[0]))):
            store.fetch(mixed)

    def test_negative_ids_rejected(self, small_cluster):
        trainer = small_cluster.trainers[0]
        store = self._store(small_cluster, trainer)
        with pytest.raises(ValueError, match="negative"):
            store.fetch(np.array([-1], dtype=np.int64))

    def test_valid_mixed_fetch_still_routes(self, small_cluster):
        trainer = small_cluster.trainers[0]
        store = self._store(small_cluster, trainer)
        mixed = np.concatenate(
            [trainer.partition.owned_global[:4], trainer.partition.halo_global[:6]]
        )
        rows, stats = store.fetch(mixed)
        np.testing.assert_array_equal(rows, small_cluster.dataset.features[mixed])
        assert stats.num_hits == 4 and stats.num_misses == 6
