"""Unit tests for the tiered feature-cache subsystem (``repro.cache``).

Covers the tier's storage/metadata mechanics, every admission and eviction
policy, the stack's promotion/miss-dedup behavior, the adaptive capacity
controller's budget conservation, and the edge cases the PR 3 regression
suites established as house style: repeated batches, empty fetches, and
zero-capacity configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    ADMISSION_POLICIES,
    CACHE_EVICTION_POLICIES,
    AdaptiveCapacityController,
    CacheConfig,
    CacheTier,
    TieredFeatureCache,
)

DIM = 4


def make_server(num_ids: int = 500):
    return np.arange(num_ids * DIM, dtype=np.float32).reshape(num_ids, DIM)


def make_fetcher(server, log=None):
    def fetch(ids):
        if log is not None:
            log.append(np.asarray(ids).copy())
        return server[ids], 0.001 * len(ids), 8 * len(ids)
    return fetch


def ids_of(*values):
    return np.asarray(values, dtype=np.int64)


class TestRegistries:
    def test_registered_names(self):
        assert set(ADMISSION_POLICIES.names()) == {
            "always", "static-degree", "degree-weighted",
            "scored", "scored-strict", "scored-bypass", "scored-online",
        }
        assert set(CACHE_EVICTION_POLICIES.names()) == {
            "none", "lru", "lfu", "clock", "degree-weighted", "scored",
        }
        assert "never" in ADMISSION_POLICIES          # alias
        assert "second-chance" in CACHE_EVICTION_POLICIES  # alias
        assert "scored-conservative" in ADMISSION_POLICIES  # alias
        assert "lowest-upper-bound" in CACHE_EVICTION_POLICIES  # alias

    def test_unknown_names_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            CacheConfig(admission="fifo")
        with pytest.raises(ValueError, match="unknown cache eviction policy"):
            CacheConfig(eviction="belady")
        with pytest.raises(ValueError, match="tiers"):
            CacheConfig(tiers=3)

    def test_default_config_is_the_static_single_tier(self):
        config = CacheConfig()
        assert config.is_default_single_tier
        assert not CacheConfig(eviction="lru").is_default_single_tier
        assert not CacheConfig(tiers=2).is_default_single_tier

    def test_adaptive_requires_two_tiers(self):
        # Regression: adaptive with a single tier used to be silently inert
        # (no controller is ever built) while still flipping the stats schema.
        with pytest.raises(ValueError, match="tiers=2"):
            CacheConfig(adaptive=True)
        assert CacheConfig(tiers=2, adaptive=True).adaptive

    def test_split_budget(self):
        assert CacheConfig().split_budget(100) == (100, 0)
        assert CacheConfig(tiers=2, hot_fraction=0.25).split_budget(100) == (25, 75)
        assert CacheConfig(tiers=2).split_budget(0) == (0, 0)


class TestCacheTier:
    def test_lookup_hits_and_misses(self):
        server = make_server()
        tier = CacheTier("hot", 4, DIM)
        tier.seed(ids_of(2, 5, 9), server[ids_of(2, 5, 9)])
        hit_mask, rows = tier.lookup(ids_of(5, 7, 2), step=1)
        np.testing.assert_array_equal(hit_mask, [True, False, True])
        np.testing.assert_array_equal(rows, server[ids_of(5, 2)])
        assert tier.stats.hits == 2 and tier.stats.misses == 1
        assert tier.stats.lookups == 3

    def test_zero_capacity_tier_always_misses_and_rejects(self):
        server = make_server()
        tier = CacheTier("hot", 0, DIM)
        hit_mask, rows = tier.lookup(ids_of(1, 2), step=0)
        assert not hit_mask.any() and rows.shape == (0, DIM)
        assert tier.admit(ids_of(1, 2), server[ids_of(1, 2)], step=0) == 0
        assert tier.size == 0
        assert tier.stats.rejections == 2

    def test_empty_lookup_and_admit_are_free(self):
        tier = CacheTier("hot", 4, DIM)
        hit_mask, rows = tier.lookup(np.zeros(0, dtype=np.int64), step=0)
        assert len(hit_mask) == 0 and rows.shape == (0, DIM)
        assert tier.admit(np.zeros(0, dtype=np.int64),
                          np.zeros((0, DIM), dtype=np.float32), step=0) == 0
        assert tier.stats.lookups == 0 and tier.stats.admissions == 0

    def test_admit_skips_already_resident(self):
        server = make_server()
        tier = CacheTier("hot", 4, DIM)
        tier.seed(ids_of(1, 2), server[ids_of(1, 2)])
        inserted = tier.admit(ids_of(1, 3), server[ids_of(1, 3)], step=0)
        assert inserted == 1
        np.testing.assert_array_equal(tier.resident_ids, ids_of(1, 2, 3))

    def test_seed_validates_capacity_and_uniqueness(self):
        server = make_server()
        tier = CacheTier("hot", 2, DIM)
        with pytest.raises(ValueError, match="capacity"):
            tier.seed(ids_of(1, 2, 3), server[ids_of(1, 2, 3)])
        with pytest.raises(ValueError, match="unique"):
            tier.seed(ids_of(1, 1), server[ids_of(1, 1)])

    def test_lru_evicts_least_recently_hit(self):
        server = make_server()
        tier = CacheTier("hot", 3, DIM, eviction="lru")
        tier.seed(ids_of(1, 2, 3), server[ids_of(1, 2, 3)])
        tier.lookup(ids_of(1), step=5)   # 1 is fresh; 2 and 3 stale at step 0
        tier.lookup(ids_of(3), step=6)
        tier.admit(ids_of(9), server[ids_of(9)], step=7)
        np.testing.assert_array_equal(tier.resident_ids, ids_of(1, 3, 9))

    def test_lfu_evicts_least_frequent_with_recency_tiebreak(self):
        server = make_server()
        tier = CacheTier("hot", 3, DIM, eviction="lfu")
        tier.seed(ids_of(1, 2, 3), server[ids_of(1, 2, 3)])
        tier.lookup(ids_of(1, 1, 2), step=1)  # freq: 1 -> 2, 2 -> 1, 3 -> 0
        tier.lookup(ids_of(1), step=2)
        tier.admit(ids_of(9), server[ids_of(9)], step=3)
        np.testing.assert_array_equal(tier.resident_ids, ids_of(1, 2, 9))

    def test_clock_gives_referenced_rows_a_second_chance(self):
        server = make_server()
        tier = CacheTier("hot", 3, DIM, eviction="clock")
        tier.seed(ids_of(1, 2, 3), server[ids_of(1, 2, 3)])
        # First sweep clears all reference bits (everything seeded referenced),
        # second finds the first slot: deterministic victim order.
        tier.admit(ids_of(9), server[ids_of(9)], step=1)
        assert tier.size == 3
        assert 9 in tier.resident_ids
        # The hand advanced past the victim; a re-referenced survivor is kept
        # on the next round while an untouched one goes.
        survivors = [i for i in tier.resident_ids if i != 9]
        tier.lookup(ids_of(survivors[0]), step=2)
        tier.admit(ids_of(17), server[ids_of(17)], step=3)
        assert survivors[0] in tier.resident_ids

    def test_degree_weighted_eviction_keeps_hubs(self):
        server = make_server()
        degrees = np.zeros(500, dtype=np.int64)
        degrees[ids_of(1, 2, 3, 9)] = [100, 5, 50, 70]
        tier = CacheTier("hot", 3, DIM, eviction="degree-weighted",
                         degree_of=lambda ids: degrees[ids])
        tier.seed(ids_of(1, 2, 3), server[ids_of(1, 2, 3)])
        tier.admit(ids_of(9), server[ids_of(9)], step=1)
        np.testing.assert_array_equal(np.sort(tier.resident_ids), ids_of(1, 3, 9))

    def test_static_degree_admission_never_admits_at_runtime(self):
        server = make_server()
        tier = CacheTier("hot", 4, DIM, admission="static-degree", eviction="none")
        tier.seed(ids_of(1, 2), server[ids_of(1, 2)])
        assert tier.admit(ids_of(7, 8), server[ids_of(7, 8)], step=1) == 0
        np.testing.assert_array_equal(tier.resident_ids, ids_of(1, 2))
        assert tier.stats.evictions == 0

    def test_degree_weighted_admission_filters_cold_candidates(self):
        server = make_server()
        degrees = np.zeros(500, dtype=np.int64)
        degrees[ids_of(1, 2, 3, 4, 90, 91)] = [10, 20, 30, 40, 100, 1]
        tier = CacheTier("hot", 4, DIM, admission="degree-weighted", eviction="lru",
                         degree_of=lambda ids: degrees[ids])
        tier.seed(ids_of(1, 2, 3, 4), server[ids_of(1, 2, 3, 4)])
        tier.admit(ids_of(90, 91), server[ids_of(90, 91)], step=1)
        assert 90 in tier.resident_ids      # above-median degree: admitted
        assert 91 not in tier.resident_ids  # below-median: filtered
        assert tier.stats.rejections >= 1

    def test_resize_shrink_evicts_via_policy_and_grow_is_free(self):
        server = make_server()
        tier = CacheTier("hot", 4, DIM, eviction="lru")
        tier.seed(ids_of(1, 2, 3, 4), server[ids_of(1, 2, 3, 4)])
        tier.lookup(ids_of(2, 4), step=3)
        evicted = tier.resize(2, step=4)
        assert evicted == 2 and tier.size == 2 and tier.capacity == 2
        np.testing.assert_array_equal(tier.resident_ids, ids_of(2, 4))
        assert tier.resize(10, step=5) == 0
        assert tier.capacity == 10 and tier.size == 2

    def test_clock_resize_never_collects_the_same_victim_twice(self):
        # Regression: the CLOCK sweep could revisit an already-collected slot
        # on its second pass, returning duplicate victims — np.delete then
        # removed fewer rows than overflow, leaving size > capacity.
        server = make_server()
        tier = CacheTier("hot", 3, DIM, eviction="clock")
        tier.seed(ids_of(1, 2, 3), server[ids_of(1, 2, 3)])
        tier.resident_ref[:] = [False, True, True]
        evicted = tier.resize(1, step=1)
        assert evicted == 2
        assert tier.size == 1 and tier.capacity == 1
        assert tier.stats.evictions == 2

    def test_admit_deduplicates_candidate_ids(self):
        # Regression: duplicate candidates (e.g. a promoted repeated-id hit)
        # used to occupy two slots for one row.
        server = make_server()
        tier = CacheTier("hot", 4, DIM, eviction="lru")
        inserted = tier.admit(ids_of(7, 7, 8), server[ids_of(7, 7, 8)], step=0)
        assert inserted == 2
        np.testing.assert_array_equal(tier.resident_ids, ids_of(7, 8))

    def test_resize_shrink_succeeds_even_with_none_policy(self):
        server = make_server()
        tier = CacheTier("hot", 3, DIM, admission="static-degree", eviction="none")
        tier.seed(ids_of(1, 2, 3), server[ids_of(1, 2, 3)])
        assert tier.resize(1) == 2
        assert tier.size == 1 and tier.capacity == 1


class TestTieredFeatureCache:
    def test_two_tier_fetch_promotes_and_dedups(self):
        server = make_server()
        log = []
        hot = CacheTier("hot", 2, DIM, eviction="lru")
        shared = CacheTier("shared", 8, DIM, eviction="lru")
        stack = TieredFeatureCache([hot, shared], make_fetcher(server, log), DIM)

        ids = ids_of(10, 11, 10, 12)
        rows, result = stack.fetch(ids, step=0)
        np.testing.assert_array_equal(rows, server[ids])
        # Duplicates are deduplicated before hitting the miss handler.
        np.testing.assert_array_equal(log[0], ids_of(10, 11, 12))
        assert result.num_misses == 4 and result.fetched_rows == 3
        assert result.per_tier["shared"]["admissions"] == 3

        rows, result = stack.fetch(ids_of(10, 11, 12), step=1)
        np.testing.assert_array_equal(rows, server[ids_of(10, 11, 12)])
        assert result.num_hits == 3 and result.fetched_rows == 0
        assert len(log) == 1  # nothing new fetched below the stack
        # Rows beyond the hot tier's capacity were still served by shared.
        assert result.per_tier["hot"]["hits"] + result.per_tier["shared"]["hits"] == 3

    def test_shared_hits_promote_into_hot(self):
        server = make_server()
        hot = CacheTier("hot", 4, DIM, eviction="lru")
        shared = CacheTier("shared", 8, DIM, eviction="lru")
        stack = TieredFeatureCache([hot, shared], make_fetcher(server), DIM)
        stack.fetch(ids_of(20, 21), step=0)
        hot.resize(0)                      # force everything out of hot
        hot.resize(4)
        assert hot.size == 0
        _, result = stack.fetch(ids_of(20), step=1)
        assert result.per_tier["shared"]["hits"] == 1
        assert 20 in hot.resident_ids      # promoted back into the hot tier

    def test_promoting_a_repeated_id_inserts_it_once(self):
        # Regression: fetch([5, 5]) hitting only the shared tier used to
        # promote the id twice into the hot tier (duplicate residency).
        server = make_server()
        hot = CacheTier("hot", 4, DIM, eviction="lru")
        shared = CacheTier("shared", 8, DIM, eviction="lru")
        stack = TieredFeatureCache([hot, shared], make_fetcher(server), DIM)
        shared.admit(ids_of(5), server[ids_of(5)], step=0)
        rows, _ = stack.fetch(ids_of(5, 5), step=1)
        np.testing.assert_array_equal(rows, server[ids_of(5, 5)])
        np.testing.assert_array_equal(hot.resident_ids, ids_of(5))

    def test_empty_fetch_touches_nothing(self):
        server = make_server()
        log = []
        stack = TieredFeatureCache(
            [CacheTier("hot", 4, DIM)], make_fetcher(server, log), DIM
        )
        rows, result = stack.fetch(np.zeros(0, dtype=np.int64), step=0)
        assert rows.shape == (0, DIM)
        assert result.num_requested == 0 and result.lookup_nodes == 0
        assert log == [] and result.fetch_time_s == 0.0

    def test_repeated_batches_stop_fetching_once_resident(self):
        server = make_server()
        log = []
        stack = TieredFeatureCache(
            [CacheTier("hot", 16, DIM, eviction="lru")], make_fetcher(server, log), DIM
        )
        batch = ids_of(3, 1, 4, 1, 5)
        for step in range(4):
            rows, result = stack.fetch(batch, step)
            np.testing.assert_array_equal(rows, server[batch])
        assert len(log) == 1               # only the first batch went below
        assert result.num_hits == len(batch)

    def test_tier_counters_flatten_for_fetch_stats(self):
        server = make_server()
        stack = TieredFeatureCache(
            [CacheTier("hot", 2, DIM, eviction="lru")], make_fetcher(server), DIM
        )
        _, result = stack.fetch(ids_of(1, 2, 3), step=0)
        flat = result.tier_counters
        assert flat["hot.misses"] == 3.0
        assert flat["hot.admissions"] == 2.0  # capacity 2: one candidate dropped

    def test_duplicate_tier_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            TieredFeatureCache(
                [CacheTier("hot", 1, DIM), CacheTier("hot", 1, DIM)],
                make_fetcher(make_server()), DIM,
            )

    def test_needs_at_least_one_tier(self):
        with pytest.raises(ValueError, match="at least one tier"):
            TieredFeatureCache([], make_fetcher(make_server()), DIM)


class TestAdaptiveCapacityController:
    def _pair(self, hot_cap, shared_cap):
        hot = CacheTier("hot", hot_cap, DIM, eviction="lru")
        shared = CacheTier("shared", shared_cap, DIM, eviction="lru")
        return hot, shared

    def test_budget_is_conserved_across_adjustments(self):
        server = make_server()
        hot, shared = self._pair(10, 10)
        controller = AdaptiveCapacityController(
            hot, shared, total_budget=20, shared_contribution=10
        )
        # Hot tier hits everything; the shared tier misses everything.
        hot.seed(ids_of(*range(5)), server[:5])
        for step in range(4):
            hot.lookup(ids_of(0, 1, 2), step)
            shared.lookup(ids_of(100, 101), step)
        before_shared = shared.capacity
        adjustment = controller.end_epoch(step=10)
        assert adjustment is not None
        assert hot.capacity + controller.shared_contribution == 20
        assert hot.capacity > 10                    # capacity moved toward hot
        assert shared.capacity < before_shared      # funded by the shared side

    def test_shift_is_bounded_and_floored(self):
        server = make_server()
        hot, shared = self._pair(10, 10)
        controller = AdaptiveCapacityController(
            hot, shared, total_budget=20, shared_contribution=10,
            min_tier_fraction=0.2, max_shift_fraction=0.1,
        )
        hot.seed(ids_of(*range(5)), server[:5])
        for step in range(4):
            hot.lookup(ids_of(0, 1), step)
            shared.lookup(ids_of(100,), step)
        controller.end_epoch(step=5)
        assert abs(hot.capacity - 10) <= 2          # max_shift 10% of 20
        for _ in range(50):
            hot.lookup(ids_of(0), 6)
            shared.lookup(ids_of(100,), 6)
            controller.end_epoch(step=6)
        assert hot.capacity <= 16                   # floor: 20% of 20 stays shared
        assert controller.shared_contribution >= 4

    def test_idle_interval_returns_none(self):
        hot, shared = self._pair(4, 4)
        controller = AdaptiveCapacityController(
            hot, shared, total_budget=8, shared_contribution=4
        )
        assert controller.end_epoch(step=1) is None
        assert controller.history == []

    def test_rejects_bad_parameters(self):
        hot, shared = self._pair(4, 4)
        with pytest.raises(ValueError):
            AdaptiveCapacityController(hot, shared, total_budget=-1, shared_contribution=0)
        with pytest.raises(ValueError):
            AdaptiveCapacityController(
                hot, shared, 8, 4, min_tier_fraction=0.9
            )
        with pytest.raises(ValueError):
            AdaptiveCapacityController(
                hot, shared, 8, 4, max_shift_fraction=0.0
            )
