"""Tests for parameter sweeps, memory profiling, and telemetry structures."""

import numpy as np
import pytest

from repro.core.config import PrefetchConfig
from repro.core.metrics import HitRateTracker
from repro.distributed.cluster import ClusterConfig
from repro.training.config import TrainConfig
from repro.training.memory import compare_memory, profile_memory
from repro.training.sweep import (
    SweepPoint,
    delta_sweep,
    find_optimal,
    gamma_sweep,
    paper_grid,
    run_parameter_sweep,
)
from repro.training.telemetry import (
    ComponentAccumulator,
    EpochRecord,
    StepTiming,
    TrainingReport,
)


QUICK_CLUSTER = ClusterConfig(
    num_machines=2, trainers_per_machine=1, batch_size=128, fanouts=(4, 6), seed=3
)
QUICK_TRAIN = TrainConfig(epochs=1, hidden_dim=16, seed=0)


class TestSweeps:
    def test_run_parameter_sweep_shape(self, small_dataset):
        sweep = run_parameter_sweep(
            small_dataset,
            cluster_config=QUICK_CLUSTER,
            train_config=QUICK_TRAIN,
            halo_fractions=(0.25,),
            gammas=(0.95, 0.995),
            deltas=(8,),
        )
        assert len(sweep.points) == 2
        assert sweep.baseline.mode == "baseline"
        for point in sweep.points:
            assert point.total_time_s > 0
            assert 0.0 <= point.hit_rate <= 1.0

    def test_include_no_eviction_adds_point(self, small_dataset):
        sweep = run_parameter_sweep(
            small_dataset,
            cluster_config=QUICK_CLUSTER,
            train_config=QUICK_TRAIN,
            halo_fractions=(0.25,),
            gammas=(0.995,),
            deltas=(8,),
            include_no_eviction=True,
        )
        assert len(sweep.points) == 2
        assert any(not p.eviction_enabled for p in sweep.points)

    def test_best_and_find_optimal(self, small_dataset):
        sweep = run_parameter_sweep(
            small_dataset,
            cluster_config=QUICK_CLUSTER,
            train_config=QUICK_TRAIN,
            halo_fractions=(0.15, 0.5),
            gammas=(0.995,),
            deltas=(8,),
        )
        best = sweep.best(by="time")
        assert best.total_time_s == min(p.total_time_s for p in sweep.points)
        optimal = find_optimal(sweep)
        assert optimal["total_time_s"] == pytest.approx(best.total_time_s)
        best_hit = sweep.best(by="hit_rate")
        assert best_hit.hit_rate == max(p.hit_rate for p in sweep.points)
        with pytest.raises(ValueError):
            sweep.best(by="loss")

    def test_as_rows(self, small_dataset):
        sweep = run_parameter_sweep(
            small_dataset, cluster_config=QUICK_CLUSTER, train_config=QUICK_TRAIN,
            halo_fractions=(0.25,), gammas=(0.995,), deltas=(8,),
        )
        rows = sweep.as_rows()
        assert len(rows) == 1 and len(rows[0]) == 6

    def test_delta_sweep_structure(self, small_dataset):
        out = delta_sweep(
            small_dataset, gamma_values=[0.995], delta_values=[4, 16],
            cluster_config=QUICK_CLUSTER, train_config=QUICK_TRAIN,
        )
        assert set(out) == {0.995}
        assert len(out[0.995]) == 2

    def test_gamma_sweep_structure(self, small_dataset):
        out = gamma_sweep(
            small_dataset, gamma_values=[0.95, 0.995], delta_values=[8],
            cluster_config=QUICK_CLUSTER, train_config=QUICK_TRAIN,
        )
        assert set(out) == {0.95, 0.995}
        for stats in out.values():
            assert stats["min_time_s"] <= stats["mean_time_s"] <= stats["max_time_s"]

    def test_paper_grid(self):
        reduced = paper_grid(reduced=True)
        full = paper_grid(reduced=False)
        assert len(full["deltas"]) > len(reduced["deltas"])
        assert 0.15 in full["halo_fractions"]

    def test_empty_sweep_best_raises(self, small_dataset):
        from repro.training.sweep import SweepResult
        from repro.training.telemetry import TrainingReport

        empty = SweepResult(
            baseline=TrainingReport(
                mode="baseline", backend="cpu", dataset="x", arch="sage",
                num_machines=1, trainers_per_machine=1, epochs=1,
            ),
            points=[],
        )
        with pytest.raises(ValueError):
            empty.best()


class TestMemoryProfiling:
    def test_profile_and_compare(self, small_dataset):
        profiles = compare_memory(
            small_dataset,
            prefetch_config=PrefetchConfig(halo_fraction=0.5, delta=1, gamma=0.95),
            cluster_config=QUICK_CLUSTER,
            train_config=TrainConfig(epochs=1, hidden_dim=16, max_steps_per_epoch=2, seed=0),
        )
        base, pref = profiles["baseline"], profiles["prefetch"]
        assert base.init_peak_bytes > 0 and base.train_peak_bytes > 0
        assert pref.train_peak_bytes > 0
        # Prefetching should not blow up training peak memory by more than ~2x
        # at this scale (the paper reports ~10% on papers100M).
        assert pref.train_peak_bytes < 3.0 * base.train_peak_bytes
        assert "init_peak_mb" in base.as_dict()

    def test_profile_invalid_mode(self, small_dataset):
        with pytest.raises(ValueError):
            profile_memory(small_dataset, "turbo")


class TestTelemetry:
    def test_component_accumulator_mean_and_overlap(self):
        acc = ComponentAccumulator()
        acc.add(StepTiming(sampling=1.0, ddp=2.0, prepare=1.0, hidden=1.0, critical_path=2.0))
        acc.add(StepTiming(sampling=3.0, ddp=2.0, prepare=2.0, hidden=1.0, critical_path=2.0))
        mean = acc.mean()
        assert mean["sampling"] == pytest.approx(2.0)
        assert acc.overlap_efficiency() == pytest.approx(2.0 / 3.0)
        empty = ComponentAccumulator()
        assert empty.mean()["ddp"] == 0.0
        assert empty.overlap_efficiency() == 1.0

    def test_training_report_speedup_helpers(self):
        base = TrainingReport(
            mode="baseline", backend="cpu", dataset="d", arch="sage",
            num_machines=2, trainers_per_machine=2, epochs=1, total_simulated_time_s=10.0,
        )
        fast = TrainingReport(
            mode="prefetch", backend="cpu", dataset="d", arch="sage",
            num_machines=2, trainers_per_machine=2, epochs=1, total_simulated_time_s=8.0,
        )
        assert fast.speedup_vs(base) == pytest.approx(1.25)
        assert fast.improvement_percent_vs(base) == pytest.approx(20.0)
        assert fast.world_size == 4
        assert base.hit_rate == 0.0

    def test_training_report_epoch_helpers(self):
        report = TrainingReport(
            mode="baseline", backend="cpu", dataset="d", arch="sage",
            num_machines=1, trainers_per_machine=1, epochs=2,
            epoch_records=[
                EpochRecord(0, 1.0, 2.0, 0.3),
                EpochRecord(1, 1.5, 1.0, 0.5),
            ],
        )
        np.testing.assert_allclose(report.epoch_times(), [1.0, 1.5])
        assert report.loss_history == [2.0, 1.0]

    def test_hit_rate_from_tracker(self):
        tracker = HitRateTracker()
        tracker.record(3, 1)
        report = TrainingReport(
            mode="prefetch", backend="cpu", dataset="d", arch="sage",
            num_machines=1, trainers_per_machine=1, epochs=1, hit_tracker=tracker,
        )
        assert report.hit_rate == pytest.approx(0.75)
