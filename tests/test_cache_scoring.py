"""Tests for the scored cache policies (``repro.cache.scoring``).

Property tests for the scorer's invariants (bound ordering, decayed-count
convergence, mode monotonicity, replay determinism), the scored admission/
eviction policies, the online weight learner, and the two degree-heuristic
regression pins this PR ships: constant-degree graphs must not freeze
``degree-weighted`` admission, and the adaptive controller's re-split must
not oscillate under identical hit rates (banker's rounding).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    AdaptiveCapacityController,
    CacheTier,
    PrefetchScorer,
    ScoredAdmission,
    capture_decisions,
)
from repro.cache.scoring import SCORERS, active_decision_log, build_scorer

DIM = 4


def make_server(num_ids: int = 200):
    return np.arange(num_ids * DIM, dtype=np.float32).reshape(num_ids, DIM)


def ids_of(*values):
    return np.asarray(values, dtype=np.int64)


def degree_mod7(ids):
    return np.asarray(ids) % 7 + 1


def run_workload(tier: CacheTier, server: np.ndarray, seed: int = 0,
                 steps: int = 40, batch: int = 6) -> None:
    """Drive a tier through a reproducible random lookup/admit stream."""
    rng = np.random.default_rng(seed)
    for step in range(steps):
        ids = np.sort(rng.choice(len(server), size=batch, replace=False))
        hit_mask, _ = tier.lookup(ids, step)
        missing = ids[~hit_mask]
        if len(missing):
            tier.admit(missing, server[missing], step)


# --------------------------------------------------------------------------- #
# Scorer properties
# --------------------------------------------------------------------------- #
class TestScorerProperties:
    def test_bounds_always_bracket_the_score(self):
        rng = np.random.default_rng(1)
        scorer = PrefetchScorer()
        scorer.bind_degree_lookup(degree_mod7)
        for step in range(50):
            ids = rng.integers(0, 100, size=8)
            scorer.observe(ids, step, rng.random(8) < 0.5)
            probe = rng.integers(0, 120, size=16)  # includes unseen ids
            scores, lower, upper = scorer.score(probe, step)
            assert np.all(lower <= scores + 1e-12)
            assert np.all(scores <= upper + 1e-12)
            assert np.all(lower >= 0.0) and np.all(upper <= 1.0)

    def test_decayed_counts_converge_to_geometric_limit(self):
        # Observing the same id once per step converges c <- c*decay + 1
        # toward 1 / (1 - decay) from below, monotonically.
        decay = 0.9
        scorer = PrefetchScorer(decay=decay)
        limit = 1.0 / (1.0 - decay)
        previous = 0.0
        for step in range(200):
            scorer.observe(ids_of(7), step, np.array([True]))
            count = float(scorer.decayed_count(ids_of(7), step)[0])
            assert previous < count < limit
            previous = count
        assert count == pytest.approx(limit, rel=1e-3)

    def test_decayed_counts_decay_when_unseen(self):
        scorer = PrefetchScorer(decay=0.5)
        scorer.observe(ids_of(3), 0, np.array([True]))
        assert float(scorer.decayed_count(ids_of(3), 0)[0]) == pytest.approx(1.0)
        assert float(scorer.decayed_count(ids_of(3), 4)[0]) == pytest.approx(0.5 ** 4)
        # Unseen ids report zero.
        assert float(scorer.decayed_count(ids_of(99), 4)[0]) == 0.0

    def test_confidence_width_shrinks_with_observations(self):
        scorer = PrefetchScorer()
        scorer.observe(ids_of(1), 0, np.array([True]))
        _, lo1, up1 = scorer.score(ids_of(1), 0)
        for step in range(1, 30):
            scorer.observe(ids_of(1), step, np.array([True]))
        _, lo2, up2 = scorer.score(ids_of(1), 29)
        assert (up2 - lo2) < (up1 - lo1)

    def test_registry_and_validation(self):
        assert "decayed" in SCORERS
        assert "ucb" in SCORERS  # alias
        assert isinstance(build_scorer("default"), PrefetchScorer)
        with pytest.raises(ValueError, match="decay"):
            PrefetchScorer(decay=1.0)
        with pytest.raises(ValueError, match="weights"):
            PrefetchScorer(weights=(1.0, 1.0))
        with pytest.raises(ValueError, match="mode"):
            ScoredAdmission(mode="optimistic")


# --------------------------------------------------------------------------- #
# Mode monotonicity: strict admits ⊆ conservative admits ⊆ bypass admits
# --------------------------------------------------------------------------- #
class TestModeMonotonicity:
    def _full_tier(self) -> CacheTier:
        server = make_server()
        tier = CacheTier("hot", 8, DIM, admission="scored", eviction="scored",
                         degree_of=degree_mod7)
        run_workload(tier, server, seed=3, steps=25)
        assert tier.size == tier.capacity  # the threshold comparison is live
        return tier

    def test_admit_sets_nest_across_modes(self):
        tier = self._full_tier()
        rng = np.random.default_rng(11)
        for _ in range(10):
            candidates = np.sort(rng.choice(200, size=10, replace=False))
            degrees = degree_mod7(candidates)
            strict = ScoredAdmission(mode="strict").admit(tier, candidates, degrees)
            conservative = ScoredAdmission(mode="conservative").admit(
                tier, candidates, degrees)
            bypass = ScoredAdmission(mode="bypass").admit(tier, candidates, degrees)
            assert not np.any(strict & ~conservative)
            assert not np.any(conservative & ~bypass)
            assert bypass.all()


# --------------------------------------------------------------------------- #
# Replay determinism: same seed -> bit-identical decision ledgers
# --------------------------------------------------------------------------- #
class TestReplayDeterminism:
    def _ledger(self, seed: int):
        server = make_server()
        with capture_decisions() as log:
            tier = CacheTier("hot", 8, DIM, admission="scored", eviction="scored",
                             degree_of=degree_mod7)
            run_workload(tier, server, seed=seed)
        return [(i, r.as_tuple()) for i, r in log.all_records()]

    def test_same_seed_ledgers_are_bit_identical(self):
        assert self._ledger(5) == self._ledger(5)

    def test_different_seeds_diverge(self):
        assert self._ledger(5) != self._ledger(6)

    def test_recording_is_pure_observation(self):
        # The resident set after a captured run equals the uncaptured run's.
        server = make_server()
        with capture_decisions():
            observed = CacheTier("hot", 8, DIM, admission="scored",
                                 eviction="scored", degree_of=degree_mod7)
            run_workload(observed, server, seed=9)
        plain = CacheTier("hot", 8, DIM, admission="scored", eviction="scored",
                          degree_of=degree_mod7)
        run_workload(plain, server, seed=9)
        np.testing.assert_array_equal(observed.resident_ids, plain.resident_ids)

    def test_capture_sessions_do_not_nest(self):
        with capture_decisions():
            assert active_decision_log() is not None
            with pytest.raises(RuntimeError, match="nest"):
                with capture_decisions():
                    pass  # pragma: no cover
        assert active_decision_log() is None


# --------------------------------------------------------------------------- #
# Scored policies on a live tier
# --------------------------------------------------------------------------- #
class TestScoredPolicies:
    def test_eviction_removes_lowest_upper_bound(self):
        server = make_server()
        tier = CacheTier("hot", 4, DIM, admission="always", eviction="scored",
                         degree_of=degree_mod7)
        resident = ids_of(10, 20, 30, 40)
        tier.lookup(resident, 0)
        tier.admit(resident, server[resident], 0)
        # Re-access all but node 30, so 30 has the stalest stats.
        hot = ids_of(10, 20, 40)
        for step in range(1, 6):
            tier.lookup(hot, step)
        _, _, upper = tier.scorer.score(tier.resident_ids, tier.last_step)
        weakest = int(tier.resident_ids[int(np.argmin(upper))])
        tier.lookup(ids_of(55), 6)
        tier.admit(ids_of(55), server[ids_of(55)], 6)
        assert weakest not in tier.resident_ids
        assert 55 in tier.resident_ids

    def test_ledger_records_every_action_kind(self):
        server = make_server()
        with capture_decisions() as log:
            # Strict mode so the run also exercises rejections (conservative's
            # wide upper bounds clear the low resident quantile almost always).
            tier = CacheTier("hot", 6, DIM, admission="scored-strict",
                             eviction="scored", degree_of=degree_mod7)
            run_workload(tier, server, seed=2, steps=30)
        actions = {r.action for _, r in log.all_records()}
        assert actions == {"admit", "reject", "evict"}
        for _, record in log.all_records():
            assert record.lower_bound <= record.score <= record.upper_bound
            assert record.reason
            d = record.as_dict()
            assert d["node_id"] == record.node_id

    def test_online_scorer_learns_and_is_idempotent(self):
        server = make_server()
        tier = CacheTier("hot", 8, DIM, admission="scored-online",
                         eviction="scored", degree_of=degree_mod7)
        assert tier.scorer.online
        before = tier.scorer.weights.copy()
        run_workload(tier, server, seed=4, steps=30)
        assert tier.scorer.end_epoch() is not None
        after = tier.scorer.weights.copy()
        assert not np.allclose(before, after)
        assert after.sum() == pytest.approx(1.0)
        assert np.all(after > 0)
        # Second call without traffic is a no-op (shared-tier idempotence).
        assert tier.scorer.end_epoch() is None
        np.testing.assert_array_equal(after, tier.scorer.weights)

    def test_offline_scorer_end_epoch_returns_none(self):
        tier = CacheTier("hot", 8, DIM, admission="scored", eviction="scored",
                         degree_of=degree_mod7)
        run_workload(tier, make_server(), seed=4, steps=10)
        assert not tier.scorer.online
        assert tier.scorer.end_epoch() is None


# --------------------------------------------------------------------------- #
# Regression: degree-weighted admission on constant-degree graphs
# --------------------------------------------------------------------------- #
class TestConstantDegreeRegression:
    def test_constant_degree_graph_does_not_freeze(self):
        # Every node has the same degree, so every candidate ties the
        # resident median.  The old strict '>' comparison rejected all of
        # them once the tier filled — a silent downgrade to static-degree.
        server = make_server()
        constant = lambda ids: np.full(len(np.asarray(ids)), 5, dtype=np.int64)
        tier = CacheTier("hot", 4, DIM, admission="degree-weighted",
                         eviction="lru", degree_of=constant)
        first = ids_of(0, 1, 2, 3)
        tier.lookup(first, 0)
        tier.admit(first, server[first], 0)
        assert tier.size == tier.capacity
        newcomers = ids_of(50, 51)
        tier.lookup(newcomers, 1)
        inserted = tier.admit(newcomers, server[newcomers], 1)
        assert inserted == len(newcomers)
        assert np.isin(newcomers, tier.resident_ids).all()


# --------------------------------------------------------------------------- #
# Regression: controller re-split must not oscillate (banker's rounding)
# --------------------------------------------------------------------------- #
class TestControllerRoundingRegression:
    def _controller(self, budget: int, hot_capacity: int):
        hot = CacheTier("hot", hot_capacity, DIM)
        shared = CacheTier("shared", budget - hot_capacity, DIM)
        controller = AdaptiveCapacityController(
            hot, shared, total_budget=budget,
            shared_contribution=budget - hot_capacity,
        )
        return hot, shared, controller

    @staticmethod
    def _traffic(tier: CacheTier, hits: int, misses: int) -> None:
        tier.stats.lookups += hits + misses
        tier.stats.hits += hits
        tier.stats.misses += misses

    def test_half_targets_round_half_up_not_to_even(self):
        # Equal hit rates on a budget of 5 target 2.5 hot rows.  Banker's
        # round() gave 2 (nearest even); the explicit half-up rule gives 3.
        hot, shared, controller = self._controller(budget=5, hot_capacity=3)
        self._traffic(hot, hits=10, misses=10)
        self._traffic(shared, hits=10, misses=10)
        adjustment = controller.end_epoch()
        assert adjustment is not None
        assert adjustment.hot_capacity == 3

    def test_identical_hit_rates_never_oscillate(self):
        hot, shared, controller = self._controller(budget=5, hot_capacity=3)
        capacities = []
        for _ in range(6):
            self._traffic(hot, hits=10, misses=10)
            self._traffic(shared, hits=10, misses=10)
            controller.end_epoch()
            capacities.append((hot.capacity, shared.capacity))
        assert len(set(capacities)) == 1
        assert hot.capacity + shared.capacity == 5

    def test_zero_budget_is_guarded(self):
        hot, shared, controller = self._controller(budget=0, hot_capacity=0)
        self._traffic(hot, hits=1, misses=1)
        assert controller.end_epoch() is None
        assert hot.capacity == 0 and shared.capacity == 0


class TestExplainCLI:
    """End-to-end coverage for ``repro explain`` (the ledger's CLI surface)."""

    ARGS = ["explain", "--scenario", "hot-set-drift", "--scale", "0.05",
            "--epochs", "1", "--seed", "7"]

    def test_table_output_smoke(self, capsys):
        from repro.cli import main

        assert main([*self.ARGS, "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "scenario 'hot-set-drift' seed=7" in out
        assert "scored tier(s)" in out
        for column in ("step", "action", "lower", "upper", "threshold", "mode"):
            assert column in out
        assert "final state:" in out

    def test_json_replay_is_byte_identical(self, capsys):
        import json

        from repro.cli import main

        assert main([*self.ARGS, "--json"]) == 0
        first = capsys.readouterr().out
        assert main([*self.ARGS, "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second  # same seed => bit-identical ledger via the CLI
        records = [json.loads(line) for line in first.splitlines()]
        assert records
        for record in records:
            assert record["action"] in ("admit", "reject", "evict")
            assert {"tier_index", "step", "node_id", "score", "lower_bound",
                    "upper_bound", "threshold", "mode", "reason"} <= record.keys()

    def test_unknown_node_exits_1_with_hint(self, capsys):
        from repro.cli import main

        assert main([*self.ARGS, "--node-id", "999999999"]) == 1
        err = capsys.readouterr().err
        assert "no recorded decisions" in err and "most-decided nodes:" in err

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["explain"])
        assert args.scenario == "hot-set-drift"
        assert args.admission == "scored" and args.eviction == "scored"
        assert args.node_id is None and args.limit == 20 and not args.json
