"""Tests for the access (S_A) and eviction (S_E) scoreboards."""

import numpy as np
import pytest

from repro.core.scoreboard import (
    CompactAccessScoreboard,
    DenseAccessScoreboard,
    EvictionScores,
    make_access_scoreboard,
)


HALO = np.array([2, 5, 9, 14, 20], dtype=np.int64)


@pytest.fixture(params=["dense", "compact"])
def scoreboard(request):
    return make_access_scoreboard(request.param, num_global_nodes=32, halo_global=HALO)


class TestAccessScoreboards:
    def test_initial_scores_zero(self, scoreboard):
        np.testing.assert_allclose(scoreboard.get(HALO), 0.0)

    def test_increment(self, scoreboard):
        scoreboard.increment(np.array([5, 5, 9]))
        np.testing.assert_allclose(scoreboard.get(np.array([5, 9, 2])), [2.0, 1.0, 0.0])

    def test_set(self, scoreboard):
        scoreboard.set(np.array([2, 20]), np.array([-1.0, 3.0]))
        np.testing.assert_allclose(scoreboard.get(np.array([2, 20])), [-1.0, 3.0])

    def test_top_candidates_by_score(self, scoreboard):
        scoreboard.set(HALO, np.array([0.0, 5.0, 2.0, 7.0, 1.0]))
        top = scoreboard.top_candidates(2)
        np.testing.assert_array_equal(np.sort(top), [5, 14])

    def test_top_candidates_respects_exclusion(self, scoreboard):
        scoreboard.set(HALO, np.array([0.0, 5.0, 2.0, 7.0, 1.0]))
        top = scoreboard.top_candidates(2, exclude=np.array([14]))
        assert 14 not in top
        assert 5 in top

    def test_top_candidates_degree_tiebreak(self, scoreboard):
        scoreboard.set(HALO, np.array([3.0, 3.0, 3.0, 0.0, 0.0]))
        degrees = np.zeros(32, dtype=np.int64)
        degrees[2], degrees[5], degrees[9] = 1, 50, 10
        top = scoreboard.top_candidates(1, degrees=degrees)
        np.testing.assert_array_equal(top, [5])

    def test_top_candidates_zero_k(self, scoreboard):
        assert len(scoreboard.top_candidates(0)) == 0

    def test_nbytes_positive(self, scoreboard):
        assert scoreboard.nbytes() > 0

    def test_compact_smaller_than_dense(self):
        dense = DenseAccessScoreboard(10_000, HALO)
        compact = CompactAccessScoreboard(HALO)
        assert compact.nbytes() < dense.nbytes()

    def test_compact_rejects_non_halo(self):
        compact = CompactAccessScoreboard(HALO)
        with pytest.raises(KeyError):
            compact.increment(np.array([3]))

    def test_dense_accepts_any_global_id(self):
        dense = DenseAccessScoreboard(32, HALO)
        dense.increment(np.array([3]))  # non-halo id: allowed, O(|V|) array
        assert np.isnan(dense.get(np.array([3]))[0]) or dense.get(np.array([3]))[0] >= 0

    def test_factory_unknown_kind(self):
        with pytest.raises(ValueError):
            make_access_scoreboard("sparse", 10, HALO)


class TestEvictionScores:
    def test_initial_value(self):
        scores = EvictionScores(4, initial_value=1.0)
        np.testing.assert_allclose(scores.values, 1.0)

    def test_decay_only_unused(self):
        scores = EvictionScores(4)
        scores.decay(np.array([True, False, True, False]), 0.5)
        np.testing.assert_allclose(scores.values, [0.5, 1.0, 0.5, 1.0])

    def test_decay_compounds(self):
        scores = EvictionScores(1)
        for _ in range(3):
            scores.decay(np.array([True]), 0.9)
        assert scores.values[0] == pytest.approx(0.9 ** 3)

    def test_below_threshold(self):
        scores = EvictionScores(3)
        scores.set(np.array([0, 1, 2]), np.array([0.1, 0.9, 0.4]))
        np.testing.assert_array_equal(scores.below_threshold(0.5), [0, 2])

    def test_get_set_reset(self):
        scores = EvictionScores(3, initial_value=2.0)
        scores.set(np.array([1]), np.array([0.25]))
        np.testing.assert_allclose(scores.get(np.array([1])), [0.25])
        scores.reset(np.array([1]))
        np.testing.assert_allclose(scores.get(np.array([1])), [2.0])
        scores.reset(np.array([0]), value=7.0)
        np.testing.assert_allclose(scores.get(np.array([0])), [7.0])

    def test_mask_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            EvictionScores(3).decay(np.array([True]), 0.9)

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            EvictionScores(-1)

    def test_zero_capacity(self):
        scores = EvictionScores(0)
        assert len(scores.below_threshold(0.5)) == 0
