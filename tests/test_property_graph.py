"""Property-based tests (hypothesis) for graph structures and partitioning."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.halo import build_partitions
from repro.graph.partition import balance, edge_cut, metis_partition, random_partition
from repro.graph.partition_book import PartitionBook


@st.composite
def edge_lists(draw, max_nodes=40, max_edges=120):
    """Random edge lists over a small node universe."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(st.integers(0, num_nodes - 1), min_size=num_edges, max_size=num_edges)
    )
    dst = draw(
        st.lists(st.integers(0, num_nodes - 1), min_size=num_edges, max_size=num_edges)
    )
    return np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64), num_nodes


class TestCSRProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_construction_invariants(self, data):
        src, dst, n = data
        g = CSRGraph.from_edges(src, dst, num_nodes=n)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.num_edges
        assert np.all(np.diff(g.indptr) >= 0)
        assert g.out_degree().sum() == g.num_edges
        if g.num_edges:
            assert g.indices.min() >= 0 and g.indices.max() < n

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_symmetrize_produces_symmetric_graph(self, data):
        src, dst, n = data
        g = CSRGraph.from_edges(src, dst, num_nodes=n, symmetrize=True, remove_self_loops=True)
        assert g.is_symmetric()

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_edges_roundtrip(self, data):
        src, dst, n = data
        g = CSRGraph.from_edges(src, dst, num_nodes=n)
        s2, d2 = g.edges()
        g2 = CSRGraph.from_edges(s2, d2, num_nodes=n, deduplicate=False)
        np.testing.assert_array_equal(g.indptr, g2.indptr)
        np.testing.assert_array_equal(g.indices, g2.indices)

    @given(edge_lists(), st.integers(0, 1_000_000))
    @settings(max_examples=30, deadline=None)
    def test_induced_subgraph_edges_subset(self, data, seed):
        src, dst, n = data
        g = CSRGraph.from_edges(src, dst, num_nodes=n)
        rng = np.random.default_rng(seed)
        size = rng.integers(1, n + 1)
        nodes = rng.choice(n, size=size, replace=False)
        sub, mapping = g.induced_subgraph(np.sort(nodes))
        assert sub.num_nodes == len(nodes)
        s, d = sub.edges()
        for u, v in zip(s, d):
            assert g.has_edge(int(mapping[u]), int(mapping[v]))


class TestPartitionProperties:
    @given(edge_lists(max_nodes=60), st.integers(2, 5), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_metis_partition_invariants(self, data, k, seed):
        src, dst, n = data
        if k > n:
            k = n
        g = CSRGraph.from_edges(src, dst, num_nodes=n, symmetrize=True, remove_self_loops=True)
        result = metis_partition(g, k, seed=seed)
        # Every node assigned to a valid partition.
        assert len(result.parts) == n
        assert result.parts.min() >= 0 and result.parts.max() < k
        # Edge cut never exceeds the edge count; balance is at least 1.
        assert 0 <= edge_cut(g, result.parts) <= g.num_edges
        assert balance(result.parts, k) >= 1.0

    @given(edge_lists(max_nodes=50), st.integers(2, 4), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_halo_partitions_cover_graph(self, data, k, seed):
        src, dst, n = data
        if k > n:
            k = n
        g = CSRGraph.from_edges(src, dst, num_nodes=n, symmetrize=True, remove_self_loops=True)
        result = random_partition(g, k, seed=seed)
        partitions = build_partitions(g, result)
        # Ownership is a partition of the node set.
        owned = np.concatenate([p.owned_global for p in partitions])
        np.testing.assert_array_equal(np.sort(owned), np.arange(n))
        # Each partition's local edges equal edges whose source it owns; totals match.
        assert sum(p.local_graph.num_edges for p in partitions) == g.num_edges
        # Halo nodes are never owned by the same partition.
        for p in partitions:
            assert len(np.intersect1d(p.owned_global, p.halo_global)) == 0

    @given(st.integers(2, 6), st.lists(st.integers(0, 5), min_size=6, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_partition_book_roundtrip(self, k, assignment):
        parts = np.array([a % k for a in assignment], dtype=np.int64)
        book = PartitionBook(parts, k)
        for p in range(k):
            nodes = book.partition_nodes(p)
            if len(nodes) == 0:
                continue
            local = book.to_local(nodes, p)
            np.testing.assert_array_equal(book.to_global(local, p), nodes)
            np.testing.assert_array_equal(np.sort(local), np.arange(len(nodes)))
