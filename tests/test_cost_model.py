"""Tests for the simulated cost model and clocks."""

import pytest

from repro.distributed.clock import SimClock, mean_breakdown, merge_breakdowns, synchronize
from repro.distributed.cost_model import BYTES_PER_FEATURE, CostModel


class TestCostModelPresets:
    def test_cpu_preset(self, cpu_cost_model):
        assert cpu_cost_model.backend == "cpu"
        cpu_cost_model.validate()

    def test_gpu_preset_faster_compute(self, cpu_cost_model, gpu_cost_model):
        assert gpu_cost_model.compute_flops_per_s > 3 * cpu_cost_model.compute_flops_per_s
        assert gpu_cost_model.allreduce_bandwidth_Bps > cpu_cost_model.allreduce_bandwidth_Bps

    def test_preset_dispatch(self):
        assert CostModel.preset("cpu").backend == "cpu"
        assert CostModel.preset("gpu").backend == "gpu"
        with pytest.raises(ValueError):
            CostModel.preset("tpu")

    def test_scaled(self, cpu_cost_model):
        scaled = cpu_cost_model.scaled(rpc_latency_s=2.0)
        assert scaled.rpc_latency_s == pytest.approx(2 * cpu_cost_model.rpc_latency_s)
        with pytest.raises(AttributeError):
            cpu_cost_model.scaled(nonexistent=2.0)


class TestComponentTimes:
    def test_rpc_time_zero_nodes(self, cpu_cost_model):
        assert cpu_cost_model.time_rpc(0, 128) == 0.0

    def test_rpc_latency_plus_bandwidth(self, cpu_cost_model):
        cm = cpu_cost_model
        t = cm.time_rpc(100, 128, num_requests=2)
        expected = 2 * cm.rpc_latency_s + 100 * 128 * BYTES_PER_FEATURE / cm.network_bandwidth_Bps
        assert t == pytest.approx(expected)

    def test_rpc_slower_than_copy(self, cpu_cost_model):
        assert cpu_cost_model.time_rpc(1000, 128) > cpu_cost_model.time_copy(1000, 128)

    def test_copy_scales_linearly(self, cpu_cost_model):
        assert cpu_cost_model.time_copy(200, 64) == pytest.approx(
            2 * cpu_cost_model.time_copy(100, 64)
        )

    def test_sampling_time(self, cpu_cost_model):
        assert cpu_cost_model.time_sampling(1000) == pytest.approx(
            1000 * cpu_cost_model.sample_cost_per_edge_s
        )
        assert cpu_cost_model.time_sampling(-5) == 0.0

    def test_compute_time_backend_gap(self, cpu_cost_model, gpu_cost_model):
        flops = 1e9
        assert cpu_cost_model.time_compute(flops) > gpu_cost_model.time_compute(flops)

    def test_allreduce_zero_for_single_trainer(self, cpu_cost_model):
        assert cpu_cost_model.time_allreduce(10_000, 1) == 0.0

    def test_allreduce_grows_with_world_size(self, cpu_cost_model):
        t2 = cpu_cost_model.time_allreduce(1_000_000, 2)
        t8 = cpu_cost_model.time_allreduce(1_000_000, 8)
        assert t8 > t2

    def test_lookup_scoring_eviction_nonnegative(self, cpu_cost_model):
        assert cpu_cost_model.time_lookup(100) > 0
        assert cpu_cost_model.time_scoring(100) > 0
        assert cpu_cost_model.time_eviction(100, 10) > 0
        assert cpu_cost_model.time_lookup(0) == 0.0


class TestSimClock:
    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.0, "rpc")
        clock.advance(0.5, "ddp")
        assert clock.time == pytest.approx(1.5)
        assert clock.component_time("rpc") == pytest.approx(1.0)

    def test_negative_advance_raises(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance(1.0, "ddp")
        clock.advance_to(3.0)
        assert clock.time == pytest.approx(3.0)
        assert clock.component_time("stall") == pytest.approx(2.0)
        # advancing to a past timestamp is a no-op
        clock.advance_to(1.0)
        assert clock.time == pytest.approx(3.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(2.0, "rpc")
        clock.reset()
        assert clock.time == 0.0
        assert clock.breakdown() == {}

    def test_synchronize_barrier(self):
        clocks = [SimClock(), SimClock(), SimClock()]
        clocks[0].advance(1.0, "ddp")
        clocks[1].advance(3.0, "ddp")
        latest = synchronize(clocks)
        assert latest == pytest.approx(3.0)
        assert all(c.time == pytest.approx(3.0) for c in clocks)
        assert clocks[0].component_time("stall") == pytest.approx(2.0)

    def test_synchronize_empty(self):
        assert synchronize([]) == 0.0

    def test_merge_and_mean_breakdowns(self):
        a, b = SimClock(), SimClock()
        a.advance(1.0, "rpc")
        b.advance(3.0, "rpc")
        merged = merge_breakdowns([a, b])
        assert merged["rpc"] == pytest.approx(4.0)
        mean = mean_breakdown([a, b])
        assert mean["rpc"] == pytest.approx(2.0)
