"""Tests for repro.utils (rng, validation, logging helpers)."""

import logging

import numpy as np
import pytest

from repro.utils.logging_utils import format_table, get_logger
from repro.utils.rng import derive_seed, ensure_rng, optional_shuffle, spawn_rngs
from repro.utils.validation import (
    check_1d_int_array,
    check_2d_float_array,
    check_fraction,
    check_positive,
    check_probability,
    check_same_length,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(seq), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_independent_streams(self):
        rngs = spawn_rngs(0, 2)
        a = rngs[0].integers(0, 10**9, size=20)
        b = rngs[1].integers(0, 10**9, size=20)
        assert not np.array_equal(a, b)

    def test_deterministic(self):
        a = [r.integers(0, 10**6) for r in spawn_rngs(7, 3)]
        b = [r.integers(0, 10**6) for r in spawn_rngs(7, 3)]
        assert a == b

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        rng = np.random.default_rng(0)
        assert len(spawn_rngs(rng, 4)) == 4


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, 1, 2) == derive_seed(3, 1, 2)

    def test_salt_changes_seed(self):
        assert derive_seed(3, 1) != derive_seed(3, 2)

    def test_none_seed_ok(self):
        assert isinstance(derive_seed(None, 1), int)


class TestOptionalShuffle:
    def test_no_rng_returns_same(self):
        arr = np.arange(10)
        out = optional_shuffle(arr, None)
        np.testing.assert_array_equal(out, arr)

    def test_shuffle_preserves_elements(self):
        arr = np.arange(50)
        out = optional_shuffle(arr, np.random.default_rng(0))
        assert sorted(out.tolist()) == arr.tolist()

    def test_not_inplace_by_default(self):
        arr = np.arange(50)
        optional_shuffle(arr, np.random.default_rng(0))
        np.testing.assert_array_equal(arr, np.arange(50))


class TestValidation:
    def test_check_positive_accepts_positive(self):
        assert check_positive(3, "x") == 3

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_check_positive_allow_zero(self):
        assert check_positive(0, "x", allow_zero=True) == 0

    def test_check_fraction_bounds(self):
        assert check_fraction(0.5, "f") == 0.5
        with pytest.raises(ValueError):
            check_fraction(1.5, "f")
        with pytest.raises(ValueError):
            check_fraction(-0.1, "f")

    def test_check_fraction_exclusive(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "f", inclusive_low=False)
        with pytest.raises(ValueError):
            check_fraction(1.0, "f", inclusive_high=False)

    def test_check_probability(self):
        assert check_probability(1.0, "p") == 1.0

    def test_check_1d_int_array_basic(self):
        out = check_1d_int_array([1, 2, 3], "ids")
        assert out.dtype == np.int64

    def test_check_1d_int_array_rejects_2d(self):
        with pytest.raises(ValueError):
            check_1d_int_array(np.zeros((2, 2), dtype=np.int64), "ids")

    def test_check_1d_int_array_rejects_negative(self):
        with pytest.raises(ValueError):
            check_1d_int_array([-1, 0], "ids")

    def test_check_1d_int_array_max_value(self):
        with pytest.raises(ValueError):
            check_1d_int_array([5], "ids", max_value=5)

    def test_check_1d_int_array_rejects_floats(self):
        with pytest.raises(TypeError):
            check_1d_int_array(np.array([1.5, 2.0]), "ids")

    def test_check_1d_int_array_accepts_integer_floats(self):
        out = check_1d_int_array(np.array([1.0, 2.0]), "ids")
        assert out.dtype == np.int64

    def test_check_1d_int_array_empty(self):
        assert len(check_1d_int_array([], "ids")) == 0
        with pytest.raises(ValueError):
            check_1d_int_array([], "ids", allow_empty=False)

    def test_check_2d_float_array(self):
        out = check_2d_float_array(np.ones((3, 4)), "x")
        assert out.dtype == np.float32
        with pytest.raises(ValueError):
            check_2d_float_array(np.ones(3), "x")
        with pytest.raises(ValueError):
            check_2d_float_array(np.ones((3, 4)), "x", columns=5)

    def test_check_same_length(self):
        check_same_length("a", np.arange(3), "b", np.arange(3))
        with pytest.raises(ValueError):
            check_same_length("a", np.arange(3), "b", np.arange(4))


class TestLogging:
    def test_get_logger_idempotent(self):
        a = get_logger("repro.test")
        b = get_logger("repro.test")
        assert a is b
        assert len(a.handlers) == 1
        assert a.level == logging.INFO

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["alpha", 1.0], ["b", 22.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "alpha" in lines[2]
        assert all(len(line) == len(lines[0]) for line in lines[2:])
