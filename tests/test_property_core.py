"""Property-based tests for the prefetch buffer, scoreboards, and hit-rate metrics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.buffer import PrefetchBuffer
from repro.core.config import PrefetchConfig
from repro.core.metrics import HitRateTracker, hit_rate
from repro.core.scoreboard import CompactAccessScoreboard, DenseAccessScoreboard, EvictionScores
from repro.nn import tensor_utils as tu


@st.composite
def buffer_and_queries(draw):
    universe = draw(st.integers(min_value=4, max_value=200))
    capacity = draw(st.integers(min_value=1, max_value=min(universe, 32)))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    ids = rng.choice(universe, size=capacity, replace=False).astype(np.int64)
    dim = draw(st.integers(min_value=1, max_value=8))
    feats = rng.normal(size=(capacity, dim)).astype(np.float32)
    num_queries = draw(st.integers(min_value=0, max_value=64))
    queries = rng.integers(0, universe, size=num_queries).astype(np.int64)
    return ids, feats, queries


class TestBufferProperties:
    @given(buffer_and_queries())
    @settings(max_examples=60, deadline=None)
    def test_lookup_matches_membership(self, data):
        ids, feats, queries = data
        buf = PrefetchBuffer(ids, feats)
        hit_mask, slots = buf.lookup(queries)
        expected = np.isin(queries, ids)
        np.testing.assert_array_equal(hit_mask, expected)
        # Every hit returns exactly the stored feature row.
        for q, hit, slot in zip(queries, hit_mask, slots):
            if hit:
                original_row = feats[np.nonzero(ids == q)[0][0]]
                np.testing.assert_allclose(buf.get_features(np.array([slot]))[0], original_row)

    @given(buffer_and_queries(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_replace_preserves_capacity_and_uniqueness(self, data, seed):
        ids, feats, _ = data
        buf = PrefetchBuffer(ids, feats)
        rng = np.random.default_rng(seed)
        num_replace = rng.integers(0, buf.capacity + 1)
        if num_replace == 0:
            return
        slots = rng.choice(buf.capacity, size=num_replace, replace=False)
        # New ids disjoint from anything resident.
        new_ids = (np.arange(num_replace) + ids.max() + 1000).astype(np.int64)
        new_feats = rng.normal(size=(num_replace, buf.feature_dim)).astype(np.float32)
        buf.replace(slots, new_ids, new_feats)
        assert buf.capacity == len(ids)
        assert len(np.unique(buf.node_ids)) == buf.capacity
        assert buf.contains(new_ids).all()


class TestScoreboardProperties:
    @given(
        st.lists(st.integers(0, 499), min_size=1, max_size=60, unique=True),
        st.lists(st.integers(0, 59), min_size=0, max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_dense_and_compact_agree(self, halo_list, increment_positions):
        halo = np.array(sorted(halo_list), dtype=np.int64)
        dense = DenseAccessScoreboard(500, halo)
        compact = CompactAccessScoreboard(halo)
        increments = halo[np.array(increment_positions, dtype=np.int64) % len(halo)] if increment_positions else np.zeros(0, dtype=np.int64)
        if len(increments):
            dense.increment(increments)
            compact.increment(increments)
        np.testing.assert_allclose(dense.get(halo), compact.get(halo))
        np.testing.assert_array_equal(
            np.sort(dense.top_candidates(3)), np.sort(compact.top_candidates(3))
        )

    @given(
        st.integers(1, 64),
        st.floats(min_value=0.01, max_value=0.999),
        st.integers(1, 30),
    )
    @settings(max_examples=50, deadline=None)
    def test_eviction_scores_bounded_by_decay(self, capacity, gamma, rounds):
        scores = EvictionScores(capacity)
        for _ in range(rounds):
            scores.decay(np.ones(capacity, dtype=bool), gamma)
        np.testing.assert_allclose(scores.values, gamma ** rounds, rtol=1e-9)
        # Eq. 1 threshold: after exactly delta unused rounds the score equals alpha.
        config = PrefetchConfig(gamma=gamma, delta=rounds)
        assert scores.values[0] <= config.effective_alpha + 1e-12


class TestMetricProperties:
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_hit_rate_always_in_unit_interval(self, steps):
        tracker = HitRateTracker()
        for hits, misses in steps:
            tracker.record(hits, misses)
        assert 0.0 <= tracker.cumulative_hit_rate <= 1.0
        assert np.all((tracker.per_step_hit_rate() >= 0) & (tracker.per_step_hit_rate() <= 1))
        running = tracker.running_hit_rate()
        assert np.all((running >= 0) & (running <= 1))
        total_h = sum(h for h, _ in steps)
        total_m = sum(m for _, m in steps)
        assert tracker.cumulative_hit_rate == hit_rate(total_h, total_m)

    @given(
        st.integers(1, 50),
        st.integers(1, 8),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_segment_mean_bounded_by_extremes(self, num_edges, num_segments, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(num_edges, 3))
        segments = rng.integers(0, num_segments, size=num_edges)
        mean = tu.segment_mean(values, segments, num_segments)
        for s in range(num_segments):
            rows = values[segments == s]
            if len(rows) == 0:
                np.testing.assert_allclose(mean[s], 0.0)
            else:
                assert np.all(mean[s] <= rows.max(axis=0) + 1e-9)
                assert np.all(mean[s] >= rows.min(axis=0) - 1e-9)

    @given(st.integers(1, 80), st.integers(1, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_segment_softmax_sums_to_one_per_nonempty_segment(self, num_edges, num_segments, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=(num_edges, 2))
        segments = rng.integers(0, num_segments, size=num_edges)
        alpha = tu.segment_softmax(scores, segments, num_segments)
        sums = tu.segment_sum(alpha, segments, num_segments)
        for s in range(num_segments):
            if np.any(segments == s):
                np.testing.assert_allclose(sums[s], 1.0, rtol=1e-5)
