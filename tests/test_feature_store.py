"""Tests for repro.features: sources, routing, and fetch accounting."""

import numpy as np
import pytest

from repro.core.config import PrefetchConfig
from repro.features import (
    BufferedSource,
    FeatureStore,
    FetchStats,
    LocalKVStoreSource,
    RemoteRPCSource,
    SourceContext,
    StaticDegreeCacheSource,
    build_feature_source,
)


@pytest.fixture()
def trainer(small_cluster):
    return small_cluster.trainers[0]


@pytest.fixture()
def ctx(small_cluster, trainer):
    return SourceContext(
        rpc=trainer.rpc,
        partition=trainer.partition,
        num_global_nodes=small_cluster.dataset.num_nodes,
        book=small_cluster.book,
        prefetch_config=PrefetchConfig(halo_fraction=0.25, delta=8),
        seed=0,
    )


class TestFetchStats:
    def test_merge_sums_counts_and_times(self):
        a = FetchStats(source="x", num_requested=3, num_hits=3, copy_time_s=0.5, lookup_nodes=2)
        b = FetchStats(source="y", num_requested=2, num_misses=2, rpc_time_s=1.5,
                       eviction_round=True, nodes_replaced=4, buffer_capacity=10)
        merged = a.merge(b)
        assert merged.source == "merged"
        assert merged.num_requested == 5
        assert merged.num_hits == 3 and merged.num_misses == 2
        assert merged.copy_time_s == 0.5 and merged.rpc_time_s == 1.5
        assert merged.eviction_round is True
        assert merged.nodes_replaced == 4 and merged.buffer_capacity == 10

    def test_hit_rate(self):
        assert FetchStats(num_hits=3, num_misses=1).hit_rate == 0.75
        assert FetchStats().hit_rate == 0.0


class TestLocalKVStoreSource:
    def test_serves_owned_rows_exactly(self, small_cluster, trainer):
        source = LocalKVStoreSource(trainer.rpc)
        owned = trainer.partition.owned_global[:17]
        rows, stats = source.fetch(owned)
        np.testing.assert_array_equal(rows, small_cluster.dataset.features[owned])
        assert stats.num_requested == 17 and stats.num_hits == 17
        assert stats.copy_time_s > 0 and stats.rpc_time_s == 0.0

    def test_nbytes_counts_nothing_trainer_side(self, trainer):
        # The co-located server's matrix is shared machine-wide, not pinned
        # per trainer; the summary still exposes its size.
        source = LocalKVStoreSource(trainer.rpc)
        assert source.nbytes() == 0
        assert source.summary()["server_nbytes"] > 0


class TestRemoteRPCSource:
    def test_serves_halo_rows_exactly(self, small_cluster, trainer):
        source = RemoteRPCSource.from_book(trainer.rpc, small_cluster.book)
        halo = trainer.partition.halo_global[:23]
        rows, stats = source.fetch(halo)
        np.testing.assert_array_equal(rows, small_cluster.dataset.features[halo])
        assert stats.num_misses == 23 and stats.remote_nodes_fetched == 23
        assert stats.rpc_time_s > 0 and stats.bytes_fetched > 0

    def test_book_and_partition_routing_agree(self, small_cluster, trainer):
        via_book = RemoteRPCSource.from_book(trainer.rpc, small_cluster.book)
        via_partition = RemoteRPCSource.from_partition(trainer.rpc, trainer.partition)
        halo = trainer.partition.halo_global[:11]
        rows_a, _ = via_book.fetch(halo)
        rows_b, _ = via_partition.fetch(halo)
        np.testing.assert_array_equal(rows_a, rows_b)

    def test_empty_request(self, small_cluster, trainer):
        source = RemoteRPCSource.from_book(trainer.rpc, small_cluster.book)
        rows, stats = source.fetch(np.zeros(0, dtype=np.int64))
        assert rows.shape[0] == 0 and stats.num_requested == 0

    def test_partition_routing_rejects_foreign_ids(self, trainer):
        """Ids that are neither owned nor halo have no owner entry — must raise."""
        source = RemoteRPCSource.from_partition(trainer.rpc, trainer.partition)
        known = np.concatenate([trainer.partition.owned_global, trainer.partition.halo_global])
        foreign = np.setdiff1d(np.arange(known.max() + 2, dtype=np.int64), known)[:1]
        assert len(foreign) == 1
        with pytest.raises(KeyError, match="not halo neighbors"):
            source.fetch(foreign)


class TestBufferedSource:
    def test_wraps_prefetcher_and_counts_steps(self, small_cluster, ctx, trainer):
        source = build_feature_source("buffered", ctx)
        assert isinstance(source, BufferedSource)
        report = source.initialize()
        assert report["buffer_capacity"] > 0
        halo = trainer.partition.halo_global[:31]
        rows, stats = source.fetch(halo)
        np.testing.assert_array_equal(rows, small_cluster.dataset.features[halo])
        assert stats.num_requested == 31
        assert stats.num_hits + stats.num_misses == 31
        assert stats.lookup_nodes > 0
        assert source.prefetcher.tracker.num_steps == 1
        assert source.nbytes() > 0

    def test_preserves_prefetcher_operation_counts(self, small_cluster, ctx, trainer):
        source = build_feature_source("buffered", ctx)
        source.initialize()
        halo = trainer.partition.halo_global[:8]
        _, stats = source.fetch(halo)
        # Algorithm 2 accounting: every requested node plus every buffer slot
        # is looked up; unused slots are decayed.
        assert stats.lookup_nodes == 8 + source.prefetcher.buffer.capacity
        assert stats.buffer_capacity == source.prefetcher.buffer.capacity


class TestStaticDegreeCacheSource:
    def test_caches_top_degree_halo_nodes(self, small_cluster, ctx, trainer):
        source = build_feature_source("static-cache", ctx)
        assert isinstance(source, StaticDegreeCacheSource)
        report = source.initialize()
        assert report["num_prefetched"] > 0
        cached = source._cached_ids
        halo = trainer.partition.halo_global
        rows, stats = source.fetch(halo[:40])
        np.testing.assert_array_equal(rows, small_cluster.dataset.features[halo[:40]])
        hit_mask = np.isin(halo[:40], cached)
        assert stats.num_hits == int(hit_mask.sum())
        assert stats.num_misses == int((~hit_mask).sum())

    def test_fetch_before_initialize_raises(self, ctx):
        source = build_feature_source("static-cache", ctx)
        with pytest.raises(RuntimeError):
            source.fetch(np.array([0], dtype=np.int64))


class TestFeatureStore:
    def _store(self, small_cluster, trainer):
        return FeatureStore(
            partition=trainer.partition,
            local_source=LocalKVStoreSource(trainer.rpc),
            halo_source=RemoteRPCSource.from_book(trainer.rpc, small_cluster.book),
        )

    def test_fetch_minibatch_assembles_exact_features(self, small_cluster, trainer):
        store = self._store(small_cluster, trainer)
        minibatch = next(iter(trainer.dataloader.epoch()))
        features, result = store.fetch_minibatch(minibatch)
        np.testing.assert_array_equal(
            features, small_cluster.dataset.features[minibatch.input_global]
        )
        local, halo = result.source("local"), result.source("halo")
        assert local.num_requested + halo.num_requested == minibatch.num_input_nodes
        assert local.copy_time_s > 0
        merged = result.merged
        assert merged.num_requested == minibatch.num_input_nodes

    def test_fetch_routes_by_ownership(self, small_cluster, trainer):
        store = self._store(small_cluster, trainer)
        mixed = np.concatenate(
            [trainer.partition.owned_global[:5], trainer.partition.halo_global[:7]]
        )
        rows, stats = store.fetch(mixed)
        np.testing.assert_array_equal(rows, small_cluster.dataset.features[mixed])
        assert stats.num_hits == 5 and stats.num_misses == 7

    def test_summary_and_nbytes(self, small_cluster, ctx, trainer):
        store = self._store(small_cluster, trainer)
        summary = store.summary()
        assert summary["nbytes"] == store.nbytes() == 0  # nothing cached trainer-side
        assert summary["local.server_nbytes"] > 0
        assert any(key.startswith("halo.") for key in summary)
        buffered = FeatureStore(
            partition=trainer.partition,
            local_source=LocalKVStoreSource(trainer.rpc),
            halo_source=build_feature_source("buffered", ctx),
        )
        buffered.initialize()
        assert buffered.nbytes() > 0  # the prefetch buffer is pinned per trainer

    def test_telemetry_passthrough(self, small_cluster, ctx, trainer):
        plain = self._store(small_cluster, trainer)
        assert plain.tracker is None and plain.prefetcher is None and plain.hit_rate is None
        buffered = FeatureStore(
            partition=trainer.partition,
            local_source=LocalKVStoreSource(trainer.rpc),
            halo_source=build_feature_source("buffered", ctx),
        )
        buffered.initialize()
        assert buffered.prefetcher is not None
        assert buffered.tracker is buffered.prefetcher.tracker
