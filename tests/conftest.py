"""Shared fixtures for the test suite.

Fixtures build deliberately small datasets and clusters so the whole suite
runs in seconds while still exercising the full distributed data path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PrefetchConfig
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.cost_model import CostModel
from repro.graph.csr import CSRGraph
from repro.graph.datasets import GraphDataset, load_dataset
from repro.graph.generators import planted_partition_graph
from repro.graph.halo import build_partitions
from repro.graph.partition import metis_partition
from repro.training.config import TrainConfig


@pytest.fixture(scope="session")
def tiny_graph() -> CSRGraph:
    """A small deterministic graph used by structural unit tests."""
    src = np.array([0, 0, 1, 1, 2, 3, 3, 4, 5, 6, 6, 7], dtype=np.int64)
    dst = np.array([1, 2, 2, 3, 3, 4, 5, 5, 6, 7, 0, 1], dtype=np.int64)
    return CSRGraph.from_edges(src, dst, num_nodes=8, symmetrize=True, remove_self_loops=True)


@pytest.fixture(scope="session")
def small_community_graph():
    """A ~600-node planted-partition graph with labels (community ids)."""
    graph, labels = planted_partition_graph(
        600, num_communities=6, avg_degree=12, intra_fraction=0.8, seed=7
    )
    return graph, labels


@pytest.fixture(scope="session")
def small_dataset() -> GraphDataset:
    """A small arxiv-analog dataset (about 1k nodes) for integration tests."""
    return load_dataset("arxiv", scale=0.25, seed=3)


@pytest.fixture(scope="session")
def products_dataset() -> GraphDataset:
    """A scaled-down products analog (denser, more halo traffic)."""
    return load_dataset("products", scale=0.1, seed=5)


@pytest.fixture(scope="session")
def small_cluster(small_dataset) -> SimCluster:
    """2 machines x 2 trainers cluster over the small dataset (CPU backend)."""
    config = ClusterConfig(
        num_machines=2,
        trainers_per_machine=2,
        batch_size=128,
        fanouts=(5, 10),
        backend="cpu",
        seed=11,
    )
    return SimCluster(small_dataset, config)


@pytest.fixture(scope="session")
def small_partitions(small_dataset):
    """Partitions (METIS, 2 parts) of the small dataset."""
    result = metis_partition(small_dataset.graph, 2, seed=13)
    return build_partitions(small_dataset.graph, result)


@pytest.fixture()
def quick_train_config() -> TrainConfig:
    return TrainConfig(epochs=2, hidden_dim=32, learning_rate=5e-3, seed=0)


@pytest.fixture()
def quick_prefetch_config() -> PrefetchConfig:
    return PrefetchConfig(halo_fraction=0.25, gamma=0.995, delta=8)


@pytest.fixture(scope="session")
def cpu_cost_model() -> CostModel:
    return CostModel.cpu()


@pytest.fixture(scope="session")
def gpu_cost_model() -> CostModel:
    return CostModel.gpu()
