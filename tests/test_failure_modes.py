"""Failure-injection and edge-case tests across module boundaries.

These tests exercise the unhappy paths a downstream user will hit first:
degenerate graphs, partitions with no halo nodes, trainers with no training
seeds, buffers larger than the halo set, and corrupted inputs to the
distributed substrate.
"""

import numpy as np
import pytest

from repro.core.config import PrefetchConfig
from repro.core.prefetcher import Prefetcher
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.cost_model import CostModel
from repro.distributed.kvstore import KVStore
from repro.distributed.rpc import RPCChannel
from repro.distributed.server import PartitionServer
from repro.graph.csr import CSRGraph
from repro.graph.datasets import GraphDataset, make_custom_dataset
from repro.graph.generators import class_informative_features, train_val_test_split
from repro.graph.halo import build_partitions
from repro.graph.partition import PartitionResult, metis_partition
from repro.sampling.neighbor_sampler import NeighborSampler
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine


def _dataset_from_graph(graph, num_classes=4, feature_dim=8, seed=0) -> GraphDataset:
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=graph.num_nodes)
    features = class_informative_features(labels, feature_dim, seed=seed)
    train, val, test = train_val_test_split(graph.num_nodes, seed=seed)
    return GraphDataset(
        name="synthetic",
        graph=graph,
        features=features,
        labels=labels,
        train_mask=train,
        val_mask=val,
        test_mask=test,
        num_classes=num_classes,
    )


class TestDegenerateGraphs:
    def test_sampler_on_graph_with_isolated_nodes(self):
        # Nodes 4..9 have no edges at all; sampling from them must still work.
        graph = CSRGraph.from_edges([0, 1, 2], [1, 2, 3], num_nodes=10, symmetrize=True)
        sampler = NeighborSampler(graph, [3, 3], seed=0)
        mb = sampler.sample(np.array([5, 6, 7]))
        assert mb.num_seeds == 3
        assert all(block.num_edges == 0 for block in mb.blocks)

    def test_training_on_disconnected_graph(self):
        # Two components; METIS should split them and training must still run.
        src = np.concatenate([np.arange(0, 49), np.arange(50, 99)])
        dst = np.concatenate([np.arange(1, 50), np.arange(51, 100)])
        graph = CSRGraph.from_edges(src, dst, num_nodes=100, symmetrize=True)
        dataset = _dataset_from_graph(graph)
        cluster = SimCluster(
            dataset,
            ClusterConfig(num_machines=2, trainers_per_machine=1, batch_size=16, fanouts=(2, 2), seed=0),
        )
        engine = TrainingEngine(cluster, TrainConfig(epochs=1, hidden_dim=8, seed=0))
        report = engine.run_baseline()
        assert report.num_minibatches > 0

    def test_star_graph_partitioning(self):
        # A star graph defeats heavy-edge matching; the partitioner must still terminate.
        center = np.zeros(60, dtype=np.int64)
        leaves = np.arange(1, 61, dtype=np.int64)
        graph = CSRGraph.from_edges(center, leaves, num_nodes=61, symmetrize=True)
        result = metis_partition(graph, 2, seed=0)
        assert len(result.parts) == 61
        assert result.sizes().min() > 0


class TestNoHaloAndSmallBufferEdgeCases:
    def _two_clique_dataset(self):
        """Two cliques with no edges between them: partitions have zero halo nodes."""
        blocks = []
        for offset in (0, 20):
            nodes = np.arange(offset, offset + 20)
            src, dst = np.meshgrid(nodes, nodes)
            mask = src != dst
            blocks.append((src[mask], dst[mask]))
        src = np.concatenate([b[0] for b in blocks])
        dst = np.concatenate([b[1] for b in blocks])
        graph = CSRGraph.from_edges(src, dst, num_nodes=40)
        return _dataset_from_graph(graph)

    def test_prefetcher_with_zero_halo_nodes(self):
        dataset = self._two_clique_dataset()
        parts = PartitionResult(parts=(np.arange(40) >= 20).astype(np.int64), num_parts=2)
        partitions = build_partitions(dataset.graph, parts)
        assert partitions[0].num_halo == 0
        servers = {p.part_id: PartitionServer(p, dataset.features).kvstore for p in partitions}
        rpc = RPCChannel(servers, local_part=0, cost_model=CostModel.cpu())
        prefetcher = Prefetcher(partitions[0], PrefetchConfig(), rpc, dataset.num_nodes)
        report = prefetcher.initialize()
        assert report.buffer_capacity == 0
        outcome = prefetcher.process_minibatch(np.array([], dtype=np.int64), step=1)
        assert outcome.num_hits == 0 and outcome.num_misses == 0

    def test_training_with_zero_halo_nodes(self):
        dataset = self._two_clique_dataset()
        parts = PartitionResult(parts=(np.arange(40) >= 20).astype(np.int64), num_parts=2)
        cluster = SimCluster(
            dataset,
            ClusterConfig(num_machines=2, trainers_per_machine=1, batch_size=8, fanouts=(3,), seed=0),
            partition_result=parts,
        )
        engine = TrainingEngine(cluster, TrainConfig(epochs=1, hidden_dim=8, num_layers=1, seed=0))
        baseline = engine.run_baseline()
        prefetch = engine.run_prefetch(PrefetchConfig(halo_fraction=0.5))
        # With no remote nodes there is nothing to win; both pipelines must
        # still complete and fetch zero remote nodes.
        assert baseline.remote_nodes_fetched() == 0
        assert prefetch.remote_nodes_fetched() == 0

    def test_buffer_fraction_of_one_holds_every_halo_node(self, small_dataset, small_partitions):
        from repro.distributed.server import PartitionServer

        partitions = small_partitions
        servers = {p.part_id: PartitionServer(p, small_dataset.features).kvstore for p in partitions}
        rpc = RPCChannel(servers, local_part=0, cost_model=CostModel.cpu())
        prefetcher = Prefetcher(
            partitions[0], PrefetchConfig(halo_fraction=1.0), rpc, small_dataset.num_nodes
        )
        prefetcher.initialize()
        # Every sampled halo node must now be a hit.
        outcome = prefetcher.process_minibatch(partitions[0].halo_global[:50], step=1)
        assert outcome.num_misses == 0
        assert outcome.hit_rate == 1.0


class TestTrainerEdgeCases:
    def test_more_trainers_than_train_nodes(self):
        dataset = make_custom_dataset(300, 8, 8, 4, seed=1, name="tiny-edge")
        # Restrict the training set to a handful of nodes so some trainers get none.
        dataset.train_mask[:] = False
        dataset.train_mask[:3] = True
        cluster = SimCluster(
            dataset,
            ClusterConfig(num_machines=2, trainers_per_machine=2, batch_size=4, fanouts=(2,), seed=0),
        )
        engine = TrainingEngine(cluster, TrainConfig(epochs=1, hidden_dim=8, num_layers=1, seed=0))
        report = engine.run_baseline()
        # Only the trainers that own training nodes contribute minibatches.
        assert 0 < report.num_minibatches <= 4

    def test_single_machine_single_trainer(self, small_dataset):
        cluster = SimCluster(
            small_dataset,
            ClusterConfig(num_machines=1, trainers_per_machine=1, batch_size=64, fanouts=(3, 3), seed=0),
        )
        engine = TrainingEngine(cluster, TrainConfig(epochs=1, hidden_dim=8, seed=0))
        baseline = engine.run_baseline()
        # A single partition has no halo nodes at all, so no RPC traffic.
        assert baseline.remote_nodes_fetched() == 0
        assert baseline.component_breakdown["allreduce"] == 0.0

    def test_prefetch_with_single_partition_is_noop_but_valid(self, small_dataset):
        cluster = SimCluster(
            small_dataset,
            ClusterConfig(num_machines=1, trainers_per_machine=2, batch_size=64, fanouts=(3, 3), seed=0),
        )
        engine = TrainingEngine(cluster, TrainConfig(epochs=1, hidden_dim=8, seed=0))
        report = engine.run_prefetch(PrefetchConfig(halo_fraction=0.5))
        assert report.hit_rate == 0.0
        assert report.remote_nodes_fetched() == 0


class TestCorruptedInputs:
    def test_kvstore_rejects_nan_free_contract(self):
        ids = np.arange(4)
        feats = np.arange(8, dtype=np.float32).reshape(4, 2)
        store = KVStore(ids, feats)
        with pytest.raises(KeyError):
            store.pull(np.array([99]))

    def test_rpc_channel_rejects_owner_length_mismatch(self):
        ids = np.arange(4)
        feats = np.zeros((4, 2), dtype=np.float32)
        channel = RPCChannel({0: KVStore(ids, feats)}, local_part=0)
        with pytest.raises(ValueError):
            channel.remote_pull(np.array([1, 2]), np.array([1]))

    def test_cluster_rejects_gpu_typo(self, small_dataset):
        with pytest.raises(ValueError):
            ClusterConfig(backend="cuda")

    def test_engine_rejects_unknown_arch(self):
        with pytest.raises(ValueError):
            TrainConfig(arch="transformer")

    def test_prefetch_config_rejects_bad_fraction_then_recovers(self):
        with pytest.raises(ValueError):
            PrefetchConfig(halo_fraction=-0.1)
        config = PrefetchConfig(halo_fraction=0.2)
        assert config.buffer_capacity(100) == 20
