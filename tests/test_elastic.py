"""Elastic membership: spec validation, determinism, re-sharding semantics.

Pins the tentpole invariants of the elastic subsystem:

* **spec seam** — ``ElasticSpec`` follows the frozen-dataclass + eager
  validation idiom and the :class:`~repro.events.schedule.ScheduleSpec`
  protocol shared with ``FailureSpec``/``CongestionSpec``;
* **determinism** — same seed ⇒ identical event history and identical
  ``ClusterReport`` for every elastic scenario, run twice from scratch;
* **bit-identity** — a spec'd-but-empty ``ElasticSpec`` is indistinguishable
  from no spec at all, on both engines;
* **semantics** — joins add capacity at the next epoch boundary (post-join
  epochs beat the held-back baseline), a fully drained machine's partition
  is adopted by a surviving host, and migration time/bytes are booked on the
  receiving trainers;
* **overrides** — ``with_overrides`` rejects unknown fields and supports the
  ``UNSET`` sentinel for explicitly clearing optional fields.
"""

import json

import numpy as np
import pytest

from repro.events.schedule import (
    SCHEDULE_SPECS,
    CongestionSpec,
    ElasticSpec,
    FailureSpec,
    ScheduleSpec,
)
from repro.scenarios import UNSET, SCENARIOS, build_scenario
from repro.training.engines import ENGINES

ELASTIC_SCENARIOS = ("scale-out-burst", "cascading-failure", "rolling-upgrade")


def canonical(report):
    return json.loads(json.dumps(report.as_dict(), sort_keys=True))


def run_scenario(name, record=False, **overrides):
    workload = build_scenario(name, seed=7, scale=0.05, **overrides)
    if record:
        workload.engine.record_events = True
    report = workload.run()
    return workload, report


class TestScheduleSpecProtocol:
    def test_registry_covers_all_three_kinds(self):
        assert sorted(SCHEDULE_SPECS) == ["congestion", "elastic", "failures"]
        assert SCHEDULE_SPECS["elastic"] is ElasticSpec
        for kind, cls in SCHEDULE_SPECS.items():
            assert issubclass(cls, ScheduleSpec)
            assert cls.kind == kind

    def test_specs_validate_and_describe(self):
        specs = (
            FailureSpec(rate=0.08),
            CongestionSpec(),
            ElasticSpec(initially_inactive=(1,), joins=((1, 1e-3),)),
        )
        for spec in specs:
            spec.validate()  # re-runs eager validation, must not raise
            assert isinstance(spec.describe(), str) and spec.describe()

    def test_materialize_routes_through_the_protocol(self):
        schedule = ElasticSpec(joins=(), leaves=((0, 1e-3),)).materialize(4, 7)
        assert schedule.events == [(1e-3, "leave", 0)]
        failures = FailureSpec(rate=0.5).materialize(4, 7)
        assert failures is not None
        congestion = CongestionSpec()
        assert congestion.materialize(4, 7) is congestion

    def test_base_protocol_methods_are_abstract(self):
        base = ScheduleSpec()
        with pytest.raises(NotImplementedError):
            base.describe()
        with pytest.raises(NotImplementedError):
            base.materialize(4, 7)


class TestElasticSpecValidation:
    def test_defaults_are_empty(self):
        spec = ElasticSpec()
        assert spec.is_empty
        assert spec.describe() == "elastic(hold 0, +0, -0)"

    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="duplicate"):
            ElasticSpec(initially_inactive=(1, 1))
        with pytest.raises(ValueError, match=">= 0"):
            ElasticSpec(initially_inactive=(-1,))
        with pytest.raises(ValueError, match="joins times"):
            ElasticSpec(joins=((0, -1.0),))
        with pytest.raises(ValueError, match="jitter_s"):
            ElasticSpec(jitter_s=-0.5)
        with pytest.raises(ValueError, match="cache_policy"):
            ElasticSpec(cache_policy="discard")

    def test_schedule_validates_against_world_size(self):
        with pytest.raises(ValueError, match="out of range"):
            ElasticSpec(initially_inactive=(7,), joins=((7, 1e-3),)).materialize(4, 0)
        with pytest.raises(ValueError, match="out of range"):
            ElasticSpec(leaves=((9, 1e-3),)).materialize(4, 0)
        with pytest.raises(ValueError, match="at least one rank"):
            ElasticSpec(initially_inactive=(0, 1)).materialize(2, 0)

    def test_schedule_enforces_alternation(self):
        with pytest.raises(ValueError, match="already active"):
            ElasticSpec(joins=((0, 1e-3),)).materialize(4, 0)
        with pytest.raises(ValueError, match="already inactive"):
            ElasticSpec(initially_inactive=(1,), leaves=((1, 1e-3),)).materialize(4, 0)
        # A legal leave -> rejoin -> leave chain passes.
        spec = ElasticSpec(leaves=((0, 1e-3), (0, 3e-3)), joins=((0, 2e-3),))
        assert spec.materialize(4, 0).total_events() == 3

    def test_jitter_is_seed_deterministic(self):
        spec = ElasticSpec(initially_inactive=(1,), joins=((1, 1e-3),), jitter_s=5e-4)
        a = spec.materialize(4, 7).events
        b = spec.materialize(4, 7).events
        c = spec.materialize(4, 8).events
        assert a == b
        assert a != c
        assert all(1e-3 <= t <= 1.5e-3 for t, _, _ in a)


class TestWithOverrides:
    def test_unknown_field_raises_with_valid_keys(self):
        scenario = SCENARIOS.build("uniform")
        with pytest.raises(ValueError, match="unknown scenario field"):
            scenario.with_overrides(chaos_rate=0.5)
        with pytest.raises(ValueError, match="valid fields"):
            scenario.with_overrides(scael=0.1)  # typo surfaces the field list

    def test_none_still_means_keep(self):
        scenario = SCENARIOS.build("trainer-flaky")
        same = scenario.with_overrides(failures=None, scale=None)
        assert same.failures == scenario.failures
        assert same.scale == scenario.scale

    def test_unset_explicitly_clears_optional_fields(self):
        scenario = SCENARIOS.build("scale-out-burst")
        assert scenario.elastic is not None
        stripped = scenario.with_overrides(elastic=UNSET)
        assert stripped.elastic is None
        flaky = SCENARIOS.build("trainer-flaky").with_overrides(failures=UNSET)
        assert flaky.failures is None

    def test_unset_is_a_singleton_with_stable_repr(self):
        import pickle

        from repro.scenarios.registry import _Unset

        assert _Unset() is UNSET
        assert pickle.loads(pickle.dumps(UNSET)) is UNSET
        assert repr(UNSET) == "UNSET"


class TestEngineRejections:
    def test_lockstep_rejects_non_empty_elastic(self):
        with pytest.raises(ValueError, match="event-driven"):
            build_scenario("uniform", scale=0.05,
                           elastic=ElasticSpec(leaves=((0, 1e-3),)))

    def test_serving_rejects_non_empty_elastic(self):
        with pytest.raises(ValueError, match="event-driven"):
            build_scenario("steady-poisson", scale=0.05,
                           elastic=ElasticSpec(leaves=((0, 1e-3),)))

    def test_empty_spec_is_accepted_everywhere(self):
        for name in ("uniform", "async-staleness", "steady-poisson"):
            workload = build_scenario(name, scale=0.05, elastic=ElasticSpec())
            assert workload.engine is not None

    def test_replica_owning_policy_rejects_elastic(self):
        workload = build_scenario(
            "congested-link", scale=0.05,
            elastic=ElasticSpec(leaves=((0, 1e-3),)),
        )
        with pytest.raises(ValueError, match="sync policy"):
            workload.run()


class TestElasticDeterminism:
    @pytest.mark.parametrize("name", ELASTIC_SCENARIOS)
    def test_same_seed_same_history_and_report(self, name):
        wl_a, rep_a = run_scenario(name, record=True)
        wl_b, rep_b = run_scenario(name, record=True)
        assert wl_a.engine.event_history == wl_b.engine.event_history
        assert canonical(rep_a) == canonical(rep_b)
        kinds = {kind for kind, *_ in wl_a.engine.event_history}
        assert "rebalance" in kinds
        assert kinds & {"join", "leave"}

    def test_empty_spec_bit_identical_to_no_spec(self):
        base = canonical(build_scenario("async-staleness", seed=7, scale=0.05).run())
        spec = canonical(build_scenario("async-staleness", seed=7, scale=0.05,
                                        elastic=ElasticSpec()).run())
        assert base == spec

    def test_no_elastic_override_strips_the_schedule(self):
        _, stripped = run_scenario("scale-out-burst", elastic=UNSET)
        for t in stripped.trainer_stats:
            assert "joins" not in t.sync_stats
            assert "migration_bytes" not in t.sync_stats
            assert t.components.get("migration", 0.0) == 0.0


class TestElasticSemantics:
    def test_scale_out_burst_joins_add_capacity(self):
        _, report = run_scenario("scale-out-burst")
        stats = {t.global_rank: t for t in report.trainer_stats}
        assert sum(t.sync_stats.get("joins", 0.0) for t in stats.values()) == 2.0
        # Held-back ranks run no steps before joining but do step afterwards.
        assert stats[1].num_steps > 0 and stats[3].num_steps > 0
        # The joiners paid for their gained seed rows.
        assert stats[1].sync_stats.get("migration_bytes", 0.0) > 0
        assert stats[1].components.get("migration", 0.0) > 0

    def test_scale_out_burst_post_join_epochs_beat_held_baseline(self):
        # Baseline: the same two ranks held out for the whole run (the joins
        # stripped), so every epoch runs at half strength.
        _, elastic = run_scenario("scale-out-burst")
        _, held = run_scenario(
            "scale-out-burst", elastic=ElasticSpec(initially_inactive=(1, 3)),
        )
        post_join = elastic.report.epoch_records[-1].simulated_time_s
        held_last = held.report.epoch_records[-1].simulated_time_s
        assert post_join < held_last

    def test_cascading_failure_drained_partition_is_adopted(self):
        workload, report = run_scenario("cascading-failure")
        cluster = workload.cluster
        # Machine 0 fully drained: its partition re-registered on machine 1.
        assert cluster.partition_host(0) == 1
        assert cluster.servers[0] is not None
        stats = {t.global_rank: t for t in report.trainer_stats}
        assert stats[0].sync_stats.get("leaves", 0.0) == 1.0
        assert stats[1].sync_stats.get("leaves", 0.0) == 1.0
        # The adopters (machine 1's trainers) paid migration time.
        assert stats[2].components.get("migration", 0.0) > 0
        assert stats[3].components.get("migration", 0.0) > 0

    def test_rolling_upgrade_every_rank_leaves_and_returns(self):
        _, report = run_scenario("rolling-upgrade")
        for t in report.trainer_stats:
            assert t.sync_stats.get("leaves", 0.0) == 1.0
            assert t.sync_stats.get("joins", 0.0) == 1.0
            assert t.num_steps > 0

    def test_migration_time_reconciles_with_sync_stats(self):
        for name in ELASTIC_SCENARIOS:
            _, report = run_scenario(name)
            for t in report.trainer_stats:
                booked = t.components.get("migration", 0.0)
                ledger = (t.sync_stats.get("migration_s", 0.0)
                          + t.sync_stats.get("restore_s", 0.0))
                assert booked == pytest.approx(ledger), (name, t.global_rank)

    def test_rebalance_preserves_seed_coverage(self):
        workload, _ = run_scenario("scale-out-burst")
        cluster = workload.cluster
        for machine in range(cluster.config.num_machines):
            partition = cluster.partitions[machine]
            train_local = np.flatnonzero(
                cluster.dataset.train_mask[partition.owned_global]
            )
            locals_ = [
                t for t in cluster.trainers if t.machine == machine
            ]
            assigned = np.sort(np.concatenate([t.seeds_local for t in locals_]))
            np.testing.assert_array_equal(assigned, np.sort(train_local))

    def test_reset_restores_original_assignment(self):
        workload, first = run_scenario("cascading-failure")
        cluster = workload.cluster
        assert cluster.partition_host(0) == 1
        cluster.reset()
        assert cluster.partition_host(0) == 0
        for server in cluster._server_objects:
            assert server.migrations == 0
