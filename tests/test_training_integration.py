"""Integration tests: the full baseline and prefetch training pipelines.

These tests exercise the complete stack — dataset, partitioning, cluster,
sampling, RPC/KVStore, GNN training, DDP averaging, prefetcher — and assert
the qualitative properties the paper reports:

* the prefetch pipeline reduces remote-node fetches and end-to-end simulated
  time relative to the DistDGL-style baseline;
* accuracy is unaffected by prefetching (both pipelines learn);
* CPU training sees larger relative gains than GPU training (overlap);
* the hit rate is sensible and grows as training proceeds.
"""

import numpy as np
import pytest

from repro.core.config import PrefetchConfig
from repro.distributed.cluster import ClusterConfig
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine
from repro.training.baseline import train_baseline
from repro.training.massive import compare_baseline_and_prefetch, train_massive
from repro.training.evaluate import evaluate_accuracy, evaluate_loss, majority_class_accuracy


@pytest.fixture(scope="module")
def comparison_reports(request):
    """One baseline + one prefetch run shared by several assertions."""
    from repro.graph.datasets import load_dataset

    dataset = load_dataset("arxiv", scale=0.25, seed=3)
    baseline, prefetch = compare_baseline_and_prefetch(
        dataset,
        prefetch_config=PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=8),
        cluster_config=ClusterConfig(
            num_machines=2, trainers_per_machine=2, batch_size=128, fanouts=(5, 10), seed=7
        ),
        train_config=TrainConfig(epochs=3, hidden_dim=32, seed=1),
    )
    return dataset, baseline, prefetch


class TestBaselinePipeline:
    def test_report_structure(self, comparison_reports):
        _, baseline, _ = comparison_reports
        assert baseline.mode == "baseline"
        assert baseline.total_simulated_time_s > 0
        assert baseline.num_minibatches > 0
        assert len(baseline.epoch_records) == 3
        assert baseline.hit_tracker is None

    def test_baseline_learns(self, comparison_reports):
        dataset, baseline, _ = comparison_reports
        first, last = baseline.epoch_records[0], baseline.epoch_records[-1]
        assert last.loss < first.loss
        assert last.train_accuracy > 2.0 / dataset.num_classes

    def test_component_breakdown_populated(self, comparison_reports):
        _, baseline, _ = comparison_reports
        breakdown = baseline.component_breakdown
        assert breakdown["sampling"] > 0
        assert breakdown["rpc"] > 0
        assert breakdown["ddp"] > 0
        assert breakdown["lookup"] == 0.0  # no prefetcher in the baseline

    def test_rpc_stats_recorded(self, comparison_reports):
        _, baseline, _ = comparison_reports
        assert baseline.rpc_stats.nodes_fetched > 0
        assert baseline.rpc_stats.bytes_fetched > 0


class TestPrefetchPipeline:
    def test_report_structure(self, comparison_reports):
        _, _, prefetch = comparison_reports
        assert prefetch.mode == "prefetch"
        assert prefetch.hit_tracker is not None
        assert len(prefetch.prefetch_init) == prefetch.world_size
        assert 0.0 < prefetch.overlap_efficiency <= 1.0

    def test_prefetch_learns_like_baseline(self, comparison_reports):
        """Prefetching must not change the training quality (paper Section V)."""
        dataset, baseline, prefetch = comparison_reports
        assert prefetch.epoch_records[-1].loss < prefetch.epoch_records[0].loss
        # Final accuracy within a few points of the baseline run.
        assert abs(prefetch.final_train_accuracy - baseline.final_train_accuracy) < 0.15

    def test_prefetch_is_faster(self, comparison_reports):
        _, baseline, prefetch = comparison_reports
        improvement = prefetch.improvement_percent_vs(baseline)
        assert improvement > 5.0
        assert prefetch.speedup_vs(baseline) > 1.05

    def test_prefetch_reduces_remote_fetches(self, comparison_reports):
        _, baseline, prefetch = comparison_reports
        assert prefetch.remote_nodes_fetched() < baseline.remote_nodes_fetched()

    def test_hit_rate_reasonable(self, comparison_reports):
        _, _, prefetch = comparison_reports
        assert 0.05 < prefetch.hit_rate <= 1.0

    def test_extras_record_buffer_memory(self, comparison_reports):
        _, _, prefetch = comparison_reports
        assert prefetch.extras["mean_buffer_nbytes"] > 0
        assert prefetch.extras["mean_scoreboard_nbytes"] > 0

    def test_summary_dict(self, comparison_reports):
        _, baseline, prefetch = comparison_reports
        for report in (baseline, prefetch):
            summary = report.summary()
            assert summary["total_simulated_time_s"] > 0


class TestBackendContrast:
    def test_cpu_gains_exceed_gpu_gains(self, small_dataset):
        """Slower CPU compute gives more room for overlap, hence larger gains (Fig. 6)."""
        prefetch_config = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=8)
        train_config = TrainConfig(epochs=2, hidden_dim=32, seed=0)
        improvements = {}
        for backend in ("cpu", "gpu"):
            cluster_config = ClusterConfig(
                num_machines=2, trainers_per_machine=2, batch_size=128,
                fanouts=(5, 10), backend=backend, seed=5,
            )
            baseline, prefetch = compare_baseline_and_prefetch(
                small_dataset, prefetch_config, cluster_config, train_config
            )
            improvements[backend] = prefetch.improvement_percent_vs(baseline)
        assert improvements["cpu"] >= improvements["gpu"] - 1.0

    def test_gpu_overlap_efficiency_lower(self, small_dataset):
        prefetch_config = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=8)
        train_config = TrainConfig(epochs=2, hidden_dim=32, seed=0)
        overlaps = {}
        for backend in ("cpu", "gpu"):
            report = train_massive(
                small_dataset,
                prefetch_config=prefetch_config,
                cluster_config=ClusterConfig(
                    num_machines=2, trainers_per_machine=2, batch_size=128,
                    fanouts=(5, 10), backend=backend, seed=5,
                ),
                train_config=train_config,
            )
            overlaps[backend] = report.overlap_efficiency
        assert overlaps["cpu"] >= overlaps["gpu"]


class TestEngineDetails:
    def test_shared_cluster_runs_are_independent(self, small_cluster, quick_train_config, quick_prefetch_config):
        engine = TrainingEngine(small_cluster, quick_train_config)
        first = engine.run_prefetch(quick_prefetch_config)
        second = engine.run_prefetch(quick_prefetch_config)
        # The cluster is reset between runs, so totals are comparable (same order).
        assert first.num_minibatches == second.num_minibatches
        assert second.total_simulated_time_s == pytest.approx(
            first.total_simulated_time_s, rel=0.5
        )

    def test_max_steps_per_epoch_caps_work(self, small_cluster, quick_prefetch_config):
        config = TrainConfig(epochs=1, hidden_dim=16, max_steps_per_epoch=1, seed=0)
        engine = TrainingEngine(small_cluster, config)
        report = engine.run_baseline()
        assert report.num_minibatches <= small_cluster.world_size

    def test_prefetch_requires_config(self, small_cluster, quick_train_config):
        engine = TrainingEngine(small_cluster, quick_train_config)
        with pytest.raises(ValueError):
            engine.run_prefetch(None)

    def test_final_model_available_after_run(self, small_cluster, quick_train_config):
        engine = TrainingEngine(small_cluster, quick_train_config)
        with pytest.raises(RuntimeError):
            _ = engine.final_model
        engine.run_baseline()
        assert engine.final_model is not None

    def test_gat_architecture_runs(self, small_dataset):
        report = train_massive(
            small_dataset,
            prefetch_config=PrefetchConfig(halo_fraction=0.25, delta=8),
            cluster_config=ClusterConfig(
                num_machines=2, trainers_per_machine=1, batch_size=64, fanouts=(4, 4), seed=2
            ),
            train_config=TrainConfig(epochs=1, arch="gat", hidden_dim=8, num_heads=2, seed=0),
        )
        assert report.arch == "gat"
        assert report.total_simulated_time_s > 0

    def test_wall_clock_recorded(self, comparison_reports):
        _, baseline, prefetch = comparison_reports
        assert baseline.wall_clock_s > 0 and prefetch.wall_clock_s > 0


class TestEvaluation:
    def test_evaluate_flag_produces_scores(self, small_dataset):
        report = train_baseline(
            small_dataset,
            cluster_config=ClusterConfig(
                num_machines=2, trainers_per_machine=1, batch_size=128, fanouts=(5, 10), seed=1
            ),
            train_config=TrainConfig(epochs=3, hidden_dim=32, evaluate=True, seed=0),
        )
        assert report.val_accuracy is not None and report.test_accuracy is not None
        assert report.val_accuracy > majority_class_accuracy(small_dataset, small_dataset.val_nids()) * 0.9

    def test_evaluate_accuracy_function(self, small_dataset, small_cluster, quick_train_config):
        engine = TrainingEngine(small_cluster, quick_train_config)
        engine.run_baseline()
        acc = evaluate_accuracy(
            engine.final_model, small_dataset, small_dataset.val_nids(), fanouts=(5, 10), seed=0
        )
        assert 0.0 <= acc <= 1.0

    def test_evaluate_loss_function(self, small_dataset, small_cluster, quick_train_config):
        engine = TrainingEngine(small_cluster, quick_train_config)
        engine.run_baseline()
        loss = evaluate_loss(
            engine.final_model, small_dataset, small_dataset.val_nids()[:100], fanouts=(5, 10)
        )
        assert loss > 0

    def test_evaluate_empty_node_set(self, small_dataset, small_cluster, quick_train_config):
        engine = TrainingEngine(small_cluster, quick_train_config)
        engine.run_baseline()
        assert evaluate_accuracy(engine.final_model, small_dataset, np.array([], dtype=np.int64)) == 0.0
