"""Tests for blocks, the neighbor sampler, seeds, and the data loader."""

import numpy as np
import pytest

from repro.sampling.block import Block, MiniBatch
from repro.sampling.dataloader import DistDataLoader
from repro.sampling.neighbor_sampler import (
    NeighborSampler,
    sample_for_partition,
    split_local_halo,
)
from repro.sampling.seeds import SeedIterator, SeedPartitioner, minibatches_per_trainer


class TestBlock:
    def test_valid_block(self):
        block = Block(
            src_nodes=np.array([0, 1, 2]),
            dst_nodes=np.array([0]),
            edge_src=np.array([1, 2]),
            edge_dst=np.array([0, 0]),
            src_global=np.array([10, 11, 12]),
            dst_global=np.array([10]),
        )
        assert block.num_src == 3 and block.num_dst == 1 and block.num_edges == 2
        np.testing.assert_array_equal(block.in_degrees(), [2])

    def test_misaligned_globals_raise(self):
        with pytest.raises(ValueError):
            Block(
                src_nodes=np.array([0, 1]),
                dst_nodes=np.array([0]),
                edge_src=np.array([1]),
                edge_dst=np.array([0]),
                src_global=np.array([5]),
                dst_global=np.array([5]),
            )

    def test_edge_arrays_must_align(self):
        with pytest.raises(ValueError):
            Block(
                src_nodes=np.array([0, 1]),
                dst_nodes=np.array([0]),
                edge_src=np.array([1, 0]),
                edge_dst=np.array([0]),
                src_global=np.array([5, 6]),
                dst_global=np.array([5]),
            )


class TestNeighborSampler:
    def test_block_count_matches_fanouts(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, [2, 3], seed=0)
        mb = sampler.sample(np.array([0, 1]))
        assert len(mb.blocks) == 2

    def test_seeds_are_final_dst(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, [2, 2], seed=0)
        seeds = np.array([3, 1])
        mb = sampler.sample(seeds)
        np.testing.assert_array_equal(np.sort(mb.blocks[-1].dst_global), np.sort(np.unique(seeds)))

    def test_fanout_respected(self, small_dataset):
        graph = small_dataset.graph
        fanout = 3
        sampler = NeighborSampler(graph, [fanout], seed=0)
        mb = sampler.sample(np.arange(20))
        assert np.all(mb.blocks[0].in_degrees() <= fanout)

    def test_full_neighborhood_with_minus_one(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, [-1], seed=0)
        mb = sampler.sample(np.array([0]))
        assert mb.blocks[0].num_edges == tiny_graph.out_degree(np.array([0]))[0]

    def test_sampled_edges_exist_in_graph(self, small_dataset):
        graph = small_dataset.graph
        sampler = NeighborSampler(graph, [5, 5], seed=1)
        mb = sampler.sample(np.arange(10))
        for block in mb.blocks:
            src_g = block.src_global[block.edge_src]
            dst_g = block.dst_global[block.edge_dst]
            for u, v in list(zip(dst_g, src_g))[:100]:
                # Edges flow src->dst in message passing; structurally the graph
                # stores dst -> sampled neighbor (symmetric graph, either works).
                assert graph.has_edge(int(u), int(v)) or graph.has_edge(int(v), int(u))

    def test_input_nodes_cover_all_block_sources(self, small_dataset):
        sampler = NeighborSampler(small_dataset.graph, [4, 4], seed=2)
        mb = sampler.sample(np.arange(15))
        np.testing.assert_array_equal(mb.input_local, mb.blocks[0].src_nodes)
        assert mb.num_input_nodes == len(mb.blocks[0].src_nodes)

    def test_dst_prefix_of_src(self, small_dataset):
        """Every block's dst nodes must be the prefix of its src nodes (self-inclusion)."""
        sampler = NeighborSampler(small_dataset.graph, [4, 4], seed=3)
        mb = sampler.sample(np.arange(10))
        for block in mb.blocks:
            np.testing.assert_array_equal(block.src_nodes[: block.num_dst], block.dst_nodes)

    def test_invalid_fanout(self, tiny_graph):
        with pytest.raises(ValueError):
            NeighborSampler(tiny_graph, [0])
        with pytest.raises(ValueError):
            NeighborSampler(tiny_graph, [])

    def test_empty_seeds_raise(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, [2], seed=0)
        with pytest.raises(ValueError):
            sampler.sample(np.array([], dtype=np.int64))

    def test_labels_attached(self, small_dataset):
        sampler = NeighborSampler(small_dataset.graph, [3], seed=0)
        seeds = np.arange(12)
        mb = sampler.sample(seeds, labels=small_dataset.labels)
        np.testing.assert_array_equal(mb.labels, small_dataset.labels[mb.blocks[-1].dst_global])

    def test_sampling_is_stochastic(self, small_dataset):
        sampler = NeighborSampler(small_dataset.graph, [2, 2], seed=0)
        a = sampler.sample(np.arange(30))
        b = sampler.sample(np.arange(30))
        # Two draws with the same seeds rarely produce identical frontiers.
        assert a.num_input_nodes != b.num_input_nodes or not np.array_equal(
            a.input_global, b.input_global
        )


class TestPartitionSampling:
    def test_sample_for_partition_global_ids(self, small_partitions):
        p = small_partitions[0]
        sampler = NeighborSampler(p.local_graph, [3, 3], seed=0)
        seeds_local = np.arange(min(10, p.num_owned))
        mb = sample_for_partition(p, sampler, seeds_local)
        assert np.all(np.isin(mb.input_global, p.local_to_global))

    def test_split_local_halo_partitions_rows(self, small_partitions):
        p = small_partitions[0]
        sampler = NeighborSampler(p.local_graph, [5, 5], seed=1)
        mb = sample_for_partition(p, sampler, np.arange(min(20, p.num_owned)))
        local_ids, halo_ids, local_rows, halo_rows = split_local_halo(p, mb)
        assert len(local_rows) + len(halo_rows) == mb.num_input_nodes
        assert np.all(np.isin(local_ids, p.owned_global))
        if len(halo_ids):
            assert np.all(np.isin(halo_ids, p.halo_global))


class TestSeeds:
    def test_partitioner_splits_all_seeds(self):
        seeds = np.arange(100)
        part = SeedPartitioner(seeds, 4, seed=0)
        union = np.concatenate([part.trainer_seeds(i) for i in range(4)])
        np.testing.assert_array_equal(np.sort(union), seeds)

    def test_partitioner_balanced(self):
        part = SeedPartitioner(np.arange(103), 4, seed=0)
        sizes = [len(part.trainer_seeds(i)) for i in range(4)]
        assert max(sizes) - min(sizes) <= 1

    def test_partitioner_invalid_rank(self):
        part = SeedPartitioner(np.arange(10), 2, seed=0)
        with pytest.raises(IndexError):
            part.trainer_seeds(5)

    def test_iterator_num_batches(self):
        it = SeedIterator(np.arange(100), batch_size=32, seed=0)
        assert it.num_batches == 4
        it_drop = SeedIterator(np.arange(100), batch_size=32, seed=0, drop_last=True)
        assert it_drop.num_batches == 3

    def test_iterator_yields_all_seeds(self):
        it = SeedIterator(np.arange(50), batch_size=16, seed=0)
        seen = np.concatenate(list(it.epoch()))
        np.testing.assert_array_equal(np.sort(seen), np.arange(50))

    def test_iterator_reshuffles_between_epochs(self):
        it = SeedIterator(np.arange(64), batch_size=64, seed=0)
        first = next(iter(it.epoch()))
        second = next(iter(it.epoch()))
        assert not np.array_equal(first, second)

    def test_empty_seed_iterator(self):
        it = SeedIterator(np.array([], dtype=np.int64), batch_size=8)
        assert it.num_batches == 0
        assert list(it.epoch()) == []

    def test_minibatches_per_trainer_formula(self):
        # 100k train nodes, 8 partitions x 4 trainers, batch 2000 -> ceil(3125/2000)=2.
        assert minibatches_per_trainer(100_000, 8, 4, 2000) == 2


class TestDataLoader:
    def test_epoch_yields_expected_batches(self, small_partitions, small_dataset):
        p = small_partitions[0]
        seeds = np.arange(min(60, p.num_owned))
        loader = DistDataLoader(p, seeds, fanouts=(3, 3), batch_size=16, labels=small_dataset.labels, seed=0)
        batches = list(loader.epoch())
        assert len(batches) == loader.num_batches_per_epoch
        assert all(isinstance(b, MiniBatch) for b in batches)

    def test_step_counter_increases(self, small_partitions):
        p = small_partitions[0]
        loader = DistDataLoader(p, np.arange(min(40, p.num_owned)), fanouts=(3,), batch_size=8, seed=0)
        list(loader.epoch())
        first_epoch_steps = loader.steps_taken
        list(loader.epoch())
        assert loader.steps_taken == 2 * first_epoch_steps
        loader.reset()
        assert loader.steps_taken == 0
