"""Tests for PrefetchConfig and the fixed-capacity prefetch buffer."""

import numpy as np
import pytest

from repro.core.buffer import PrefetchBuffer
from repro.core.config import (
    PAPER_DELTAS,
    PAPER_GAMMAS,
    PAPER_HALO_FRACTIONS,
    PrefetchConfig,
)


class TestPrefetchConfig:
    def test_defaults_valid(self):
        config = PrefetchConfig()
        assert 0 < config.halo_fraction <= 1
        assert config.eviction_enabled

    def test_effective_alpha_follows_eq1(self):
        config = PrefetchConfig(gamma=0.95, delta=10)
        assert config.effective_alpha == pytest.approx(0.95 ** 10)

    def test_explicit_alpha_overrides(self):
        config = PrefetchConfig(gamma=0.95, delta=10, alpha=0.5)
        assert config.effective_alpha == 0.5

    def test_buffer_capacity(self):
        config = PrefetchConfig(halo_fraction=0.25)
        assert config.buffer_capacity(1000) == 250
        assert config.buffer_capacity(0) == 0
        assert config.buffer_capacity(2) == 1  # min_buffer_slots

    def test_without_eviction(self):
        config = PrefetchConfig(halo_fraction=0.35).without_eviction()
        assert not config.eviction_enabled
        assert config.halo_fraction == 0.35

    def test_describe(self):
        assert "f_h=0.25" in PrefetchConfig(halo_fraction=0.25).describe()
        assert "no-evict" in PrefetchConfig(eviction_enabled=False).describe()

    @pytest.mark.parametrize("bad", [
        {"halo_fraction": 1.5},
        {"gamma": 0.0},
        {"gamma": 1.5},
        {"delta": 0},
        {"scoreboard": "tree"},
        {"alpha": -1.0},
        {"look_ahead": 0},
    ])
    def test_invalid_configs(self, bad):
        with pytest.raises(ValueError):
            PrefetchConfig(**bad)

    def test_paper_grids_nonempty(self):
        assert len(PAPER_HALO_FRACTIONS) == 4
        assert len(PAPER_DELTAS) == 6
        assert len(PAPER_GAMMAS) == 3


@pytest.fixture()
def buffer():
    ids = np.array([10, 3, 25, 7], dtype=np.int64)
    feats = np.arange(16, dtype=np.float32).reshape(4, 4)
    return PrefetchBuffer(ids, feats), ids, feats


class TestPrefetchBuffer:
    def test_capacity_and_dims(self, buffer):
        buf, ids, feats = buffer
        assert buf.capacity == 4
        assert buf.feature_dim == 4
        assert buf.nbytes() > 0

    def test_lookup_hits_and_misses(self, buffer):
        buf, ids, feats = buffer
        hit_mask, slots = buf.lookup(np.array([3, 99, 25]))
        np.testing.assert_array_equal(hit_mask, [True, False, True])
        np.testing.assert_allclose(buf.get_features(slots[[0, 2]]), feats[[1, 2]])

    def test_contains(self, buffer):
        buf, ids, _ = buffer
        np.testing.assert_array_equal(buf.contains(np.array([10, 11])), [True, False])

    def test_get_features_by_id(self, buffer):
        buf, ids, feats = buffer
        np.testing.assert_allclose(buf.get_features_by_id(np.array([7])), feats[[3]])
        with pytest.raises(KeyError):
            buf.get_features_by_id(np.array([999]))

    def test_slot_of(self, buffer):
        buf, ids, feats = buffer
        slots = buf.slot_of(ids)
        np.testing.assert_array_equal(slots, np.arange(4))
        with pytest.raises(KeyError):
            buf.slot_of(np.array([999]))

    def test_replace_keeps_capacity(self, buffer):
        buf, ids, feats = buffer
        buf.replace(np.array([0]), np.array([100]), np.full((1, 4), 7.0, dtype=np.float32))
        assert buf.capacity == 4
        assert buf.contains(np.array([100])).item()
        assert not buf.contains(np.array([10])).item()
        np.testing.assert_allclose(buf.get_features_by_id(np.array([100])), 7.0)

    def test_replace_rejects_resident_ids(self, buffer):
        buf, ids, _ = buffer
        with pytest.raises(ValueError):
            buf.replace(np.array([0]), np.array([3]), np.zeros((1, 4), dtype=np.float32))

    def test_replace_rejects_duplicate_slots(self, buffer):
        buf, _, _ = buffer
        with pytest.raises(ValueError):
            buf.replace(
                np.array([0, 0]), np.array([50, 51]), np.zeros((2, 4), dtype=np.float32)
            )

    def test_replace_misaligned_raises(self, buffer):
        buf, _, _ = buffer
        with pytest.raises(ValueError):
            buf.replace(np.array([0]), np.array([50, 51]), np.zeros((2, 4), dtype=np.float32))

    def test_replace_empty_noop(self, buffer):
        buf, ids, _ = buffer
        buf.replace(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            np.zeros((0, 4), dtype=np.float32),
        )
        np.testing.assert_array_equal(np.sort(buf.node_ids), np.sort(ids))

    def test_update_features(self, buffer):
        buf, ids, _ = buffer
        buf.update_features(np.array([25]), np.full((1, 4), 5.0, dtype=np.float32))
        np.testing.assert_allclose(buf.get_features_by_id(np.array([25])), 5.0)

    def test_duplicate_ids_rejected_at_construction(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(np.array([1, 1]), np.zeros((2, 3), dtype=np.float32))

    def test_empty_buffer(self):
        buf = PrefetchBuffer.empty(8)
        assert buf.capacity == 0
        hit_mask, slots = buf.lookup(np.array([1, 2]))
        assert not hit_mask.any()

    def test_lookup_empty_query(self, buffer):
        buf, _, _ = buffer
        hit_mask, slots = buf.lookup(np.array([], dtype=np.int64))
        assert len(hit_mask) == 0 and len(slots) == 0
