"""Tuning tests: space/strategy properties, objectives, runner determinism.

The differential discipline: same (seed, budget, space) => byte-identical
ranked reports; a different seed reorders the random strategy's candidates
but never the grid's.  Property tests pin the SearchSpace contract — exact
cartesian product, no duplicates, eager validation with the registry error
idiom — so strategies can rely on it.
"""

from __future__ import annotations

import itertools

import pytest

from repro.scenarios.registry import SCENARIOS
from repro.tuning import (
    AXES,
    OBJECTIVES,
    SEARCH_STRATEGIES,
    SearchSpace,
    TuneRunner,
    apply_axis_overrides,
    default_objective,
    default_search_space,
)
from repro.tuning.space import parse_axis_values

SCALE = 0.05


# --------------------------------------------------------------------------- #
# SearchSpace properties
# --------------------------------------------------------------------------- #
def test_grid_is_exact_cartesian_product():
    space = SearchSpace({
        "sync": ("allreduce-barrier", "bounded-staleness"),
        "staleness": (1, 2, 3),
        "rpc": ("per-call", "batched"),
    })
    grid = space.grid()
    assert space.size == 12
    assert len(grid) == 12
    expected = {
        ("allreduce-barrier", s, r)
        for s in (1, 2, 3) for r in ("per-call", "batched")
    } | {
        ("bounded-staleness", s, r)
        for s in (1, 2, 3) for r in ("per-call", "batched")
    }
    seen = {(g["sync"], g["staleness"], g["rpc"]) for g in grid}
    assert seen == expected
    # no duplicates
    keys = [tuple(sorted(g.items())) for g in grid]
    assert len(set(keys)) == len(keys)


def test_grid_order_matches_axis_declaration_order():
    space = SearchSpace({"staleness": (1, 2), "sync_period": (4, 8)})
    combos = [(g["staleness"], g["sync_period"]) for g in space.grid()]
    assert combos == list(itertools.product((1, 2), (4, 8)))


def test_unknown_axis_lists_valid_names():
    with pytest.raises(ValueError, match="unknown tuning axis"):
        SearchSpace({"syncc": ("allreduce-barrier",)})
    with pytest.raises(ValueError, match="cache.eviction"):
        # the error names the valid axes
        SearchSpace({"not-an-axis": (1,)})


def test_registry_axis_rejects_bad_value_listing_valid_names():
    with pytest.raises(ValueError, match="valid names"):
        SearchSpace({"sync": ("definitely-not-a-policy",)})
    with pytest.raises(ValueError, match="valid names"):
        SearchSpace({"cache.eviction": ("lru", "not-a-policy")})


def test_registry_axis_canonicalizes_aliases_and_rejects_duplicates():
    space = SearchSpace({"cache.eviction": ("second-chance",)})
    assert space.grid() == [{"cache.eviction": "clock"}]
    with pytest.raises(ValueError, match="duplicate"):
        SearchSpace({"cache.eviction": ("clock", "second-chance")})


def test_numeric_axis_type_checks():
    with pytest.raises(ValueError, match="integers"):
        SearchSpace({"staleness": ("two",)})
    with pytest.raises(ValueError, match="booleans"):
        SearchSpace({"cache.adaptive": (1,)})
    with pytest.raises(ValueError, match="no values"):
        SearchSpace({"staleness": ()})
    with pytest.raises(ValueError, match="at least one axis"):
        SearchSpace({})


def test_parse_axis_values_cli_form():
    name, values = parse_axis_values("staleness", "1,2")
    assert (name, values) == ("staleness", (1, 2))
    name, values = parse_axis_values("cache.eviction", "lru, second-chance")
    assert values == ("lru", "clock")
    name, values = parse_axis_values("cache.adaptive", "true")
    assert values == (True,)
    with pytest.raises(ValueError, match="unknown tuning axis"):
        parse_axis_values("nope", "1")
    with pytest.raises(ValueError, match="int values"):
        parse_axis_values("staleness", "fast")


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
@pytest.fixture()
def small_space():
    return SearchSpace({
        "sync": ("allreduce-barrier", "bounded-staleness"),
        "staleness": (1, 2),
        "rpc": ("per-call", "batched"),
    })


def test_grid_strategy_is_seed_independent(small_space):
    grid = SEARCH_STRATEGIES.build("grid")
    assert grid.candidates(small_space, seed=0) == grid.candidates(small_space, seed=99)
    assert grid.candidates(small_space, seed=0) == small_space.grid()
    assert grid.candidates(small_space, budget=3, seed=0) == small_space.grid()[:3]


def test_random_strategy_covers_grid_when_budget_allows(small_space):
    random = SEARCH_STRATEGIES.build("random")
    picked = random.candidates(small_space, budget=small_space.size, seed=0)
    key = lambda d: tuple(sorted(d.items()))  # noqa: E731
    assert sorted(map(key, picked)) == sorted(map(key, small_space.grid()))


def test_random_strategy_order_depends_on_seed_only(small_space):
    random = SEARCH_STRATEGIES.build("random")
    a = random.candidates(small_space, seed=0)
    b = random.candidates(small_space, seed=0)
    c = random.candidates(small_space, seed=1)
    assert a == b
    assert a != c  # 8! orderings; a seed collision here means a broken salt


def test_strategy_registry_error_lists_valid_names():
    with pytest.raises(ValueError, match="valid names"):
        SEARCH_STRATEGIES.build("annealing")


# --------------------------------------------------------------------------- #
# apply_axis_overrides
# --------------------------------------------------------------------------- #
def test_apply_scenario_and_cache_axes():
    base = SCENARIOS.build("uniform")
    assert base.cache_config is None
    out = apply_axis_overrides(base, {
        "sync": "bounded-staleness", "staleness": 2,
        "cache.tiers": 2, "cache.eviction": "lru",
    })
    assert out.sync == "bounded-staleness"
    assert out.staleness == 2
    assert out.cache_config.tiers == 2
    assert out.cache_config.eviction == "lru"
    # cache axes on a cacheless scenario must put the tiers in the data path
    assert out.pipeline == "tiered-cache"
    # the base scenario is untouched
    assert base.cache_config is None and base.staleness == 1


def test_apply_preserves_existing_cache_fields():
    base = SCENARIOS.build("cache-churn")
    out = apply_axis_overrides(base, {"cache.eviction": "clock"})
    assert out.cache_config.eviction == "clock"
    assert out.cache_config.tiers == base.cache_config.tiers
    assert out.cache_config.admission == base.cache_config.admission
    assert out.pipeline == base.pipeline


def test_apply_serving_axes_require_serving_scenario():
    serving = SCENARIOS.build("steady-poisson")
    out = apply_axis_overrides(serving, {"serving.rate_rps": 99.0})
    assert out.serving.rate_rps == 99.0
    with pytest.raises(ValueError, match="serving"):
        apply_axis_overrides(SCENARIOS.build("uniform"), {"serving.rate_rps": 99.0})


def test_apply_rejects_unknown_axis():
    with pytest.raises(ValueError, match="unknown tuning axis"):
        apply_axis_overrides(SCENARIOS.build("uniform"), {"sylo": 1})


def test_default_spaces_match_execution_kind():
    training = default_search_space(SCENARIOS.build("uniform"))
    serving = default_search_space(SCENARIOS.build("steady-poisson"))
    assert "engine" in training.names()
    assert "trainers_per_machine" in serving.names()


# --------------------------------------------------------------------------- #
# Objectives
# --------------------------------------------------------------------------- #
def test_objective_registry_error_lists_valid_names():
    with pytest.raises(ValueError, match="valid names"):
        OBJECTIVES.build("latency")


def test_objective_direction_math():
    minimize = OBJECTIVES.build("critical-path-s")
    maximize = OBJECTIVES.build("cache-hit-rate")
    assert minimize.better(1.0, 2.0) and not minimize.better(2.0, 1.0)
    assert maximize.better(0.9, 0.5) and not maximize.better(0.5, 0.9)
    assert minimize.improvement_percent(0.9, 1.0) == pytest.approx(10.0)
    assert maximize.improvement_percent(1.1, 1.0) == pytest.approx(10.0)
    assert minimize.improvement_percent(5.0, 0.0) == 0.0


def test_objective_rejects_wrong_report_surface():
    serving_report = (
        SCENARIOS.build("steady-poisson").with_overrides(scale=SCALE)
        .materialize(seed=0).run()
    )
    assert OBJECTIVES.build("serving-p99-ms").score(serving_report) > 0
    with pytest.raises(ValueError, match="critical-path-s"):
        OBJECTIVES.build("critical-path-s").score(serving_report)


def test_default_objective_by_engine():
    assert default_objective(SCENARIOS.build("uniform")) == "critical-path-s"
    assert default_objective(SCENARIOS.build("steady-poisson")) == "serving-p99-ms"


# --------------------------------------------------------------------------- #
# TuneRunner: determinism, ranking, differential behavior
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def straggler_report():
    space = SearchSpace({
        "engine": ("async",),
        "sync": ("allreduce-barrier", "bounded-staleness"),
    })
    return TuneRunner("straggler-machine", space=space, scale=SCALE,
                      epochs=1).run()


def test_tune_report_ranked_best_first(straggler_report):
    report = straggler_report
    assert report.baseline_score is not None
    ranks = [c.rank for c in report.candidates if c.status == "ok"]
    assert ranks == list(range(1, len(ranks) + 1))
    scores = [c.score for c in report.candidates if c.status == "ok"]
    assert scores == sorted(scores)  # min objective: ascending is best-first
    assert report.best is report.candidates[0]
    # the sweep rediscovers the bounded-staleness win over the straggler
    assert dict(report.best.overrides)["sync"] == "bounded-staleness"
    assert report.best_improvement_percent > 0


def test_same_seed_reports_byte_identical(straggler_report):
    space = SearchSpace({
        "engine": ("async",),
        "sync": ("allreduce-barrier", "bounded-staleness"),
    })
    again = TuneRunner("straggler-machine", space=space, scale=SCALE,
                       epochs=1).run()
    assert again.canonical_json() == straggler_report.canonical_json()


def test_seed_reorders_random_but_not_grid_candidates():
    space = SearchSpace({
        "sync": ("allreduce-barrier", "bounded-staleness", "local-sgd"),
        "staleness": (1, 2),
        "sync_period": (2, 4),
    })
    grid = SEARCH_STRATEGIES.build("grid")
    random = SEARCH_STRATEGIES.build("random")
    assert grid.candidates(space, seed=0) == grid.candidates(space, seed=7)
    assert random.candidates(space, seed=0) != random.candidates(space, seed=7)


def test_budget_truncates_evaluations():
    space = SearchSpace({"staleness": (1, 2, 3, 4)})
    report = TuneRunner("straggler-machine", space=space, budget=2,
                        scale=SCALE, epochs=1,
                        objective="critical-path-s").run()
    assert len(report.evaluated) == 2
    with pytest.raises(ValueError, match="budget"):
        TuneRunner("straggler-machine", space=space, budget=0)


def test_invalid_candidates_recorded_not_ranked():
    # a serving objective on a training scenario: no candidate's ClusterReport
    # has a latency surface, so every row must come back invalid, not ranked.
    space = SearchSpace({"sync": ("allreduce-barrier",), "engine": ("async",)})
    report = TuneRunner("uniform", space=space, objective="serving-p99-ms",
                        scale=SCALE, epochs=1).run()
    assert report.baseline_score is None
    assert report.best is None
    assert all(c.status == "invalid" and c.rank == 0 and c.error
               for c in report.candidates)


def test_parallel_run_matches_serial():
    space = SearchSpace({
        "sync": ("allreduce-barrier", "bounded-staleness"),
        "engine": ("async",),
    })
    serial = TuneRunner("straggler-machine", space=space, scale=SCALE,
                        epochs=1, parallelism=1).run()
    parallel = TuneRunner("straggler-machine", space=space, scale=SCALE,
                          epochs=1, parallelism=2).run()
    assert parallel.canonical_json() == serial.canonical_json()


def test_runner_validates_names_eagerly():
    with pytest.raises(ValueError, match="valid names"):
        TuneRunner("no-such-scenario")
    with pytest.raises(ValueError, match="valid names"):
        TuneRunner("uniform", objective="speed")
    with pytest.raises(ValueError, match="valid names"):
        TuneRunner("uniform", strategy="bayes")
