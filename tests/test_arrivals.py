"""Property tests for the serving arrival generators (repro.serving.arrivals).

The generators are pure functions of ``(spec, num_requests, seed)``; these
tests pin the statistical contract of each process (rate, square-wave
predicate, exact burst mass) and the bit-identical same-seed reproducibility
the serving engine's replay tests stand on.
"""

import numpy as np
import pytest

from repro.serving.arrivals import (
    ARRIVALS,
    PHASE_LABELS,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    ServingSpec,
    build_arrivals,
)


def _generate(spec, n, seed):
    return build_arrivals(spec).generate(n, seed)


class TestPoisson:
    def test_rate_within_tolerance(self):
        spec = ServingSpec(arrival="poisson", rate_rps=1000.0)
        times, _ = _generate(spec, 4000, seed=0)
        empirical = len(times) / times[-1]
        assert abs(empirical - spec.rate_rps) / spec.rate_rps < 0.10

    def test_sorted_positive_single_phase(self):
        spec = ServingSpec(arrival="poisson", rate_rps=500.0)
        times, phases = _generate(spec, 512, seed=3)
        assert times.shape == phases.shape == (512,)
        assert np.all(times > 0)
        assert np.all(np.diff(times) >= 0)
        assert not phases.any()  # a steady stream has no peak phase


class TestDiurnal:
    SPEC = ServingSpec(arrival="diurnal", rate_rps=2000.0, period_s=0.05,
                       duty=0.5, trough_fraction=0.25)

    def test_phases_match_square_wave_predicate(self):
        times, phases = _generate(self.SPEC, 1024, seed=1)
        # peak iff (t % period) < duty * period — the CongestionSpec predicate.
        predicate = (times % self.SPEC.period_s) < self.SPEC.duty * self.SPEC.period_s
        np.testing.assert_array_equal(phases.astype(bool), predicate)

    def test_period_and_duty_honored(self):
        times, phases = _generate(self.SPEC, 2048, seed=2)
        assert np.all(np.diff(times) >= 0)
        # rate 2000 during 50% of each period vs 500 during the rest: the peak
        # phase must carry ~80% of the arrivals (2000/(2000+500)).
        peak_share = phases.mean()
        assert 0.7 < peak_share < 0.9

    def test_exact_request_count(self):
        times, phases = _generate(self.SPEC, 777, seed=4)
        assert len(times) == len(phases) == 777


class TestFlashCrowd:
    SPEC = ServingSpec(arrival="flash-crowd", rate_rps=1000.0,
                       burst_fraction=0.3, burst_start_fraction=0.5,
                       burst_duration_fraction=0.05)

    def test_burst_mass_conserved_exactly(self):
        for n in (64, 256, 1000):
            _, phases = _generate(self.SPEC, n, seed=5)
            assert int(phases.sum()) == int(round(n * self.SPEC.burst_fraction))

    def test_burst_confined_to_window(self):
        times, phases = _generate(self.SPEC, 512, seed=6)
        base = times[phases == 0]
        horizon = base[-1] if len(base) else 512 / self.SPEC.rate_rps
        lo = self.SPEC.burst_start_fraction * horizon
        hi = lo + self.SPEC.burst_duration_fraction * horizon
        burst = times[phases == 1]
        assert np.all(burst >= lo) and np.all(burst <= hi)

    def test_merged_stream_sorted(self):
        times, _ = _generate(self.SPEC, 512, seed=7)
        assert np.all(np.diff(times) >= 0)


class TestDeterminism:
    @pytest.mark.parametrize("arrival", ["poisson", "diurnal", "flash-crowd"])
    def test_same_seed_bit_identical(self, arrival):
        spec = ServingSpec(arrival=arrival, rate_rps=1200.0)
        t1, p1 = _generate(spec, 300, seed=42)
        t2, p2 = _generate(spec, 300, seed=42)
        assert np.array_equal(t1, t2) and np.array_equal(p1, p2)

    @pytest.mark.parametrize("arrival", ["poisson", "diurnal", "flash-crowd"])
    def test_different_seed_differs(self, arrival):
        spec = ServingSpec(arrival=arrival, rate_rps=1200.0)
        t1, _ = _generate(spec, 300, seed=42)
        t2, _ = _generate(spec, 300, seed=43)
        assert not np.array_equal(t1, t2)


class TestServingSpec:
    def test_registry_resolution_and_aliases(self):
        assert isinstance(build_arrivals(ServingSpec(arrival="poisson")), PoissonArrivals)
        assert isinstance(build_arrivals(ServingSpec(arrival="steady")), PoissonArrivals)
        assert isinstance(build_arrivals(ServingSpec(arrival="square-wave")), DiurnalArrivals)
        assert isinstance(build_arrivals(ServingSpec(arrival="burst")), FlashCrowdArrivals)
        assert ServingSpec(arrival="flash").arrival == "flash-crowd"

    def test_unknown_arrival_rejected_with_names(self):
        with pytest.raises(ValueError, match="poisson"):
            ServingSpec(arrival="sawtooth")

    @pytest.mark.parametrize("bad", [
        dict(rate_rps=0.0),
        dict(rate_rps=-1.0),
        dict(num_requests=0),
        dict(slo_ms=0.0),
        dict(zipf_alpha=-0.1),
        dict(period_s=0.0),
        dict(duty=0.0),
        dict(duty=1.0),
        dict(trough_fraction=1.5),
        dict(burst_fraction=0.0),
        dict(burst_fraction=1.0),
        dict(burst_start_fraction=-0.1),
        dict(burst_duration_fraction=0.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ServingSpec(**bad)

    def test_with_overrides_ignores_none(self):
        spec = ServingSpec(rate_rps=1500.0, slo_ms=5.0)
        same = spec.with_overrides(rate_rps=None, slo_ms=None)
        assert same == spec
        bumped = spec.with_overrides(rate_rps=3000.0, num_requests=None)
        assert bumped.rate_rps == 3000.0 and bumped.num_requests == spec.num_requests

    def test_describe_and_slo(self):
        assert ServingSpec(arrival="poisson", rate_rps=1500.0).describe() == "poisson(1500 rps)"
        assert "1500↔375" in ServingSpec(arrival="diurnal", rate_rps=1500.0,
                                         trough_fraction=0.25).describe()
        assert "burst=30%" in ServingSpec(arrival="flash-crowd",
                                          burst_fraction=0.3).describe()
        assert ServingSpec(slo_ms=5.0).slo_s == pytest.approx(0.005)

    def test_registry_surface(self):
        assert {"poisson", "diurnal", "flash-crowd"} <= set(ARRIVALS.names())
        assert PHASE_LABELS[0] == "steady" and PHASE_LABELS[1] == "peak"
