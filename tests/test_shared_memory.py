"""Tests for the zero-copy shared-memory exports behind the pool backend.

``CSRGraph.to_shared``/``from_shared`` and :mod:`repro.features.shared`
export graph, features, and KVStore payloads as ``.npy`` files that worker
processes re-open as read-only memmaps — same values, same sampler RNG
streams, writes refused.  These properties are what make the process-pool
backend's bit-identity claim possible, so they are pinned directly here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.kvstore import KVStore
from repro.features.shared import export_shared_dataset, load_shared_dataset
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.sampling.neighbor_sampler import build_sampler


@pytest.fixture(scope="module")
def audit_dataset():
    return load_dataset("arxiv", scale=0.1, seed=0)


class TestSharedCSR:
    def test_round_trip_equality(self, tiny_graph, tmp_path):
        handle = tiny_graph.to_shared(str(tmp_path))
        clone = CSRGraph.from_shared(handle)
        assert clone.num_nodes == tiny_graph.num_nodes
        assert clone.num_edges == tiny_graph.num_edges
        np.testing.assert_array_equal(clone.indptr, tiny_graph.indptr)
        np.testing.assert_array_equal(clone.indices, tiny_graph.indices)

    def test_shared_arrays_are_readonly(self, tiny_graph, tmp_path):
        # __post_init__'s asarray returns a zero-copy base-class view of the
        # memmap; the read-only flag survives the view, so writes still raise.
        clone = CSRGraph.from_shared(tiny_graph.to_shared(str(tmp_path)))
        assert not clone.indices.flags.writeable
        assert not clone.indptr.flags.writeable
        with pytest.raises(ValueError):
            clone.indices[0] = 99
        with pytest.raises(ValueError):
            clone.indptr[0] = 99

    def test_queries_match(self, tiny_graph, tmp_path):
        clone = CSRGraph.from_shared(tiny_graph.to_shared(str(tmp_path)))
        np.testing.assert_array_equal(clone.out_degree(), tiny_graph.out_degree())
        for node in range(tiny_graph.num_nodes):
            np.testing.assert_array_equal(
                clone.neighbors(node), tiny_graph.neighbors(node)
            )

    @pytest.mark.parametrize("sampler_name", ["legacy", "vectorized"])
    def test_sampler_bit_identical_over_memmap(self, tiny_graph, tmp_path,
                                               sampler_name):
        """Same seeds + same RNG stream over in-memory and memmapped CSR."""
        clone = CSRGraph.from_shared(tiny_graph.to_shared(str(tmp_path)))
        seeds = np.array([0, 3, 5], dtype=np.int64)
        a = build_sampler(sampler_name, tiny_graph, [2, 3], seed=11).sample(seeds)
        b = build_sampler(sampler_name, clone, [2, 3], seed=11).sample(seeds)
        np.testing.assert_array_equal(a.input_global, b.input_global)
        assert len(a.blocks) == len(b.blocks)
        for x, y in zip(a.blocks, b.blocks):
            np.testing.assert_array_equal(x.src_global, y.src_global)
            np.testing.assert_array_equal(x.edge_src, y.edge_src)
            np.testing.assert_array_equal(x.edge_dst, y.edge_dst)


class TestSharedKVStore:
    def test_from_shared_aliases_layout(self, tmp_path):
        rng = np.random.default_rng(0)
        ids = np.array([3, 9, 1, 7], dtype=np.int64)
        rows = rng.standard_normal((4, 5)).astype(np.float32)
        store = KVStore(ids, rows, part_id=2)
        sorted_ids, sorted_rows = store.shared_arrays()
        np.save(tmp_path / "ids.npy", sorted_ids)
        np.save(tmp_path / "rows.npy", sorted_rows)
        clone = KVStore.from_shared(
            np.load(tmp_path / "ids.npy", mmap_mode="r"),
            np.load(tmp_path / "rows.npy", mmap_mode="r"),
            part_id=2,
        )
        np.testing.assert_array_equal(clone.pull(ids), store.pull(ids))
        assert clone.part_id == 2

    def test_memmap_store_refuses_push(self, tmp_path):
        ids = np.arange(4, dtype=np.int64)
        rows = np.ones((4, 3), dtype=np.float32)
        np.save(tmp_path / "ids.npy", ids)
        np.save(tmp_path / "rows.npy", rows)
        clone = KVStore.from_shared(
            np.load(tmp_path / "ids.npy", mmap_mode="r"),
            np.load(tmp_path / "rows.npy", mmap_mode="r"),
        )
        with pytest.raises(ValueError):
            clone.push(np.array([1]), np.zeros((1, 3), dtype=np.float32))

    def test_from_shared_rejects_unsorted_ids(self):
        with pytest.raises(ValueError):
            KVStore.from_shared(
                np.array([3, 1, 2], dtype=np.int64),
                np.zeros((3, 2), dtype=np.float32),
            )


class TestSharedDataset:
    def test_export_load_round_trip(self, audit_dataset, tmp_path):
        config = ClusterConfig(num_machines=2, trainers_per_machine=2,
                               batch_size=64, fanouts=(5, 10), seed=7)
        cluster = SimCluster(audit_dataset, config)
        payloads = {pid: s.shared_arrays() for pid, s in cluster.servers.items()}
        handle = export_shared_dataset(
            audit_dataset, cluster.partition_result, payloads, str(tmp_path)
        )
        dataset, partition, server_rows = load_shared_dataset(handle)
        np.testing.assert_array_equal(dataset.features, audit_dataset.features)
        np.testing.assert_array_equal(dataset.labels, audit_dataset.labels)
        np.testing.assert_array_equal(dataset.train_mask, audit_dataset.train_mask)
        np.testing.assert_array_equal(
            partition.parts, cluster.partition_result.parts
        )
        assert partition.method == cluster.partition_result.method
        assert sorted(server_rows) == sorted(payloads)
        for pid, (ids, rows) in payloads.items():
            np.testing.assert_array_equal(server_rows[pid][0], ids)
            np.testing.assert_array_equal(server_rows[pid][1], rows)

    def test_loaded_arrays_are_readonly(self, audit_dataset, tmp_path):
        config = ClusterConfig(num_machines=2, trainers_per_machine=1,
                               batch_size=64, fanouts=(5,), seed=7)
        cluster = SimCluster(audit_dataset, config)
        payloads = {pid: s.shared_arrays() for pid, s in cluster.servers.items()}
        handle = export_shared_dataset(
            audit_dataset, cluster.partition_result, payloads, str(tmp_path)
        )
        dataset, _, _ = load_shared_dataset(handle)
        with pytest.raises(ValueError):
            dataset.features[0, 0] = 1.0

    def test_shared_cluster_matches_original_stores(self, audit_dataset, tmp_path):
        """A SimCluster rebuilt over the export serves identical feature rows."""
        config = ClusterConfig(num_machines=2, trainers_per_machine=2,
                               batch_size=64, fanouts=(5, 10), seed=7)
        cluster = SimCluster(audit_dataset, config)
        payloads = {pid: s.shared_arrays() for pid, s in cluster.servers.items()}
        handle = export_shared_dataset(
            audit_dataset, cluster.partition_result, payloads, str(tmp_path)
        )
        dataset, partition, server_rows = load_shared_dataset(handle)
        rebuilt = SimCluster(
            dataset, config, cost_model=cluster.cost_model,
            partition_result=partition, server_rows=server_rows,
        )
        for pid, store in cluster.servers.items():
            ids, _ = store.shared_arrays()
            probe = ids[:: max(1, len(ids) // 16)]
            np.testing.assert_array_equal(
                rebuilt.servers[pid].pull(probe), store.pull(probe)
            )
