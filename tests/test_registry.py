"""Tests for the string-keyed registries (eviction policies, sources, pipelines)."""

import pytest

from repro.core.config import PrefetchConfig
from repro.core.eviction import (
    EVICTION_POLICIES,
    LRUPolicy,
    NoEvictionPolicy,
    RandomEvictionPolicy,
    ScoreThresholdPolicy,
    build_eviction_policy,
)
from repro.features import FEATURE_SOURCES, SourceContext, build_feature_source
from repro.sampling.pipeline import MiniBatchPipeline
from repro.training.pipelines import PIPELINES, TIMING_POLICIES, build_pipeline
from repro.utils.registry import Registry


class TestRegistryMechanics:
    def test_register_and_build(self):
        reg = Registry("widget")
        reg.register("a", lambda: "built-a", aliases=("alpha",))
        assert reg.build("a") == "built-a"
        assert reg.build("alpha") == "built-a"
        assert reg.build("A") == "built-a"  # case-insensitive
        assert "a" in reg and "alpha" in reg and "b" not in reg
        assert reg.names() == ["a"]

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("decorated")
        def factory(x):
            return x * 2

        assert reg.build("decorated", 21) == 42

    def test_unknown_name_lists_valid_names(self):
        reg = Registry("widget")
        reg.register("a", lambda: None)
        reg.register("b", lambda: None)
        with pytest.raises(ValueError) as excinfo:
            reg.build("zzz")
        message = str(excinfo.value)
        assert "unknown widget 'zzz'" in message
        assert "a" in message and "b" in message

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.register("a", lambda: None, aliases=("alpha",))
        with pytest.raises(ValueError):
            reg.register("a", lambda: None)
        with pytest.raises(ValueError):
            reg.register("c", lambda: None, aliases=("a",))
        # A new canonical name may not shadow an existing alias either —
        # resolve() follows aliases first, so it would be unreachable.
        with pytest.raises(ValueError):
            reg.register("alpha", lambda: None)

    def test_non_string_names_rejected(self):
        reg = Registry("widget")
        with pytest.raises(ValueError):
            reg.resolve("")
        assert 3 not in reg


class TestEvictionPolicyRegistry:
    EXPECTED = {
        "score-threshold": ScoreThresholdPolicy,
        "lru": LRUPolicy,
        "random": RandomEvictionPolicy,
        "none": NoEvictionPolicy,
    }

    def test_round_trip_every_registered_policy(self):
        assert set(EVICTION_POLICIES.names()) == set(self.EXPECTED)
        for name in EVICTION_POLICIES.names():
            policy = build_eviction_policy(name, seed=0)
            assert isinstance(policy, self.EXPECTED[name])
            assert policy.name == name

    def test_aliases(self):
        assert isinstance(build_eviction_policy("score"), ScoreThresholdPolicy)
        assert isinstance(build_eviction_policy("paper"), ScoreThresholdPolicy)
        assert isinstance(build_eviction_policy("no-eviction"), NoEvictionPolicy)

    def test_unknown_policy_error_lists_names(self):
        with pytest.raises(ValueError) as excinfo:
            build_eviction_policy("fifo")
        message = str(excinfo.value)
        for name in self.EXPECTED:
            assert name in message

    def test_config_validates_policy_name(self):
        with pytest.raises(ValueError):
            PrefetchConfig(eviction_policy="not-a-policy")
        config = PrefetchConfig(eviction_policy="lru")
        assert config.eviction_policy == "lru"

    def test_config_validates_halo_source_name(self):
        with pytest.raises(ValueError):
            PrefetchConfig(halo_source="bufferd")  # typo fails at construction
        config = PrefetchConfig(halo_source="static-cache")
        assert config.halo_source == "static-cache"


class TestFeatureSourceRegistry:
    @pytest.fixture()
    def ctx(self, small_cluster):
        trainer = small_cluster.trainers[0]
        return SourceContext(
            rpc=trainer.rpc,
            partition=trainer.partition,
            num_global_nodes=small_cluster.dataset.num_nodes,
            book=small_cluster.book,
            prefetch_config=PrefetchConfig(halo_fraction=0.25, delta=8),
            seed=0,
        )

    def test_round_trip_every_registered_source(self, ctx):
        assert set(FEATURE_SOURCES.names()) == {
            "local-kvstore", "remote-rpc", "buffered", "static-cache", "tiered-cache",
        }
        for name in FEATURE_SOURCES.names():
            source = build_feature_source(name, ctx)
            assert source.name == name
            assert callable(source.fetch)

    def test_unknown_source_error_lists_names(self, ctx):
        with pytest.raises(ValueError) as excinfo:
            build_feature_source("redis", ctx)
        message = str(excinfo.value)
        assert "unknown feature source 'redis'" in message
        assert "buffered" in message and "remote-rpc" in message

    def test_prefetch_config_required_for_buffered(self, small_cluster):
        trainer = small_cluster.trainers[0]
        ctx = SourceContext(rpc=trainer.rpc, partition=trainer.partition)
        with pytest.raises(ValueError, match="requires a PrefetchConfig"):
            build_feature_source("buffered", ctx)


class TestPipelineRegistry:
    def test_round_trip_every_registered_pipeline(self, small_cluster):
        assert set(PIPELINES.names()) == {
            "baseline", "prefetch", "static-cache", "tiered-cache",
        }
        trainer = small_cluster.trainers[0]
        config = PrefetchConfig(halo_fraction=0.25, delta=8)
        for name in PIPELINES.names():
            pipeline = build_pipeline(name, trainer, small_cluster, prefetch_config=config)
            assert isinstance(pipeline, MiniBatchPipeline)
            assert pipeline.name == name
            assert pipeline.describe() == "seed >> sample >> fetch-feature >> batch"

    def test_unknown_pipeline_error_lists_names(self, small_cluster):
        trainer = small_cluster.trainers[0]
        with pytest.raises(ValueError) as excinfo:
            build_pipeline("warp-drive", trainer, small_cluster)
        message = str(excinfo.value)
        assert "baseline" in message and "prefetch" in message

    def test_prefetch_pipeline_requires_config(self, small_cluster):
        trainer = small_cluster.trainers[0]
        with pytest.raises(ValueError, match="PrefetchConfig"):
            build_pipeline("prefetch", trainer, small_cluster)

    def test_timing_policy_registry(self):
        assert set(TIMING_POLICIES.names()) == {"serial", "overlapped"}
        serial = TIMING_POLICIES.build("serial")
        overlapped = TIMING_POLICIES.build("overlapped")
        assert serial.overlaps_preparation is False
        assert overlapped.overlaps_preparation is True
