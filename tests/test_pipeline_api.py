"""Tests for the composable minibatch pipeline and the legacy shims over it.

The acceptance bar for the API redesign: baseline and prefetch training both
run through ``MiniBatchPipeline``/``FeatureStore`` with no mode branching in
the engine, the legacy entry points (``train_baseline``/``train_massive``) are
step-identical to the pipeline API, and the two named pipelines report
identical accuracy on a shared cluster (the paper's Section V claim).
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.config import PrefetchConfig
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.features import FeatureStore, LocalKVStoreSource, RemoteRPCSource
from repro.sampling.pipeline import (
    BatchStage,
    FetchFeatureStage,
    MiniBatchPipeline,
    PipelineBatch,
    SampleStage,
    SeedStage,
)
from repro.training.baseline import train_baseline
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine
from repro.training.massive import train_massive, train_with_pipeline
from repro.training.pipelines import build_pipeline

CLUSTER_KW = dict(
    num_machines=2, trainers_per_machine=2, batch_size=128, fanouts=(5, 10), seed=7
)
PREFETCH = dict(halo_fraction=0.35, gamma=0.995, delta=8)
TRAIN = dict(epochs=2, hidden_dim=32, seed=1)


def _assert_reports_identical(a, b):
    """Step-identical: same numerics, same simulated time, same RPC traffic."""
    assert a.total_simulated_time_s == pytest.approx(b.total_simulated_time_s, rel=1e-12)
    assert a.final_train_accuracy == b.final_train_accuracy
    assert a.num_minibatches == b.num_minibatches
    assert [r.loss for r in a.epoch_records] == [r.loss for r in b.epoch_records]
    assert [r.train_accuracy for r in a.epoch_records] == [
        r.train_accuracy for r in b.epoch_records
    ]
    assert a.rpc_stats.as_dict() == b.rpc_stats.as_dict()
    for key, value in a.component_breakdown.items():
        assert b.component_breakdown[key] == pytest.approx(value, rel=1e-12), key


class TestStageChaining:
    def test_rshift_builds_pipeline(self, small_cluster):
        trainer = small_cluster.trainers[0]
        store = FeatureStore(
            partition=trainer.partition,
            local_source=LocalKVStoreSource(trainer.rpc),
            halo_source=RemoteRPCSource.from_book(trainer.rpc, small_cluster.book),
        )
        pipeline = (
            SeedStage(trainer.dataloader.seed_iterator)
            >> SampleStage(trainer.dataloader)
            >> FetchFeatureStage(store)
            >> BatchStage()
        )
        assert isinstance(pipeline, MiniBatchPipeline)
        assert pipeline.describe() == "seed >> sample >> fetch-feature >> batch"
        batches = list(pipeline.epoch())
        assert len(batches) == trainer.dataloader.num_batches_per_epoch
        for step, batch in enumerate(batches):
            assert isinstance(batch, PipelineBatch)
            assert batch.step == step
            assert batch.features.shape == (
                batch.minibatch.num_input_nodes,
                small_cluster.dataset.feature_dim,
            )
            assert batch.fetch.merged.num_requested == batch.minibatch.num_input_nodes

    def test_seed_stage_must_be_first(self, small_cluster):
        trainer = small_cluster.trainers[0]
        stage = SeedStage(trainer.dataloader.seed_iterator)
        with pytest.raises(ValueError, match="source stage"):
            stage.apply(iter([np.array([0])]))

    def test_batch_stage_requires_features(self, small_cluster):
        trainer = small_cluster.trainers[0]
        minibatch = next(iter(trainer.dataloader.epoch()))
        with pytest.raises(ValueError, match="without features"):
            list(BatchStage().apply(iter([PipelineBatch(minibatch=minibatch)])))


class TestShimEquivalence:
    """The legacy entry points must be step-identical to the pipeline API."""

    def test_train_baseline_matches_run_pipeline(self, small_dataset):
        shim = train_baseline(
            small_dataset,
            cluster_config=ClusterConfig(**CLUSTER_KW),
            train_config=TrainConfig(**TRAIN),
        )
        cluster = SimCluster(small_dataset, ClusterConfig(**CLUSTER_KW))
        direct = TrainingEngine(cluster, TrainConfig(**TRAIN)).run_pipeline("baseline")
        _assert_reports_identical(shim, direct)
        assert shim.mode == direct.mode == "baseline"

    def test_train_massive_matches_run_pipeline(self, small_dataset):
        shim = train_massive(
            small_dataset,
            prefetch_config=PrefetchConfig(**PREFETCH),
            cluster_config=ClusterConfig(**CLUSTER_KW),
            train_config=TrainConfig(**TRAIN),
        )
        cluster = SimCluster(small_dataset, ClusterConfig(**CLUSTER_KW))
        direct = TrainingEngine(cluster, TrainConfig(**TRAIN)).run_pipeline(
            "prefetch", prefetch_config=PrefetchConfig(**PREFETCH)
        )
        _assert_reports_identical(shim, direct)
        assert shim.mode == direct.mode == "prefetch"
        assert shim.hit_tracker is not None
        assert shim.hit_rate == direct.hit_rate

    def test_train_with_pipeline_generic_entry(self, small_dataset):
        report = train_with_pipeline(
            small_dataset,
            pipeline="static-cache",
            prefetch_config=PrefetchConfig(**PREFETCH),
            cluster_config=ClusterConfig(**CLUSTER_KW),
            train_config=TrainConfig(epochs=1, hidden_dim=16, seed=1),
        )
        assert report.mode == "static-cache"
        assert report.hit_tracker is not None
        assert len(report.prefetch_init) == report.world_size


class TestEngineIsPipelineDriven:
    def test_accuracy_close_across_pipelines(self, small_dataset):
        """Section V: the data path must not change what the model learns.

        Consecutive runs on a shared cluster draw fresh sampler RNG (as in the
        seed implementation), so accuracies match closely rather than exactly;
        exact step-identity is asserted in :class:`TestShimEquivalence` via
        freshly built clusters.
        """
        cluster = SimCluster(small_dataset, ClusterConfig(**CLUSTER_KW))
        engine = TrainingEngine(cluster, TrainConfig(**TRAIN))
        baseline = engine.run_pipeline("baseline")
        prefetch = engine.run_pipeline("prefetch", prefetch_config=PrefetchConfig(**PREFETCH))
        static = engine.run_pipeline("static-cache", prefetch_config=PrefetchConfig(**PREFETCH))
        assert abs(baseline.final_train_accuracy - prefetch.final_train_accuracy) < 0.1
        assert abs(baseline.final_train_accuracy - static.final_train_accuracy) < 0.1
        # Every pipeline sees the same per-batch feature values, so losses land
        # in the same regime even though the sampled minibatches differ.
        assert baseline.epoch_records[-1].loss == pytest.approx(
            prefetch.epoch_records[-1].loss, rel=0.25
        )

    def test_custom_builder_callable(self, small_dataset):
        """The engine accepts any builder, not just registered names."""
        cluster = SimCluster(small_dataset, ClusterConfig(**CLUSTER_KW))
        engine = TrainingEngine(cluster, TrainConfig(epochs=1, hidden_dim=16, seed=1))

        def builder(trainer, cluster, prefetch_config=None, eviction_policy=None):
            return build_pipeline("baseline", trainer, cluster)

        report = engine.run_pipeline(builder)
        assert report.mode == "baseline"
        assert report.total_simulated_time_s > 0

    def test_unknown_pipeline_name(self, small_dataset):
        cluster = SimCluster(small_dataset, ClusterConfig(**CLUSTER_KW))
        engine = TrainingEngine(cluster, TrainConfig(epochs=1, seed=1))
        with pytest.raises(ValueError, match="unknown pipeline"):
            engine.run_pipeline("hyperloop")

    def test_static_cache_hit_rate_not_above_prefetch(self, small_dataset):
        """The scored buffer should match or beat a same-capacity static cache."""
        cluster = SimCluster(small_dataset, ClusterConfig(**CLUSTER_KW))
        engine = TrainingEngine(cluster, TrainConfig(epochs=3, hidden_dim=16, seed=1))
        prefetch = engine.run_pipeline("prefetch", prefetch_config=PrefetchConfig(**PREFETCH))
        static = engine.run_pipeline("static-cache", prefetch_config=PrefetchConfig(**PREFETCH))
        assert prefetch.hit_rate >= static.hit_rate - 0.05


class TestCLIVersion:
    def test_version_flag_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_console_entry_point_declared(self):
        from pathlib import Path

        setup_py = Path(__file__).resolve().parents[1] / "setup.py"
        text = setup_py.read_text()
        assert "console_scripts" in text
        assert "repro = repro.cli:main" in text
