"""Differential tests pinning the ClusterEngine to TrainingEngine numerics,
plus scenario-registry and cluster-telemetry coverage.

The acceptance bar for the cluster subsystem: on a homogeneous cluster the
:class:`~repro.training.cluster_engine.ClusterEngine` loop must be
**bit-identical** to :meth:`TrainingEngine.run_pipeline` — same losses, same
hit rates, same simulated times, same RPC traffic — for both the serial
(Eq. 2) and overlapped (Eqs. 3-5) pipelines.  Equivalence is checked on
freshly built clusters because sampler/seed RNG streams are stateful across
runs on a shared cluster.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.config import PrefetchConfig
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.graph.partition import skewed_partition
from repro.scenarios import SCENARIOS, available_scenarios, build_scenario
from repro.training.cluster_engine import ClusterEngine
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine

CLUSTER_KW = dict(batch_size=64, fanouts=(5, 10), seed=7)
PREFETCH = dict(halo_fraction=0.35, gamma=0.995, delta=8)
TRAIN = dict(epochs=2, hidden_dim=32, seed=1)


def _assert_bit_identical(reference, cluster_report):
    """Losses, hit rates, simulated times, and traffic must match exactly."""
    report = cluster_report.report
    assert [r.loss for r in reference.epoch_records] == [r.loss for r in report.epoch_records]
    assert [r.train_accuracy for r in reference.epoch_records] == [
        r.train_accuracy for r in report.epoch_records
    ]
    assert reference.total_simulated_time_s == report.total_simulated_time_s
    assert [r.simulated_time_s for r in reference.epoch_records] == [
        r.simulated_time_s for r in report.epoch_records
    ]
    assert reference.component_breakdown == report.component_breakdown
    assert reference.per_trainer_breakdown == report.per_trainer_breakdown
    assert reference.rpc_stats.as_dict() == report.rpc_stats.as_dict()
    assert reference.num_minibatches == report.num_minibatches
    assert reference.hit_rate == report.hit_rate
    assert [r.hit_rate for r in reference.epoch_records] == [
        r.hit_rate for r in report.epoch_records
    ]
    assert reference.prefetch_init == report.prefetch_init
    assert reference.overlap_efficiency == report.overlap_efficiency


class TestDifferentialEquivalence:
    """A homogeneous ClusterEngine run must reproduce run_pipeline bit-for-bit."""

    @pytest.mark.parametrize("pipeline", ["baseline", "prefetch"])
    def test_1x1_cluster_matches_run_pipeline(self, small_dataset, pipeline):
        """The issue's acceptance case: 1 machine x 1 trainer, serial and overlapped."""
        kwargs = {} if pipeline == "baseline" else {
            "prefetch_config": PrefetchConfig(**PREFETCH)
        }
        config = ClusterConfig(num_machines=1, trainers_per_machine=1, **CLUSTER_KW)
        reference = TrainingEngine(
            SimCluster(small_dataset, config), TrainConfig(**TRAIN)
        ).run_pipeline(pipeline, **kwargs)
        cluster_report = ClusterEngine(
            SimCluster(small_dataset, config), TrainConfig(**TRAIN)
        ).run(pipeline, **kwargs)
        _assert_bit_identical(reference, cluster_report)
        # A single trainer never waits for peers and is its own critical path.
        assert cluster_report.total_barrier_wait_s == 0.0
        assert cluster_report.critical_path_time_s == reference.total_simulated_time_s
        assert cluster_report.load_imbalance == 1.0

    @pytest.mark.parametrize("pipeline", ["baseline", "prefetch"])
    def test_2x2_cluster_matches_run_pipeline(self, small_dataset, pipeline):
        """Stronger than required: multi-trainer barriers must also be exact."""
        kwargs = {} if pipeline == "baseline" else {
            "prefetch_config": PrefetchConfig(**PREFETCH)
        }
        config = ClusterConfig(num_machines=2, trainers_per_machine=2, **CLUSTER_KW)
        reference = TrainingEngine(
            SimCluster(small_dataset, config), TrainConfig(**TRAIN)
        ).run_pipeline(pipeline, **kwargs)
        cluster_report = ClusterEngine(
            SimCluster(small_dataset, config), TrainConfig(**TRAIN)
        ).run(pipeline, **kwargs)
        _assert_bit_identical(reference, cluster_report)

    def test_explicit_unit_multipliers_are_exact(self, small_dataset):
        """compute_multipliers=(1.0, 1.0) must not perturb a single bit."""
        base = ClusterConfig(num_machines=2, trainers_per_machine=2, **CLUSTER_KW)
        unit = ClusterConfig(
            num_machines=2, trainers_per_machine=2,
            compute_multipliers=(1.0, 1.0), **CLUSTER_KW
        )
        reference = TrainingEngine(
            SimCluster(small_dataset, base), TrainConfig(**TRAIN)
        ).run_pipeline("baseline")
        cluster_report = ClusterEngine(
            SimCluster(small_dataset, unit), TrainConfig(**TRAIN)
        ).run("baseline")
        _assert_bit_identical(reference, cluster_report)


class TestClusterTelemetry:
    @pytest.fixture(scope="class")
    def cluster_report(self, small_dataset):
        config = ClusterConfig(num_machines=2, trainers_per_machine=2, **CLUSTER_KW)
        engine = ClusterEngine(SimCluster(small_dataset, config), TrainConfig(**TRAIN))
        return engine.run("prefetch", prefetch_config=PrefetchConfig(**PREFETCH))

    def test_trainer_stats_cover_world(self, cluster_report):
        assert len(cluster_report.trainer_stats) == 4
        assert [t.global_rank for t in cluster_report.trainer_stats] == [0, 1, 2, 3]
        for t in cluster_report.trainer_stats:
            assert t.num_steps > 0
            assert t.simulated_time_s > 0
            assert 0.0 <= (t.hit_rate or 0.0) <= 1.0
            assert t.busy_time_s == pytest.approx(
                t.simulated_time_s - t.barrier_wait_s
            )

    def test_critical_path_is_max_trainer_time(self, cluster_report):
        times = [t.simulated_time_s for t in cluster_report.trainer_stats]
        assert cluster_report.critical_path_time_s == max(times)
        critical = cluster_report.trainer_stats[cluster_report.critical_trainer_rank]
        assert critical.simulated_time_s == max(times)
        # Synchronous DDP: the run ends when the slowest trainer does.
        assert cluster_report.report.total_simulated_time_s == pytest.approx(
            cluster_report.critical_path_time_s
        )

    def test_rpc_totals_match_report(self, cluster_report):
        assert cluster_report.total_rpc_bytes == cluster_report.report.rpc_stats.bytes_fetched
        assert cluster_report.total_rpc_requests == cluster_report.report.rpc_stats.requests

    def test_store_summary_aggregates_sources(self, cluster_report):
        summary = cluster_report.store_summary
        assert summary  # local.* and halo.* keys present
        assert any(key.startswith("local.") for key in summary)
        assert any(key.startswith("halo.") for key in summary)

    def test_as_dict_is_json_serializable(self, cluster_report):
        import json

        dump = json.loads(json.dumps(cluster_report.as_dict()))
        assert dump["num_machines"] == 2
        assert len(dump["trainers"]) == 4
        assert len(dump["losses"]) == TRAIN["epochs"]

    def test_machine_times(self, cluster_report):
        times = cluster_report.machine_times()
        assert sorted(times) == [0, 1]
        for machine, t in times.items():
            expected = max(
                s.simulated_time_s for s in cluster_report.trainer_stats
                if s.machine == machine
            )
            assert t == expected


class TestHeterogeneousCluster:
    def test_straggler_machine_burns_more_ddp_time(self, small_dataset):
        config = ClusterConfig(
            num_machines=2, trainers_per_machine=2,
            compute_multipliers=(3.0, 1.0), **CLUSTER_KW
        )
        report = ClusterEngine(
            SimCluster(small_dataset, config), TrainConfig(**TRAIN)
        ).run("baseline")
        slow = [t for t in report.trainer_stats if t.machine == 0]
        fast = [t for t in report.trainer_stats if t.machine == 1]
        assert all(t.compute_multiplier == 3.0 for t in slow)
        # Serial accounting (Eq. 2) puts DDP compute on the critical path, so
        # the slow machine's trainers must show strictly more ddp time per step.
        slow_ddp = np.mean([t.components["ddp"] / t.num_steps for t in slow])
        fast_ddp = np.mean([t.components["ddp"] / t.num_steps for t in fast])
        assert slow_ddp > 1.5 * fast_ddp
        # Everyone still ends at the same barrier-synchronized time.
        times = {round(t.simulated_time_s, 12) for t in report.trainer_stats}
        assert len(times) == 1

    def test_multiplier_validation(self):
        with pytest.raises(ValueError, match="one entry per machine"):
            ClusterConfig(num_machines=2, compute_multipliers=(1.0,))
        with pytest.raises(ValueError):
            ClusterConfig(num_machines=2, compute_multipliers=(1.0, -2.0))

    def test_seed_coverage_validated_at_init(self, small_dataset):
        config = ClusterConfig(num_machines=2, trainers_per_machine=2, **CLUSTER_KW)
        cluster = SimCluster(small_dataset, config)
        cluster.validate_seed_coverage()  # sane cluster passes
        # Corrupt one trainer's assignment: duplicate another trainer's seeds.
        cluster.trainers[0].seeds_local = cluster.trainers[1].seeds_local
        with pytest.raises(ValueError, match="seed partitioning"):
            ClusterEngine(cluster, TrainConfig(**TRAIN))


class TestScenarioRegistry:
    def test_registered_names(self):
        assert available_scenarios() == [
            "async-staleness", "cache-churn", "cascading-failure",
            "congested-link", "diurnal-cache-drift", "flash-crowd-burst",
            "hot-halo", "hot-set-drift", "rolling-upgrade", "scale-out-burst",
            "skewed-partitions", "steady-poisson", "straggler-machine",
            "trainer-flaky", "uniform",
        ]
        assert available_scenarios(engine="serving") == [
            "diurnal-cache-drift", "flash-crowd-burst", "steady-poisson",
        ]
        assert "nominal" in SCENARIOS       # alias
        assert "straggler" in SCENARIOS     # alias
        assert "drift" in SCENARIOS         # alias
        assert "churn" in SCENARIOS         # alias
        assert "staleness" in SCENARIOS     # alias
        assert "flaky" in SCENARIOS         # alias
        assert "congestion" in SCENARIOS    # alias

    def test_unknown_scenario_lists_valid_names(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("chaos-monkey")

    def test_skewed_partition_sizes_are_geometric(self, small_dataset):
        result = skewed_partition(small_dataset.graph, 4, seed=0, skew=0.6)
        sizes = result.sizes()
        assert sizes.sum() == small_dataset.num_nodes
        assert all(sizes[i] > sizes[i + 1] for i in range(3))
        assert result.stats["balance"] > 1.3  # deliberately imbalanced

    def test_skewed_scenario_runs_and_skews_steps(self):
        workload = build_scenario(
            "skewed-partitions", seed=0, scale=0.05,
            train_config=TrainConfig(epochs=1, hidden_dim=16, seed=0),
        )
        report = workload.run()
        steps = {}
        for t in report.trainer_stats:
            steps.setdefault(t.machine, 0)
            steps[t.machine] += t.num_steps
        # Machine 0 owns the big partition: its trainers run more minibatches.
        assert steps[0] >= steps[1]

    def test_override_resizes_multipliers(self):
        scenario = SCENARIOS.build("straggler-machine")
        resized = scenario.with_overrides(num_machines=4)
        assert resized.compute_multipliers == (2.5, 1.0, 1.0, 1.0)
        shrunk = scenario.with_overrides(num_machines=1)
        assert shrunk.compute_multipliers == (2.5,)

    def test_scenario_report_carries_name(self):
        workload = build_scenario(
            "uniform", seed=0, scale=0.05,
            train_config=TrainConfig(epochs=1, hidden_dim=16, seed=0),
        )
        report = workload.run()
        assert report.scenario == "uniform"
        assert report.summary()["scenario"] == "uniform"


class TestClusterCLI:
    def test_run_cluster_scenario_end_to_end(self, capsys, tmp_path):
        code = cli_main([
            "run", "--cluster", "--scenario", "skewed-partitions",
            "--scale", "0.05", "--epochs", "1", "--trace-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "skewed-partitions" in out
        assert "critical path" in out
        assert (tmp_path / "cluster_skewed-partitions.json").exists()

    def test_scenarios_command_lists_all(self, capsys):
        assert cli_main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in available_scenarios():
            assert name in out
