"""Tests for the look-ahead minibatch queue and its timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lookahead import (
    LookaheadQueue,
    lookahead_benefit,
    simulate_lookahead,
    steady_state_step_time,
)


class TestLookaheadQueue:
    def test_submit_and_pop_ready(self):
        queue = LookaheadQueue(capacity=1)
        queue.submit("mb1", prepare_time=1.0, now=0.0)
        payload, stall = queue.pop(now=2.0)
        assert payload == "mb1"
        assert stall == 0.0

    def test_pop_stalls_when_not_ready(self):
        queue = LookaheadQueue(capacity=1)
        queue.submit("mb1", prepare_time=3.0, now=0.0)
        _, stall = queue.pop(now=1.0)
        assert stall == pytest.approx(2.0)
        assert queue.stats.total_stall == pytest.approx(2.0)

    def test_capacity_enforced(self):
        queue = LookaheadQueue(capacity=1)
        queue.submit("a", 1.0, 0.0)
        assert queue.is_full
        with pytest.raises(RuntimeError):
            queue.submit("b", 1.0, 0.0)

    def test_pop_empty_raises(self):
        with pytest.raises(RuntimeError):
            LookaheadQueue().pop(0.0)

    def test_single_worker_serializes_preparations(self):
        queue = LookaheadQueue(capacity=2, workers=1)
        queue.submit("a", 2.0, now=0.0)
        queue.submit("b", 2.0, now=0.0)
        assert queue.peek_ready_at() == pytest.approx(2.0)
        queue.pop(now=10.0)
        # Second preparation could only start after the first finished.
        assert queue.peek_ready_at() == pytest.approx(4.0)

    def test_two_workers_overlap_preparations(self):
        queue = LookaheadQueue(capacity=2, workers=2)
        queue.submit("a", 2.0, now=0.0)
        queue.submit("b", 2.0, now=0.0)
        queue.pop(now=10.0)
        assert queue.peek_ready_at() == pytest.approx(2.0)

    def test_stats_track_depth_and_pops(self):
        queue = LookaheadQueue(capacity=3, workers=3)
        for name in "abc":
            queue.submit(name, 1.0, 0.0)
        assert queue.stats.max_queue_depth == 3
        queue.pop(5.0)
        queue.pop(5.0)
        assert queue.stats.pops == 2
        assert queue.stats.mean_stall == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LookaheadQueue(capacity=0)
        with pytest.raises(ValueError):
            LookaheadQueue().submit("x", -1.0, 0.0)


class TestSteadyStateFormula:
    def test_matches_eq5_for_single_lookahead(self):
        assert steady_state_step_time(2.0, 3.0, lookahead=1) == 3.0
        assert steady_state_step_time(4.0, 3.0, lookahead=1) == 4.0

    def test_deeper_lookahead_divides_preparation(self):
        assert steady_state_step_time(4.0, 1.0, lookahead=4) == 1.0
        assert steady_state_step_time(4.0, 1.0, lookahead=2) == 2.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            steady_state_step_time(-1.0, 1.0)
        with pytest.raises(ValueError):
            steady_state_step_time(1.0, 1.0, lookahead=0)


class TestSimulation:
    def test_empty_run(self):
        total, stats = simulate_lookahead([], [])
        assert total == 0.0 and stats.pops == 0

    def test_perfect_overlap_total(self):
        # prepare 1s, train 2s -> after the first prepare, training dominates.
        total, stats = simulate_lookahead([1.0] * 10, [2.0] * 10, lookahead=1)
        assert total == pytest.approx(1.0 + 10 * 2.0)
        assert stats.total_stall == 0.0

    def test_preparation_bound_total(self):
        # prepare 3s, train 1s with lookahead=1 -> steady state bound by preparation.
        total, _ = simulate_lookahead([3.0] * 10, [1.0] * 10, lookahead=1)
        expected_steady = steady_state_step_time(3.0, 1.0, 1)
        assert total == pytest.approx(3.0 + 1.0 + 9 * expected_steady, rel=0.05)

    def test_deeper_lookahead_reduces_preparation_bound_time(self):
        shallow, _ = simulate_lookahead([3.0] * 20, [1.0] * 20, lookahead=1)
        deep, _ = simulate_lookahead([3.0] * 20, [1.0] * 20, lookahead=3)
        assert deep < shallow

    def test_deeper_lookahead_never_helps_when_training_bound(self):
        shallow, _ = simulate_lookahead([1.0] * 20, [2.0] * 20, lookahead=1)
        deep, _ = simulate_lookahead([1.0] * 20, [2.0] * 20, lookahead=4)
        assert deep == pytest.approx(shallow)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            simulate_lookahead([1.0], [1.0, 2.0])

    def test_lookahead_benefit_monotone_nonincreasing(self):
        results = lookahead_benefit(4.0, 1.0, max_lookahead=4, num_steps=50)
        times = [t for _, t in results]
        assert all(times[i + 1] <= times[i] + 1e-9 for i in range(len(times) - 1))
        assert [k for k, _ in results] == [1, 2, 3, 4]

    @given(
        st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=30),
        st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=30),
        st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_total_time_bounds(self, prepares, trains, lookahead):
        """Property: total time is at least the training-only lower bound and at
        most the fully serialized upper bound."""
        n = min(len(prepares), len(trains))
        prepares, trains = prepares[:n], trains[:n]
        total, _ = simulate_lookahead(prepares, trains, lookahead=lookahead)
        lower = sum(trains) + prepares[0]
        upper = sum(trains) + sum(prepares) + 1e-9
        assert lower - 1e-9 <= total <= upper
