"""Differential, determinism, and behavior tests for the event-driven engine.

Three pillars:

* **bit-identity** — ``AsyncClusterEngine`` with ``sync="allreduce-barrier"``
  must reproduce the lockstep :class:`ClusterEngine` exactly (losses, clocks,
  barrier waits, RPC wire counters) on the golden 2x2 workload;
* **determinism** — same seed + schedule ⇒ identical event pop order and
  identical ``ClusterReport`` across runs, with event-loop ties broken by
  ``(timestamp, rank)``; the ``trainer-flaky`` failure replay is bit-identical;
* **semantics** — bounded staleness strictly reduces the straggler critical
  path and bounds how far trainers diverge; local SGD averages replicas at
  sync points; the lockstep engine rejects async-only knobs.
"""

import json

import numpy as np
import pytest

from repro.core.config import PrefetchConfig
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.events.schedule import CongestionSpec, FailureSpec
from repro.events.sync import SYNC_POLICIES
from repro.graph.datasets import load_dataset
from repro.scenarios import build_scenario
from repro.training.async_engine import AsyncClusterEngine
from repro.training.cluster_engine import ClusterEngine
from repro.training.config import TrainConfig
from repro.training.engines import ENGINES, build_engine, sync_policy_options

PREFETCH = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=8)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("products", scale=0.05, seed=5)


def make_cluster(dataset, **overrides):
    kwargs = dict(num_machines=2, trainers_per_machine=2, batch_size=64,
                  fanouts=(5, 10), seed=7)
    kwargs.update(overrides)
    return SimCluster(dataset, ClusterConfig(**kwargs))


def run_async(dataset, sync="allreduce-barrier", sync_options=None, cluster_kwargs=None,
              train_kwargs=None, failures=None, record_events=False, pipeline="prefetch"):
    cluster = make_cluster(dataset, **(cluster_kwargs or {}))
    config = TrainConfig(epochs=2, hidden_dim=32, seed=1, **(train_kwargs or {}))
    engine = AsyncClusterEngine(cluster, config, sync=sync, sync_options=sync_options,
                                failures=failures, record_events=record_events)
    report = engine.run(pipeline, prefetch_config=PREFETCH)
    return engine, report


def canonical(report, drop_engine_keys=False):
    """JSON round-trip of the report dump (drops wall-clock noise)."""
    data = json.loads(json.dumps(report.as_dict(), sort_keys=True))
    if drop_engine_keys:
        data.pop("engine", None)
        data.pop("sync", None)
    return data


# --------------------------------------------------------------------------- #
# Bit-identity of the allreduce-barrier policy vs. the lockstep engine
# --------------------------------------------------------------------------- #
class TestBarrierBitIdentity:
    def test_golden_2x2_workload_bit_identical(self, dataset):
        lock = ClusterEngine(make_cluster(dataset), TrainConfig(epochs=2, hidden_dim=32, seed=1))
        lock_report = lock.run("prefetch", prefetch_config=PREFETCH)
        _, async_report = run_async(dataset)
        assert canonical(async_report, drop_engine_keys=True) == canonical(lock_report)

    def test_losses_and_wire_counters_exact(self, dataset):
        lock = ClusterEngine(make_cluster(dataset), TrainConfig(epochs=2, hidden_dim=32, seed=1))
        lock_report = lock.run("prefetch", prefetch_config=PREFETCH)
        _, async_report = run_async(dataset)
        assert lock_report.report.loss_history == async_report.report.loss_history
        for a, b in zip(lock_report.trainer_stats, async_report.trainer_stats):
            assert a.rpc_stats == b.rpc_stats
            assert a.simulated_time_s == b.simulated_time_s
            assert a.barrier_wait_s == b.barrier_wait_s
            assert b.sync_stats == {}  # barrier adds no async extras

    def test_bit_identical_on_straggler_cluster(self, dataset):
        hetero = {"compute_multipliers": (2.5, 1.0)}
        lock = ClusterEngine(
            make_cluster(dataset, **hetero), TrainConfig(epochs=2, hidden_dim=32, seed=1)
        )
        lock_report = lock.run("prefetch", prefetch_config=PREFETCH)
        _, async_report = run_async(dataset, cluster_kwargs=hetero)
        assert canonical(async_report, drop_engine_keys=True) == canonical(lock_report)

    def test_bit_identical_with_step_cap(self, dataset):
        cap = {"max_steps_per_epoch": 2}
        lock = ClusterEngine(
            make_cluster(dataset), TrainConfig(epochs=2, hidden_dim=32, seed=1, **cap)
        )
        lock_report = lock.run("prefetch", prefetch_config=PREFETCH)
        _, async_report = run_async(dataset, train_kwargs=cap)
        assert canonical(async_report, drop_engine_keys=True) == canonical(lock_report)

    def test_bit_identical_on_batched_rpc_channel(self, dataset):
        """The owner-coalescing window is shared machine-wide state, so this
        pins two things at once: the barrier policy's rank-ordered round
        execution and the engine opening each step's window before the
        pipeline's fetch (both regressions would show up as swapped wire
        counters)."""
        batched = {"rpc": "batched"}
        lock = ClusterEngine(
            make_cluster(dataset, **batched), TrainConfig(epochs=2, hidden_dim=32, seed=1)
        )
        lock_report = lock.run("prefetch", prefetch_config=PREFETCH)
        _, async_report = run_async(dataset, cluster_kwargs=batched)
        assert canonical(async_report, drop_engine_keys=True) == canonical(lock_report)

    def test_baseline_pipeline_bit_identical(self, dataset):
        lock = ClusterEngine(make_cluster(dataset), TrainConfig(epochs=2, hidden_dim=32, seed=1))
        lock_report = lock.run("baseline")
        cluster = make_cluster(dataset)
        async_report = AsyncClusterEngine(
            cluster, TrainConfig(epochs=2, hidden_dim=32, seed=1)
        ).run("baseline")
        assert canonical(async_report, drop_engine_keys=True) == canonical(lock_report)

    def test_report_tagged_with_engine_and_sync(self, dataset):
        _, report = run_async(dataset)
        assert report.engine == "async"
        assert report.sync == "allreduce-barrier"
        assert report.summary()["engine"] == "async"
        assert report.as_dict()["engine"] == "async"

    def test_lockstep_report_has_no_engine_keys(self, dataset):
        lock = ClusterEngine(make_cluster(dataset), TrainConfig(epochs=1, hidden_dim=32, seed=1))
        report = lock.run("prefetch", prefetch_config=PREFETCH)
        assert report.engine is None
        assert "engine" not in report.as_dict()
        assert "engine" not in report.summary()


# --------------------------------------------------------------------------- #
# Event-order determinism
# --------------------------------------------------------------------------- #
class TestDeterminism:
    def test_same_seed_identical_event_order_and_report(self, dataset):
        runs = [
            run_async(dataset, sync="bounded-staleness", sync_options={"staleness": 2},
                      cluster_kwargs={"compute_multipliers": (2.5, 1.0)},
                      record_events=True)
            for _ in range(2)
        ]
        (eng_a, rep_a), (eng_b, rep_b) = runs
        assert eng_a.event_history == eng_b.event_history
        assert canonical(rep_a) == canonical(rep_b)

    def test_event_history_nonempty_and_typed(self, dataset):
        engine, _ = run_async(dataset, record_events=True)
        kinds = {kind for kind, *_ in engine.event_history}
        assert kinds == {"step-ready", "step-done"}

    def test_ties_broken_by_rank_in_history(self, dataset):
        engine, _ = run_async(dataset, record_events=True)
        history = engine.event_history
        # Simulated time never runs backwards.
        for (_, t1, _, _), (_, t2, _, _) in zip(history, history[1:]):
            assert t1 <= t2, "event timestamps must be non-decreasing"
        # Heap invariant: if event b popped after event a but was pushed
        # before a popped (seq_b < seq_a ⇒ the two were co-pending), then a
        # must sort strictly below b on (timestamp, rank, seq) — rank is the
        # tie-break at equal timestamps.  (The direct rank tie-break unit
        # test lives in test_event_loop.py; barrier releases push in rank
        # order, so seq inversions at equal timestamps don't arise here.)
        for i, (_, t_a, r_a, s_a) in enumerate(history):
            for _, t_b, r_b, s_b in history[i + 1:]:
                if s_b < s_a:
                    assert (t_a, r_a, s_a) < (t_b, r_b, s_b), (
                        "co-pending events must pop in (timestamp, rank, seq) order"
                    )
        # Barrier releases do produce simultaneous events: ties must exist.
        times = [t for _, t, _, _ in history]
        assert len(times) != len(set(times)), "a barrier run must contain timestamp ties"

    def test_flaky_replay_bit_identical(self, dataset):
        spec = FailureSpec(rate=0.1)
        runs = [
            run_async(dataset, sync="bounded-staleness", sync_options={"staleness": 3},
                      failures=spec, record_events=True)
            for _ in range(2)
        ]
        (eng_a, rep_a), (eng_b, rep_b) = runs
        assert eng_a.event_history == eng_b.event_history
        assert canonical(rep_a) == canonical(rep_b)
        kinds = {kind for kind, *_ in eng_a.event_history}
        assert "fail" in kinds and "recover" in kinds
        total_failures = sum(
            t.sync_stats.get("failures", 0.0) for t in rep_a.trainer_stats
        )
        assert total_failures >= 1
        total_downtime = sum(
            t.sync_stats.get("downtime_s", 0.0) for t in rep_a.trainer_stats
        )
        assert total_downtime > 0
        downtime_ledger = sum(
            t.components.get("downtime", 0.0) for t in rep_a.trainer_stats
        )
        assert downtime_ledger == pytest.approx(total_downtime)

    def test_different_failure_seed_changes_run(self, dataset):
        spec = FailureSpec(rate=0.1)
        _, rep_a = run_async(dataset, failures=spec,
                             cluster_kwargs={"seed": 7})
        _, rep_b = run_async(dataset, failures=spec,
                             cluster_kwargs={"seed": 8})
        assert canonical(rep_a) != canonical(rep_b)


# --------------------------------------------------------------------------- #
# Sync-policy semantics
# --------------------------------------------------------------------------- #
class TestBoundedStaleness:
    def test_strictly_reduces_straggler_critical_path(self, dataset):
        hetero = {"compute_multipliers": (2.5, 1.0)}
        lock = ClusterEngine(
            make_cluster(dataset, **hetero), TrainConfig(epochs=2, hidden_dim=32, seed=1)
        ).run("prefetch", prefetch_config=PREFETCH)
        _, stale = run_async(dataset, sync="bounded-staleness",
                             sync_options={"staleness": 2}, cluster_kwargs=hetero)
        assert stale.critical_path_time_s < lock.critical_path_time_s
        assert stale.total_barrier_wait_s <= lock.total_barrier_wait_s

    def test_hidden_sync_time_recorded(self, dataset):
        _, report = run_async(dataset, sync="bounded-staleness",
                              sync_options={"staleness": 1})
        hidden = sum(t.sync_stats.get("hidden_sync_time_s", 0.0)
                     for t in report.trainer_stats)
        assert hidden > 0

    def test_same_minibatch_count_as_lockstep(self, dataset):
        lock = ClusterEngine(
            make_cluster(dataset), TrainConfig(epochs=2, hidden_dim=32, seed=1)
        ).run("prefetch", prefetch_config=PREFETCH)
        _, stale = run_async(dataset, sync="bounded-staleness",
                             sync_options={"staleness": 4})
        assert stale.report.num_minibatches == lock.report.num_minibatches

    def test_staleness_zero_matches_barrier_losses(self, dataset):
        """K=0 serializes rounds exactly like BSP, so the numerics coincide."""
        _, barrier = run_async(dataset)
        _, ssp0 = run_async(dataset, sync="bounded-staleness", sync_options={"staleness": 0})
        assert barrier.report.loss_history == ssp0.report.loss_history

    def test_invalid_staleness_rejected(self):
        with pytest.raises(ValueError):
            SYNC_POLICIES.build("bounded-staleness", staleness=-1)


class TestLocalSGD:
    def test_runs_and_averages(self, dataset):
        engine, report = run_async(dataset, sync="local-sgd",
                                   sync_options={"sync_period": 2})
        averages = sum(t.sync_stats.get("model_averages", 0.0)
                       for t in report.trainer_stats)
        assert averages > 0
        assert report.sync == "local-sgd(H=2)"
        assert 0.0 <= report.report.final_train_accuracy <= 1.0

    def test_determinism(self, dataset):
        reports = [
            run_async(dataset, sync="local-sgd", sync_options={"sync_period": 4})[1]
            for _ in range(2)
        ]
        assert canonical(reports[0]) == canonical(reports[1])

    def test_final_model_is_consensus(self, dataset):
        engine, _ = run_async(dataset, sync="local-sgd", sync_options={"sync_period": 4})
        model = engine.final_model
        # After on_run_end every replica equals the averaged parameters.
        policy_free_params = model.state_dict()
        assert all(np.all(np.isfinite(v)) for v in policy_free_params.values())

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            SYNC_POLICIES.build("local-sgd", sync_period=0)


class TestCongestion:
    def test_congestion_inflates_critical_path(self, dataset):
        _, clear = run_async(dataset)
        _, congested = run_async(
            dataset,
            cluster_kwargs={"congestion": CongestionSpec(latency_multiplier=20.0,
                                                         bandwidth_divisor=8.0)},
        )
        assert congested.critical_path_time_s > clear.critical_path_time_s

    def test_congested_run_deterministic(self, dataset):
        kwargs = {"congestion": CongestionSpec()}
        reports = [run_async(dataset, cluster_kwargs=kwargs)[1] for _ in range(2)]
        assert canonical(reports[0]) == canonical(reports[1])


# --------------------------------------------------------------------------- #
# ENGINES registry and scenario integration
# --------------------------------------------------------------------------- #
class TestEnginesRegistry:
    def test_names(self):
        assert set(ENGINES.names()) == {"lockstep", "async", "serving"}

    def test_lockstep_rejects_async_sync(self, dataset):
        cluster = make_cluster(dataset)
        config = TrainConfig(epochs=1, hidden_dim=32, seed=1)
        with pytest.raises(ValueError, match="event-driven"):
            build_engine("lockstep", cluster, config, sync="bounded-staleness")

    def test_lockstep_rejects_failures(self, dataset):
        cluster = make_cluster(dataset)
        config = TrainConfig(epochs=1, hidden_dim=32, seed=1)
        with pytest.raises(ValueError, match="event-driven"):
            build_engine("lockstep", cluster, config, failures=FailureSpec())

    def test_sync_policy_options_routing(self):
        assert sync_policy_options("bounded-staleness", staleness=3) == {"staleness": 3}
        assert sync_policy_options("local-sgd", sync_period=8) == {"sync_period": 8}
        assert sync_policy_options("allreduce-barrier", staleness=3, sync_period=8) == {}

    def test_async_scenarios_materialize_async_engines(self):
        for name in ("async-staleness", "trainer-flaky", "congested-link"):
            workload = build_scenario(name, scale=0.05)
            assert isinstance(workload.engine, AsyncClusterEngine), name

    def test_async_scenarios_run_deterministically(self):
        dumps = [
            canonical(build_scenario("trainer-flaky", scale=0.05, epochs=1).run())
            for _ in range(2)
        ]
        assert dumps[0] == dumps[1]

    def test_unknown_engine_lists_valid_names(self, dataset):
        cluster = make_cluster(dataset)
        config = TrainConfig(epochs=1, hidden_dim=32, seed=1)
        with pytest.raises(ValueError, match="lockstep"):
            build_engine("nope", cluster, config)
