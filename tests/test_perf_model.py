"""Tests for the analytical performance model (Eqs. 2-7) and trade-off quadrants."""

import pytest

from repro.core.config import PrefetchConfig
from repro.perf import model as pm
from repro.perf import tradeoffs as tr


def comp(**kwargs):
    defaults = dict(t_sampling=0.1, t_rpc=0.5, t_copy=0.05, t_ddp=1.0, t_lookup=0.01, t_scoring=0.02)
    defaults.update(kwargs)
    return pm.StepComponents(**defaults)


class TestStepEquations:
    def test_baseline_eq2(self):
        c = comp()
        assert pm.baseline_step_time(c) == pytest.approx(0.1 + 0.5 + 1.0)

    def test_baseline_uses_max_of_rpc_copy(self):
        c = comp(t_rpc=0.1, t_copy=0.4)
        assert pm.baseline_step_time(c) == pytest.approx(0.1 + 0.4 + 1.0)

    def test_prepare_eq3(self):
        c = comp()
        assert pm.prepare_time(c) == pytest.approx(0.1 + 0.01 + max(0.02, 0.5))

    def test_prepare_scoring_dominates(self):
        c = comp(t_scoring=2.0)
        assert pm.prepare_time(c) == pytest.approx(0.1 + 0.01 + 2.0)

    def test_first_step_eq4(self):
        c = comp()
        prep = pm.prepare_time(c)
        assert pm.prefetch_first_step_time(c) == pytest.approx(prep + max(prep, c.t_ddp))

    def test_steady_step_eq5(self):
        c = comp()
        assert pm.prefetch_steady_step_time(c) == pytest.approx(max(pm.prepare_time(c), 1.0))

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            pm.baseline_step_time(comp(t_rpc=-1.0))


class TestTotalsAndSpeedups:
    def test_total_time_baseline_linear(self):
        c = comp()
        assert pm.total_time(c, 10, prefetch=False) == pytest.approx(10 * pm.baseline_step_time(c))

    def test_total_time_prefetch(self):
        c = comp()
        expected = pm.prefetch_first_step_time(c) + 9 * pm.prefetch_steady_step_time(c)
        assert pm.total_time(c, 10, prefetch=True) == pytest.approx(expected)

    def test_total_time_zero_steps(self):
        assert pm.total_time(comp(), 0, prefetch=True) == 0.0

    def test_prefetch_faster_when_overlap_possible(self):
        c = comp()  # t_prepare < t_ddp
        assert pm.total_time(c, 100, prefetch=True) < pm.total_time(c, 100, prefetch=False)

    def test_improvement_factor_eq6(self):
        c = comp(t_rpc=2.0, t_ddp=1.0)
        assert pm.improvement_factor(c) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            pm.improvement_factor(comp(t_ddp=0.0))

    def test_predicted_speedup_above_one_in_comm_bound_regime(self):
        # Baseline = 0.3 + 2.0 + 1.0 = 3.3; steady prefetch step = t_prepare = 2.31.
        c = comp(t_rpc=2.0, t_ddp=1.0, t_sampling=0.3)
        assert pm.predicted_speedup(c) == pytest.approx(3.3 / 2.31, rel=1e-2)
        assert pm.predicted_speedup(c) > 1.3

    def test_predicted_speedup_near_one_when_compute_bound(self):
        c = comp(t_rpc=0.001, t_copy=0.001, t_sampling=0.001, t_ddp=1.0)
        assert pm.predicted_speedup(c) == pytest.approx(1.0, abs=0.05)

    def test_perfect_overlap_predicate(self):
        assert pm.is_perfect_overlap(comp())                       # prepare < ddp
        assert not pm.is_perfect_overlap(comp(t_rpc=5.0))          # prepare > ddp

    def test_overlap_efficiency_range(self):
        assert pm.overlap_efficiency(comp()) == pytest.approx(1.0)
        partial = pm.overlap_efficiency(comp(t_rpc=5.0))
        assert 0.0 < partial < 1.0
        assert pm.overlap_efficiency(comp(t_sampling=0, t_rpc=0, t_copy=0, t_lookup=0, t_scoring=0)) == 1.0


class TestScoringCompounding:
    def test_eq7_paper_example(self):
        """The paper's example: 10% scoring cost, 100 epochs, delta=10 -> ~1.1^10 growth."""
        out = pm.scoring_overhead_compound(1.0, 0.10, num_epochs=100, delta=10)
        assert out == pytest.approx(1.1 ** 10)
        assert out == pytest.approx(2.5937, rel=1e-3)

    def test_eq7_monotone_in_frequency(self):
        frequent = pm.scoring_overhead_compound(1.0, 0.1, 100, delta=5)
        rare = pm.scoring_overhead_compound(1.0, 0.1, 100, delta=50)
        assert frequent > rare

    def test_eq7_invalid_inputs(self):
        with pytest.raises(ValueError):
            pm.scoring_overhead_compound(-1.0, 0.1, 10, 5)
        with pytest.raises(ValueError):
            pm.scoring_overhead_compound(1.0, -0.1, 10, 5)
        with pytest.raises(ValueError):
            pm.scoring_overhead_compound(1.0, 0.1, 10, 0)


class TestEq9AndBreakdowns:
    def test_communication_stall(self):
        assert pm.communication_stall_time(0.5, 0.2) == pytest.approx(0.3)
        assert pm.communication_stall_time(0.1, 0.2) == 0.0

    def test_components_from_breakdown(self):
        breakdown = {"sampling": 2.0, "rpc": 4.0, "copy": 1.0, "ddp": 10.0, "allreduce": 2.0,
                     "lookup": 0.5, "scoring": 0.3, "eviction": 0.2}
        c = pm.components_from_breakdown(breakdown, num_steps=2)
        assert c.t_sampling == pytest.approx(1.0)
        assert c.t_ddp == pytest.approx(6.0)
        assert c.t_scoring == pytest.approx(0.25)
        with pytest.raises(ValueError):
            pm.components_from_breakdown(breakdown, 0)


class TestTradeoffQuadrants:
    def test_four_quadrants_distinct(self):
        names = {
            tr.classify_quadrant(g, d).name
            for g, d in [(0.99, 16), (0.5, 16), (0.5, 512), (0.99, 512)]
        }
        assert len(names) == 4

    def test_recommended_quadrant(self):
        info = tr.classify_quadrant(0.995, 512)
        assert info.name == "low-decay/long-interval"
        assert "recommended" in info.expected

    def test_classify_config(self):
        config = PrefetchConfig(gamma=0.95, delta=16)
        assert tr.classify_config(config).name == "low-decay/short-interval"

    def test_expected_behaviour_string(self):
        assert isinstance(tr.expected_behaviour(0.5, 16), str)

    def test_quadrant_configs_cover_all(self):
        configs = tr.quadrant_configs()
        assert set(configs) == set(tr.QUADRANTS)
        for name, config in configs.items():
            assert tr.classify_config(config).name == name

    def test_rank_quadrants(self):
        ranked = tr.rank_quadrants_by_hit_rate({"a": 0.2, "b": 0.9, "c": 0.5})
        assert ranked == ["b", "c", "a"]

    def test_eviction_rounds_per_epoch(self):
        assert tr.eviction_rounds_per_epoch(100, 16) == 6
        assert tr.eviction_rounds_per_epoch(10, 16) == 0
        with pytest.raises(ValueError):
            tr.eviction_rounds_per_epoch(10, 0)
