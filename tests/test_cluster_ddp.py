"""Tests for the simulated cluster and DDP gradient synchronization."""

import numpy as np
import pytest

from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.cost_model import CostModel
from repro.distributed.ddp import (
    allreduce_gradients,
    allreduce_time,
    check_replicas_consistent,
    gradient_num_elements,
)


class TestClusterConfig:
    def test_world_size(self):
        assert ClusterConfig(num_machines=4, trainers_per_machine=4).world_size == 16

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            ClusterConfig(backend="tpu")

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_machines=0)


class TestSimCluster:
    def test_trainer_count(self, small_cluster):
        assert len(small_cluster.trainers) == small_cluster.config.world_size

    def test_one_partition_per_machine(self, small_cluster):
        assert len(small_cluster.partitions) == small_cluster.config.num_machines
        for trainer in small_cluster.trainers:
            assert trainer.partition.part_id == trainer.machine

    def test_trainer_seeds_are_owned_train_nodes(self, small_cluster, small_dataset):
        for trainer in small_cluster.trainers:
            owned = trainer.partition.owned_global
            seed_globals = owned[trainer.seeds_local]
            assert np.all(small_dataset.train_mask[seed_globals])

    def test_trainers_split_seeds_disjointly(self, small_cluster):
        by_machine = {}
        for trainer in small_cluster.trainers:
            by_machine.setdefault(trainer.machine, []).append(trainer.seeds_local)
        for machine, seed_lists in by_machine.items():
            allseeds = np.concatenate(seed_lists)
            assert len(np.unique(allseeds)) == len(allseeds)

    def test_servers_cover_all_features(self, small_cluster, small_dataset):
        total_rows = sum(s.num_rows for s in small_cluster.servers.values())
        assert total_rows == small_dataset.num_nodes

    def test_summary_keys(self, small_cluster):
        summary = small_cluster.summary()
        for key in ("num_machines", "world_size", "avg_remote_nodes_per_trainer", "minibatches_per_trainer"):
            assert key in summary

    def test_reset_clears_state(self, small_cluster):
        trainer = small_cluster.trainers[0]
        trainer.clock.advance(1.0, "rpc")
        small_cluster.reset()
        assert trainer.clock.time == 0.0
        assert trainer.rpc.stats.nodes_fetched == 0

    def test_mismatched_partition_result_raises(self, small_dataset):
        from repro.graph.partition import metis_partition

        result = metis_partition(small_dataset.graph, 3, seed=0)
        with pytest.raises(ValueError):
            SimCluster(
                small_dataset,
                ClusterConfig(num_machines=2, trainers_per_machine=1),
                partition_result=result,
            )

    def test_gpu_backend_cost_model(self, small_dataset):
        cluster = SimCluster(
            small_dataset,
            ClusterConfig(num_machines=2, trainers_per_machine=1, backend="gpu", batch_size=64),
        )
        assert cluster.cost_model.backend == "gpu"


class TestAllreduce:
    def test_average_of_two(self):
        a = {"w": np.array([1.0, 2.0]), "b": np.array([0.0])}
        b = {"w": np.array([3.0, 4.0]), "b": np.array([2.0])}
        avg = allreduce_gradients([a, b])
        np.testing.assert_allclose(avg["w"], [2.0, 3.0])
        np.testing.assert_allclose(avg["b"], [1.0])

    def test_skips_empty_contributions(self):
        a = {"w": np.array([2.0])}
        avg = allreduce_gradients([a, {}])
        np.testing.assert_allclose(avg["w"], [2.0])

    def test_all_empty(self):
        assert allreduce_gradients([{}, {}]) == {}

    def test_mismatched_keys_raise(self):
        with pytest.raises(ValueError):
            allreduce_gradients([{"w": np.zeros(2)}, {"v": np.zeros(2)}])

    def test_gradient_num_elements(self):
        grads = {"w": np.zeros((3, 4)), "b": np.zeros(4)}
        assert gradient_num_elements(grads) == 16

    def test_allreduce_time_positive(self):
        cm = CostModel.cpu()
        assert allreduce_time(cm, 100_000, 8) > 0
        assert allreduce_time(cm, 100_000, 1) == 0.0

    def test_check_replicas_consistent(self):
        a = {"w": np.ones(3)}
        b = {"w": np.ones(3)}
        c = {"w": np.ones(3) + 1e-2}
        assert check_replicas_consistent([a, b])
        assert not check_replicas_consistent([a, c])
        assert check_replicas_consistent([a])
        assert not check_replicas_consistent([a, {"v": np.ones(3)}])
