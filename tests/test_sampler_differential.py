"""Differential tests pinning the vectorized sampler to its loop twin.

``"loop"`` and ``"vectorized"`` implement the same random-key fan-out draw;
because NumPy generators consume the stream sequentially, the vectorized
sampler's single batched ``rng.random`` call must be bit-equal to the loop's
concatenated per-node draws — identical blocks, edge indices, *and* RNG-stream
consumption.  ``"legacy"`` (the default) keeps the original ``Generator.choice``
stream so the golden fixtures stay pinned; these tests also cover the
repeated-seed regression and the duplicate-dst guard.
"""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.sampling.dataloader import DistDataLoader
from repro.sampling.neighbor_sampler import (
    SAMPLERS,
    LoopNeighborSampler,
    NeighborSampler,
    VectorizedNeighborSampler,
    build_sampler,
)

BLOCK_FIELDS = ("src_nodes", "dst_nodes", "edge_src", "edge_dst", "src_global", "dst_global")

FANOUT_GRID = [[1], [3], [-1], [2, 3], [10, 25], [-1, 4]]


def assert_minibatches_equal(a, b):
    np.testing.assert_array_equal(a.seeds_global, b.seeds_global)
    np.testing.assert_array_equal(a.input_local, b.input_local)
    np.testing.assert_array_equal(a.input_global, b.input_global)
    np.testing.assert_array_equal(a.labels, b.labels)
    assert len(a.blocks) == len(b.blocks)
    for x, y in zip(a.blocks, b.blocks):
        for field in BLOCK_FIELDS:
            np.testing.assert_array_equal(getattr(x, field), getattr(y, field), err_msg=field)


class TestSamplerRegistry:
    def test_names_and_aliases(self):
        assert set(SAMPLERS.names()) == {"legacy", "loop", "vectorized"}
        assert SAMPLERS.resolve("choice") == "legacy"
        assert SAMPLERS.resolve("reference") == "loop"
        assert SAMPLERS.resolve("fast") == "vectorized"

    def test_build_returns_right_class(self, tiny_graph):
        assert type(build_sampler("legacy", tiny_graph, [2], seed=0)) is NeighborSampler
        assert type(build_sampler("loop", tiny_graph, [2], seed=0)) is LoopNeighborSampler
        assert type(build_sampler("vectorized", tiny_graph, [2], seed=0)) is VectorizedNeighborSampler

    def test_unknown_name_lists_valid_choices(self, tiny_graph):
        with pytest.raises(ValueError, match="legacy.*loop.*vectorized"):
            build_sampler("turbo", tiny_graph, [2], seed=0)

    def test_dataloader_defaults_to_legacy(self, small_partitions):
        p = small_partitions[0]
        loader = DistDataLoader(p, np.arange(min(8, p.num_owned)), fanouts=(3,), batch_size=4, seed=0)
        assert loader.sampler_name == "legacy"
        assert type(loader.sampler) is NeighborSampler
        fast = DistDataLoader(
            p, np.arange(min(8, p.num_owned)), fanouts=(3,), batch_size=4, seed=0,
            sampler="vectorized",
        )
        assert type(fast.sampler) is VectorizedNeighborSampler


class TestLoopVectorizedDifferential:
    @pytest.mark.parametrize("fanouts", FANOUT_GRID, ids=str)
    def test_identical_blocks_and_rng_consumption(self, small_dataset, fanouts):
        graph = small_dataset.graph
        loop = build_sampler("loop", graph, fanouts, seed=123)
        fast = build_sampler("vectorized", graph, fanouts, seed=123)
        seed_rng = np.random.default_rng(5)
        for step in range(4):
            seeds = np.unique(seed_rng.integers(0, graph.num_nodes, size=40))
            a = loop.sample(seeds, step=step, labels=small_dataset.labels)
            b = fast.sample(seeds, step=step, labels=small_dataset.labels)
            assert_minibatches_equal(a, b)
            # RNG-stream consumption must match after every minibatch, not
            # just at the end — otherwise a compensating error could hide.
            assert loop.rng.bit_generator.state == fast.rng.bit_generator.state
        assert loop.rng.random() == fast.rng.random()

    @pytest.mark.parametrize("fanouts", [[2], [-1], [3, 5]], ids=str)
    def test_identical_on_partition_with_empty_neighborhoods(self, small_partitions, fanouts):
        """Halo nodes have no outgoing local edges — the empty-neighborhood path."""
        p = small_partitions[0]
        graph = p.local_graph
        assert p.num_halo > 0  # the fixture must actually exercise halo truncation
        loop = build_sampler("loop", graph, fanouts, seed=31)
        fast = build_sampler("vectorized", graph, fanouts, seed=31)
        seeds = np.arange(min(25, p.num_owned))
        for step in range(3):
            a = loop.sample(seeds, local_to_global=p.local_to_global, step=step)
            b = fast.sample(seeds, local_to_global=p.local_to_global, step=step)
            assert_minibatches_equal(a, b)
        assert loop.rng.bit_generator.state == fast.rng.bit_generator.state

    def test_isolated_seed_consumes_no_rng(self):
        graph = CSRGraph.empty(6)
        for name in ("legacy", "loop", "vectorized"):
            sampler = build_sampler(name, graph, [4], seed=9)
            before = sampler.rng.bit_generator.state
            mb = sampler.sample(np.array([0, 3]))
            assert mb.blocks[0].num_edges == 0
            np.testing.assert_array_equal(mb.blocks[0].src_nodes, mb.blocks[0].dst_nodes)
            assert sampler.rng.bit_generator.state == before

    def test_take_all_bucket_consumes_no_rng(self, tiny_graph):
        """fanout=-1 never draws, so all three samplers agree bit-for-bit."""
        batches = []
        for name in ("legacy", "loop", "vectorized"):
            sampler = build_sampler(name, tiny_graph, [-1, -1], seed=77)
            before = sampler.rng.bit_generator.state
            batches.append(sampler.sample(np.array([0, 1, 2])))
            assert sampler.rng.bit_generator.state == before
        assert_minibatches_equal(batches[0], batches[1])
        assert_minibatches_equal(batches[1], batches[2])


class TestVectorizedInvariants:
    """The vectorized sampler honors every structural invariant of the loop."""

    def test_fanout_respected(self, small_dataset):
        sampler = build_sampler("vectorized", small_dataset.graph, [3], seed=0)
        mb = sampler.sample(np.arange(20))
        assert np.all(mb.blocks[0].in_degrees() <= 3)

    def test_sampled_edges_exist_and_no_replacement(self, small_dataset):
        graph = small_dataset.graph
        sampler = build_sampler("vectorized", graph, [5], seed=1)
        mb = sampler.sample(np.arange(15))
        block = mb.blocks[0]
        for d in range(block.num_dst):
            node = int(block.dst_nodes[d])
            chosen = block.src_nodes[block.edge_src[block.edge_dst == d]]
            neigh = graph.neighbors(node)
            assert np.all(np.isin(chosen, neigh))
            assert len(np.unique(chosen)) == len(chosen)  # without replacement

    def test_dst_prefix_of_src(self, small_dataset):
        sampler = build_sampler("vectorized", small_dataset.graph, [4, 4], seed=3)
        mb = sampler.sample(np.arange(10))
        for block in mb.blocks:
            np.testing.assert_array_equal(block.src_nodes[: block.num_dst], block.dst_nodes)


class TestRepeatedSeeds:
    """Regression for the duplicate-dst edge-mapping hazard (satellite fix).

    ``sample()`` deduplicates seeds at entry, so a batch with repeated seeds
    must be indistinguishable from the deduplicated batch; passing a frontier
    with duplicates directly to ``_sample_one_layer`` now raises instead of
    silently attributing every edge to one arbitrary occurrence.
    """

    @pytest.mark.parametrize("name", ["legacy", "loop", "vectorized"])
    def test_repeated_seeds_match_unique_seeds(self, small_dataset, name):
        graph = small_dataset.graph
        repeated = np.array([7, 3, 7, 7, 12, 3, 0], dtype=np.int64)
        a = build_sampler(name, graph, [3, 4], seed=2).sample(
            repeated, labels=small_dataset.labels
        )
        b = build_sampler(name, graph, [3, 4], seed=2).sample(
            np.unique(repeated), labels=small_dataset.labels
        )
        assert_minibatches_equal(a, b)
        # Every unique seed keeps its own sampled edges — none are dropped.
        np.testing.assert_array_equal(np.sort(a.seeds_global), np.unique(repeated))
        last = a.blocks[-1]
        sampled_dst_rows = np.unique(last.edge_dst)
        has_neighbors = np.array(
            [len(graph.neighbors(int(n))) > 0 for n in last.dst_nodes]
        )
        np.testing.assert_array_equal(sampled_dst_rows, np.nonzero(has_neighbors)[0])

    @pytest.mark.parametrize("name", ["legacy", "loop", "vectorized"])
    def test_duplicate_dst_frontier_raises(self, small_dataset, name):
        sampler = build_sampler(name, small_dataset.graph, [2], seed=0)
        with pytest.raises(ValueError, match="duplicate"):
            sampler._sample_one_layer(np.array([1, 4, 1], dtype=np.int64), 2)
