"""Tests for the ASCII visualization helpers."""

import numpy as np
import pytest

from repro import viz
from repro.core.metrics import HitRateTracker
from repro.training.telemetry import TrainingReport


class TestSparkline:
    def test_length_matches_input(self):
        assert len(viz.sparkline([1, 2, 3, 4])) == 4

    def test_resampling_width(self):
        assert len(viz.sparkline(np.arange(100), width=20)) == 20

    def test_monotone_series_uses_extremes(self):
        line = viz.sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant_series(self):
        assert viz.sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_empty(self):
        assert viz.sparkline([]) == ""


class TestBarChart:
    def test_labels_and_values_present(self):
        chart = viz.horizontal_bar_chart({"a": 1.0, "bb": 2.0}, width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ") and "bb" in lines[1]
        assert "2" in lines[1]

    def test_longest_bar_is_max_value(self):
        chart = viz.horizontal_bar_chart({"x": 1.0, "y": 4.0}, width=8)
        x_line, y_line = chart.splitlines()
        assert y_line.count("█") == 8
        assert x_line.count("█") == 2

    def test_sorted_option(self):
        chart = viz.horizontal_bar_chart({"low": 1.0, "high": 9.0}, sort=True)
        assert chart.splitlines()[0].startswith("high")

    def test_empty(self):
        assert viz.horizontal_bar_chart({}) == ""


class TestStackedBreakdown:
    def test_contains_legend_percentages(self):
        out = viz.stacked_breakdown({"rpc": 3.0, "ddp": 1.0}, width=40)
        assert "rpc 75.0%" in out
        assert "ddp 25.0%" in out
        assert out.startswith("[")

    def test_small_components_filtered(self):
        out = viz.stacked_breakdown({"big": 100.0, "tiny": 0.001}, width=40)
        assert "tiny" not in out

    def test_empty_breakdown(self):
        assert "empty" in viz.stacked_breakdown({})


class TestLinePlot:
    def test_dimensions(self):
        plot = viz.line_plot({"s": np.linspace(0, 1, 30)}, height=6, width=30)
        lines = plot.splitlines()
        # 6 rows + axis + legend
        assert len(lines) == 8

    def test_multiple_series_legend(self):
        plot = viz.line_plot({"a": [1, 2], "b": [2, 1]}, height=4, width=10)
        assert "* a" in plot and "o b" in plot

    def test_empty(self):
        assert viz.line_plot({}) == ""

    def test_y_label(self):
        plot = viz.line_plot({"a": [1, 2]}, height=3, width=5, y_label="hit rate")
        assert plot.startswith("hit rate")


class TestHitRatePlotAndComparison:
    def test_hit_rate_plot(self):
        tracker = HitRateTracker()
        for i in range(20):
            tracker.record(i, 20 - i, eviction=(i % 5 == 0 and i > 0))
        out = viz.hit_rate_plot(tracker, width=20, height=5)
        assert "cumulative hit rate" in out
        assert "eviction points" in out

    def test_hit_rate_plot_empty(self):
        assert "no hit-rate history" in viz.hit_rate_plot(HitRateTracker())

    def test_comparison_summary(self):
        base = TrainingReport(
            mode="baseline", backend="cpu", dataset="d", arch="sage",
            num_machines=1, trainers_per_machine=1, epochs=1, total_simulated_time_s=2.0,
        )
        pref = TrainingReport(
            mode="prefetch", backend="cpu", dataset="d", arch="sage",
            num_machines=1, trainers_per_machine=1, epochs=1, total_simulated_time_s=1.0,
        )
        out = viz.comparison_summary(base, pref)
        assert "improvement: 50.0%" in out
        assert "speedup: 2.00x" in out
