"""Tests for the GraphSAGE and GAT models, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn import build_model
from repro.nn.gat import GAT, GATLayer
from repro.nn.graphsage import GraphSAGE, SAGELayer
from repro.nn.loss import cross_entropy
from repro.sampling.block import Block
from repro.sampling.neighbor_sampler import NeighborSampler


def _toy_block(num_dst=2, num_src=5, num_edges=6, seed=0):
    """A small random block for layer-level tests."""
    rng = np.random.default_rng(seed)
    edge_src = rng.integers(0, num_src, size=num_edges)
    edge_dst = rng.integers(0, num_dst, size=num_edges)
    return Block(
        src_nodes=np.arange(num_src),
        dst_nodes=np.arange(num_dst),
        edge_src=edge_src,
        edge_dst=edge_dst,
        src_global=np.arange(num_src) + 100,
        dst_global=np.arange(num_dst) + 100,
    )


def _numerical_param_grad(layer_forward_loss, param_array, indices, eps=1e-3):
    """Central-difference gradient of a scalar loss wrt selected param entries."""
    grads = {}
    for idx in indices:
        orig = param_array[idx]
        param_array[idx] = orig + eps
        lp = layer_forward_loss()
        param_array[idx] = orig - eps
        lm = layer_forward_loss()
        param_array[idx] = orig
        grads[idx] = (lp - lm) / (2 * eps)
    return grads


class TestSAGELayer:
    def test_forward_shape(self):
        block = _toy_block()
        layer = SAGELayer(8, 4, seed=0)
        h_src = np.random.default_rng(0).normal(size=(block.num_src, 8)).astype(np.float32)
        out = layer.forward(block, h_src)
        assert out.shape == (block.num_dst, 4)

    def test_forward_rejects_wrong_rows(self):
        block = _toy_block()
        layer = SAGELayer(8, 4)
        with pytest.raises(ValueError):
            layer.forward(block, np.zeros((block.num_src + 1, 8), dtype=np.float32))

    def test_isolated_dst_uses_only_self(self):
        # A dst node with no in-edges must still produce finite output.
        block = Block(
            src_nodes=np.array([0, 1, 2]),
            dst_nodes=np.array([0, 1]),
            edge_src=np.array([2]),
            edge_dst=np.array([0]),
            src_global=np.arange(3),
            dst_global=np.arange(2),
        )
        layer = SAGELayer(4, 4, seed=0)
        out = layer.forward(block, np.ones((3, 4), dtype=np.float32))
        assert np.all(np.isfinite(out))

    def test_gradient_check_weights(self):
        rng = np.random.default_rng(3)
        block = _toy_block(seed=3)
        layer = SAGELayer(6, 3, activation="relu", seed=1)
        h_src = rng.normal(size=(block.num_src, 6)).astype(np.float32)
        grad_out = rng.normal(size=(block.num_dst, 3)).astype(np.float32)

        def loss():
            return float(np.sum(grad_out * layer.forward(block, h_src)))

        loss()  # populate cache
        layer.zero_grad()
        layer.forward(block, h_src)
        layer.backward(grad_out)
        for pname in ("w_self", "w_neigh"):
            param = getattr(layer, pname)
            numerical = _numerical_param_grad(loss, param.value, [(0, 0), (2, 1)])
            for idx, num in numerical.items():
                assert num == pytest.approx(param.grad[idx], rel=5e-2, abs=5e-3)

    def test_gradient_check_inputs(self):
        rng = np.random.default_rng(4)
        block = _toy_block(seed=5)
        layer = SAGELayer(4, 3, activation="none", seed=2)
        h_src = rng.normal(size=(block.num_src, 4)).astype(np.float64)
        grad_out = rng.normal(size=(block.num_dst, 3)).astype(np.float64)
        layer.forward(block, h_src.astype(np.float32))
        grad_h = layer.backward(grad_out.astype(np.float32))

        eps = 1e-3
        for i, j in [(0, 0), (3, 2), (4, 1)]:
            plus = h_src.copy(); plus[i, j] += eps
            minus = h_src.copy(); minus[i, j] -= eps
            lp = np.sum(grad_out * layer.forward(block, plus.astype(np.float32)))
            lm = np.sum(grad_out * layer.forward(block, minus.astype(np.float32)))
            num = (lp - lm) / (2 * eps)
            assert num == pytest.approx(grad_h[i, j], rel=5e-2, abs=5e-3)

    def test_flops_positive(self):
        layer = SAGELayer(8, 4)
        assert layer.flops(_toy_block()) > 0


class TestGATLayer:
    def test_forward_shape_concat_and_mean(self):
        block = _toy_block()
        h_src = np.random.default_rng(0).normal(size=(block.num_src, 6)).astype(np.float32)
        concat = GATLayer(6, 4, num_heads=2, combine="concat", seed=0)
        assert concat.forward(block, h_src).shape == (block.num_dst, 8)
        mean = GATLayer(6, 4, num_heads=2, combine="mean", activation="none", seed=0)
        assert mean.forward(block, h_src).shape == (block.num_dst, 4)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            GATLayer(4, 4, combine="sum")
        with pytest.raises(ValueError):
            GATLayer(4, 4, activation="tanh")

    def test_gradient_check_weight(self):
        rng = np.random.default_rng(7)
        block = _toy_block(num_dst=3, num_src=6, num_edges=10, seed=7)
        layer = GATLayer(5, 3, num_heads=2, combine="concat", activation="none", seed=3)
        h_src = rng.normal(size=(block.num_src, 5)).astype(np.float32)
        grad_out = rng.normal(size=(block.num_dst, 6)).astype(np.float32)

        def loss():
            return float(np.sum(grad_out * layer.forward(block, h_src)))

        layer.zero_grad()
        layer.forward(block, h_src)
        layer.backward(grad_out)
        numerical = _numerical_param_grad(loss, layer.weight.value, [(0, 0), (2, 3)])
        for idx, num in numerical.items():
            assert num == pytest.approx(layer.weight.grad[idx], rel=8e-2, abs=8e-3)

    def test_gradient_check_attention_params(self):
        rng = np.random.default_rng(8)
        block = _toy_block(num_dst=3, num_src=6, num_edges=12, seed=9)
        layer = GATLayer(4, 3, num_heads=2, combine="mean", activation="none", seed=4)
        h_src = rng.normal(size=(block.num_src, 4)).astype(np.float32)
        grad_out = rng.normal(size=(block.num_dst, 3)).astype(np.float32)

        def loss():
            return float(np.sum(grad_out * layer.forward(block, h_src)))

        layer.zero_grad()
        layer.forward(block, h_src)
        layer.backward(grad_out)
        numerical = _numerical_param_grad(loss, layer.attn_l.value, [(0, 0), (1, 2)], eps=1e-3)
        for idx, num in numerical.items():
            assert num == pytest.approx(layer.attn_l.grad[idx], rel=8e-2, abs=8e-3)

    def test_gradient_check_inputs(self):
        rng = np.random.default_rng(9)
        block = _toy_block(num_dst=2, num_src=5, num_edges=8, seed=11)
        layer = GATLayer(4, 2, num_heads=1, combine="concat", activation="none", seed=5)
        h_src = rng.normal(size=(block.num_src, 4)).astype(np.float64)
        grad_out = rng.normal(size=(block.num_dst, 2)).astype(np.float64)
        layer.forward(block, h_src.astype(np.float32))
        grad_h = layer.backward(grad_out.astype(np.float32))
        eps = 1e-3
        for i, j in [(0, 0), (4, 3)]:
            plus = h_src.copy(); plus[i, j] += eps
            minus = h_src.copy(); minus[i, j] -= eps
            lp = np.sum(grad_out * layer.forward(block, plus.astype(np.float32)))
            lm = np.sum(grad_out * layer.forward(block, minus.astype(np.float32)))
            num = (lp - lm) / (2 * eps)
            assert num == pytest.approx(grad_h[i, j], rel=8e-2, abs=8e-3)


class TestFullModels:
    def _minibatch(self, dataset, num_layers=2, seed=0, num_seeds=32):
        sampler = NeighborSampler(dataset.graph, [4] * num_layers, seed=seed)
        return sampler.sample(np.arange(num_seeds), labels=dataset.labels)

    def test_graphsage_forward_shapes(self, small_dataset):
        mb = self._minibatch(small_dataset)
        model = GraphSAGE(small_dataset.feature_dim, 16, small_dataset.num_classes, seed=0)
        logits = model.forward(mb.blocks, small_dataset.features[mb.input_global])
        assert logits.shape == (mb.blocks[-1].num_dst, small_dataset.num_classes)

    def test_wrong_block_count_raises(self, small_dataset):
        mb = self._minibatch(small_dataset, num_layers=1)
        model = GraphSAGE(small_dataset.feature_dim, 16, small_dataset.num_classes, num_layers=2)
        with pytest.raises(ValueError):
            model.forward(mb.blocks, small_dataset.features[mb.input_global])

    def test_graphsage_learns_on_small_task(self, small_dataset):
        """A few full-batch training steps must reduce the loss substantially."""
        model = GraphSAGE(small_dataset.feature_dim, 32, small_dataset.num_classes, seed=0)
        from repro.nn.optim import Adam

        opt = Adam(lr=1e-2)
        rng = np.random.default_rng(0)
        sampler = NeighborSampler(small_dataset.graph, [5, 5], seed=1)
        seeds = small_dataset.train_nids()[:128]
        losses = []
        for _ in range(15):
            mb = sampler.sample(seeds, labels=small_dataset.labels)
            logits = model.forward(mb.blocks, small_dataset.features[mb.input_global])
            loss, grad = cross_entropy(logits, mb.labels)
            losses.append(loss)
            model.backward(grad)
            opt.step(model.parameters(), model.gradients())
            model.zero_grad()
        assert losses[-1] < 0.7 * losses[0]

    def test_gat_forward_and_backward(self, small_dataset):
        mb = self._minibatch(small_dataset, num_seeds=16)
        model = GAT(small_dataset.feature_dim, 8, small_dataset.num_classes, num_heads=2, seed=0)
        logits = model.forward(mb.blocks, small_dataset.features[mb.input_global])
        assert logits.shape[1] == small_dataset.num_classes
        loss, grad = cross_entropy(logits, mb.labels)
        grad_in = model.backward(grad)
        assert grad_in.shape == (mb.num_input_nodes, small_dataset.feature_dim)
        assert np.all(np.isfinite(grad_in))

    def test_predict(self, small_dataset):
        mb = self._minibatch(small_dataset, num_seeds=8)
        model = GraphSAGE(small_dataset.feature_dim, 8, small_dataset.num_classes, seed=0)
        preds = model.predict(mb.blocks, small_dataset.features[mb.input_global])
        assert preds.shape == (mb.blocks[-1].num_dst,)
        assert preds.max() < small_dataset.num_classes

    def test_flops_scale_with_minibatch_size(self, small_dataset):
        model = GraphSAGE(small_dataset.feature_dim, 16, small_dataset.num_classes, seed=0)
        small = self._minibatch(small_dataset, num_seeds=8)
        large = self._minibatch(small_dataset, num_seeds=64)
        assert model.flops(large) > model.flops(small)

    def test_build_model_factory(self):
        assert isinstance(build_model("sage", 8, 16, 4), GraphSAGE)
        assert isinstance(build_model("graphsage", 8, 16, 4), GraphSAGE)
        assert isinstance(build_model("gat", 8, 16, 4), GAT)
        with pytest.raises(ValueError):
            build_model("gcn", 8, 16, 4)

    def test_invalid_layer_counts(self):
        with pytest.raises(ValueError):
            GraphSAGE(8, 16, 4, num_layers=0)
        with pytest.raises(ValueError):
            GAT(8, 16, 4, num_layers=0)

    def test_state_dict_roundtrip_model(self, small_dataset):
        a = GraphSAGE(small_dataset.feature_dim, 8, small_dataset.num_classes, seed=0)
        b = GraphSAGE(small_dataset.feature_dim, 8, small_dataset.num_classes, seed=99)
        b.load_state_dict(a.state_dict())
        mb = self._minibatch(small_dataset, num_seeds=8)
        feats = small_dataset.features[mb.input_global]
        np.testing.assert_allclose(a.forward(mb.blocks, feats), b.forward(mb.blocks, feats))
