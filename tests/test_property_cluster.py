"""Property-based tests for the cluster engine's DDP invariants.

Seeded generators (hypothesis with fixed strategies, no new dependencies)
check the three invariants synchronous data-parallel training rests on:

* **allreduce identity** — averaging identical gradient replicas returns the
  same gradients;
* **replica synchronization** — replicas that start identical and apply the
  same averaged updates stay bit-identical across epochs;
* **seed-partition coverage** — the two-level seed split assigns every train
  seed to exactly one trainer for any ``num_machines x trainers_per_machine``.

Plus the regression for the join-semantics bug the differential harness
surfaced: an all-empty gradient round must no-op instead of crashing the
optimizer with a key mismatch.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.ddp import allreduce_gradients, check_replicas_consistent
from repro.nn import build_model, build_optimizer
from repro.sampling.seeds import SeedPartitioner
from repro.training.engine import apply_averaged_gradients


def _random_shapes(rng, num_params=3):
    return {
        f"p{i}": (int(rng.integers(1, 5)), int(rng.integers(1, 5)))
        for i in range(num_params)
    }


def _random_grads(rng, shapes=None):
    if shapes is None:
        shapes = _random_shapes(rng)
    return {name: rng.normal(size=shape) for name, shape in shapes.items()}


class TestAllreduceProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        world=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=50, deadline=None)
    def test_allreduce_of_identical_grads_is_identity(self, seed, world):
        rng = np.random.default_rng(seed)
        grads = _random_grads(rng)
        averaged = allreduce_gradients([{k: v.copy() for k, v in grads.items()}
                                        for _ in range(world)])
        assert set(averaged) == set(grads)
        for name, value in grads.items():
            if world <= 2:
                # One or two replicas sum and divide exactly in binary
                # floating point, so identity holds bit-for-bit.
                np.testing.assert_array_equal(averaged[name], value)
            else:
                # Larger worlds are identity up to summation-order rounding
                # (numpy's unrolled reductions can be 1 ulp off even for
                # power-of-two world sizes).
                np.testing.assert_allclose(averaged[name], value, rtol=1e-14, atol=0)

    @given(seed=st.integers(0, 2**31 - 1), world=st.integers(2, 8))
    @settings(max_examples=50, deadline=None)
    def test_allreduce_is_permutation_invariant(self, seed, world):
        rng = np.random.default_rng(seed)
        shapes = _random_shapes(rng)
        per_trainer = [_random_grads(rng, shapes) for _ in range(world)]
        forward = allreduce_gradients(per_trainer)
        backward = allreduce_gradients(per_trainer[::-1])
        for name in forward:
            np.testing.assert_allclose(forward[name], backward[name], rtol=1e-12)

    @given(seed=st.integers(0, 2**31 - 1), world=st.integers(2, 8))
    @settings(max_examples=50, deadline=None)
    def test_join_semantics_skip_empty_contributors(self, seed, world):
        rng = np.random.default_rng(seed)
        shapes = _random_shapes(rng)
        per_trainer = [_random_grads(rng, shapes) for _ in range(world)]
        with_joins = list(per_trainer) + [{}, {}]
        rng.shuffle(with_joins)
        averaged = allreduce_gradients(with_joins)
        expected = allreduce_gradients(per_trainer)
        for name in expected:
            np.testing.assert_allclose(averaged[name], expected[name], rtol=1e-12)


class TestReplicaSynchronization:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_replicas_stay_parameter_synchronized(self, seed):
        """Identical init + averaged updates => bit-identical replicas."""
        world, steps = 4, 6
        replicas = [
            build_model("sage", in_dim=8, hidden_dim=8, num_classes=3,
                        num_layers=2, seed=seed % 2**31)
            for _ in range(world)
        ]
        optimizers = [build_optimizer("adam", lr=1e-2) for _ in range(world)]
        rng = np.random.default_rng(seed)
        param_names = list(replicas[0].parameters())
        for _ in range(steps):
            per_trainer = [
                {name: rng.normal(size=replicas[0].parameters()[name].shape)
                 for name in param_names}
                for _ in range(world)
            ]
            averaged = allreduce_gradients(per_trainer)
            for model, optimizer in zip(replicas, optimizers):
                apply_averaged_gradients(optimizer, model, averaged)
        params = [m.parameters() for m in replicas]
        assert check_replicas_consistent(params, atol=0.0)
        for name in param_names:
            np.testing.assert_array_equal(params[0][name], params[1][name])


class TestSeedPartitionCoverage:
    @given(
        seed=st.integers(0, 2**31 - 1),
        num_seeds=st.integers(0, 300),
        num_trainers=st.integers(1, 12),
    )
    @settings(max_examples=80, deadline=None)
    def test_partitioner_covers_every_seed_exactly_once(
        self, seed, num_seeds, num_trainers
    ):
        rng = np.random.default_rng(seed)
        # Unique, arbitrary (unsorted) seed node ids.
        seeds = rng.choice(10 * (num_seeds + 1), size=num_seeds, replace=False).astype(np.int64)
        partitioner = SeedPartitioner(seeds, num_trainers, seed=seed)
        chunks = [partitioner.trainer_seeds(r) for r in range(num_trainers)]
        recombined = np.sort(np.concatenate(chunks)) if chunks else np.zeros(0, np.int64)
        np.testing.assert_array_equal(recombined, np.sort(seeds))
        np.testing.assert_array_equal(partitioner.assigned_seeds(), np.sort(seeds))
        # No trainer holds a seed twice, and sizes are balanced within 1.
        sizes = [len(c) for c in chunks]
        assert sum(sizes) == num_seeds
        assert max(sizes) - min(sizes) <= 1

    @pytest.mark.parametrize("num_machines,trainers_per_machine", [
        (1, 1), (1, 4), (2, 2), (3, 1), (2, 3), (4, 2),
    ])
    def test_cluster_covers_train_set_for_any_topology(
        self, small_dataset, num_machines, trainers_per_machine
    ):
        cluster = SimCluster(
            small_dataset,
            ClusterConfig(
                num_machines=num_machines,
                trainers_per_machine=trainers_per_machine,
                batch_size=64,
                fanouts=(5, 10),
                seed=3,
            ),
        )
        cluster.validate_seed_coverage()
        assigned = np.sort(np.concatenate([
            t.partition.owned_global[t.seeds_local]
            for t in cluster.trainers if len(t.seeds_local)
        ]))
        np.testing.assert_array_equal(assigned, small_dataset.train_nids())


class TestEmptyGradientJoinRegression:
    """The latent bug the harness surfaced: all-empty rounds must no-op."""

    def test_allreduce_all_empty_returns_empty(self):
        assert allreduce_gradients([{}, {}, {}]) == {}
        assert allreduce_gradients([]) == {}

    def test_apply_averaged_gradients_noops_on_empty(self):
        model = build_model("sage", in_dim=4, hidden_dim=4, num_classes=2,
                            num_layers=2, seed=0)
        optimizer = build_optimizer("adam", lr=1e-2)
        before = {k: v.copy() for k, v in model.parameters().items()}
        # Before the fix this raised KeyError("parameter/gradient key mismatch").
        assert apply_averaged_gradients(optimizer, model, {}) is False
        for name, value in model.parameters().items():
            np.testing.assert_array_equal(value, before[name])

    def test_apply_averaged_gradients_applies_nonempty(self):
        model = build_model("sage", in_dim=4, hidden_dim=4, num_classes=2,
                            num_layers=2, seed=0)
        optimizer = build_optimizer("sgd", lr=0.5)
        before = {k: v.copy() for k, v in model.parameters().items()}
        grads = {name: np.ones_like(value) for name, value in model.parameters().items()}
        assert apply_averaged_gradients(optimizer, model, grads) is True
        for name, value in model.parameters().items():
            np.testing.assert_allclose(value, before[name] - 0.5, rtol=1e-12)
