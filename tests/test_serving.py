"""Tests for the serving subsystem: engine replay, reports, engines registry,
the shared percentile helper, and the ``repro serve`` CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.distributed.cluster import SimCluster
from repro.graph.datasets import load_dataset
from repro.scenarios import SCENARIOS, build_scenario
from repro.serving.engine import InferenceClusterEngine
from repro.serving.report import COMPONENTS
from repro.training.config import TrainConfig
from repro.training.engines import ENGINES, build_engine
from repro.training.telemetry import percentile_summary

SCALE = 0.05
REQUESTS = 64


def _run_serving(scenario_name, seed=0, requests=REQUESTS, record_events=False,
                 **spec_overrides):
    """Materialize a serving scenario at test scale; returns (engine, report)."""
    scenario = SCENARIOS.build(scenario_name)
    spec = scenario.serving.with_overrides(num_requests=requests, **spec_overrides)
    scenario = scenario.with_overrides(scale=SCALE, serving=spec)
    dataset = load_dataset(scenario.dataset, scale=scenario.scale, seed=seed)
    cluster = SimCluster(dataset, scenario.cluster_config(seed),
                         cost_model=scenario.cost_model())
    engine = InferenceClusterEngine(
        cluster, TrainConfig(epochs=1, hidden_dim=32, seed=seed),
        scenario=scenario.name, serving=spec, record_events=record_events,
    )
    report = engine.run(scenario.pipeline, prefetch_config=scenario.prefetch_config,
                        cache_config=scenario.cache_config)
    return engine, report


@pytest.fixture(scope="module")
def steady():
    return _run_serving("steady-poisson", seed=0, record_events=True)


@pytest.fixture(scope="module")
def flash():
    return _run_serving("flash-crowd-burst", seed=0)


class TestEngine:
    def test_every_request_served(self, steady):
        _, report = steady
        assert report.completed == report.num_requests == REQUESTS
        assert len(report.requests) == REQUESTS

    def test_request_ledgers_consistent(self, steady):
        _, report = steady
        for r in report.requests:
            assert r.latency_s > 0
            assert r.queue_wait_s >= -1e-12
            assert r.start_s >= r.arrival_s - 1e-12
            assert r.latency_s == pytest.approx(r.queue_wait_s + r.service_s)
            assert r.done_s == pytest.approx(r.start_s + r.service_s)
            assert set(r.component_times_s()) == set(COMPONENTS)

    def test_routing_is_ownership(self, steady):
        engine, report = steady
        owned = {t.global_rank: set(np.asarray(t.partition.owned_global).tolist())
                 for t in engine.cluster.trainers}
        for r in report.requests:
            assert r.user in owned[r.global_rank]

    def test_warmup_off_the_timeline(self, steady):
        _, report = steady
        assert report.warmup_time_s > 0
        first = min(r.arrival_s for r in report.requests)
        assert first < report.warmup_time_s  # timeline restarted at zero

    def test_worker_stats_cover_all_requests(self, steady):
        _, report = steady
        assert sum(w.requests for w in report.worker_stats) == REQUESTS
        for w in report.worker_stats:
            assert w.busy_time_s >= 0
            if w.hit_rate is not None:
                assert 0.0 <= w.hit_rate <= 1.0

    def test_tier_hit_rates_present(self, steady):
        _, report = steady
        tiers = report.mean_tier_hit_rates()
        assert tiers  # the 2-tier serving cache must report per-tier rates
        assert all(0.0 <= rate <= 1.0 for rate in tiers.values())
        summary = report.summary()
        assert any(key.startswith("cache.") for key in summary)
        assert "latency_ms.p99" in summary

    def test_serving_scenarios_run_the_cached_path(self):
        for name in ("steady-poisson", "diurnal-cache-drift", "flash-crowd-burst"):
            scenario = SCENARIOS.build(name)
            assert scenario.pipeline == "tiered-cache"
            assert scenario.cache_config is not None and scenario.cache_config.tiers == 2


class TestDeterminism:
    def test_same_seed_identical_history_and_report(self, steady):
        engine1, report1 = steady
        engine2, report2 = _run_serving("steady-poisson", seed=0, record_events=True)
        assert engine1.event_history == engine2.event_history
        assert len(engine1.event_history) == 2 * REQUESTS  # request + done each
        canon1 = json.dumps(report1.as_dict(), sort_keys=True)
        canon2 = json.dumps(report2.as_dict(), sort_keys=True)
        assert canon1 == canon2

    def test_different_seed_differs(self, steady):
        _, report1 = steady
        _, report2 = _run_serving("steady-poisson", seed=1)
        assert (json.dumps(report1.as_dict(), sort_keys=True)
                != json.dumps(report2.as_dict(), sort_keys=True))


class TestTailBehavior:
    def test_flash_crowd_p99_exceeds_steady(self, steady, flash):
        _, steady_report = steady
        _, flash_report = flash
        assert flash_report.latency_ms()["p99"] > steady_report.latency_ms()["p99"]

    def test_phase_split_only_when_multiphase(self, steady, flash):
        _, steady_report = steady
        _, flash_report = flash
        assert steady_report.phase_latency_ms() == {}
        assert "phase_latency_ms" not in steady_report.as_dict()
        split = flash_report.phase_latency_ms()
        assert set(split) == {"steady", "peak"}
        assert flash_report.as_dict()["phase_latency_ms"] == split

    def test_slo_accounting(self, steady, flash):
        _, flash_report = flash
        by_hand = sum(1 for r in flash_report.requests
                      if r.latency_s > flash_report.slo_ms / 1e3)
        assert flash_report.slo_violations == by_hand
        assert flash_report.slo_violation_rate == pytest.approx(by_hand / REQUESTS)


class TestEnginesRegistry:
    SPEC_SCENARIO = "steady-poisson"

    def _spec(self):
        return SCENARIOS.build(self.SPEC_SCENARIO).serving

    def test_training_engines_reject_serving_spec(self):
        for engine in ("lockstep", "async"):
            with pytest.raises(ValueError, match="serving"):
                build_engine(engine, None, None, serving=self._spec())

    def test_serving_engine_requires_spec(self):
        with pytest.raises(ValueError, match="ServingSpec"):
            build_engine("serving", None, None)

    def test_serving_engine_rejects_failures_and_sync(self):
        from repro.events.schedule import FailureSpec

        with pytest.raises(ValueError, match="failures"):
            build_engine("serving", None, None, serving=self._spec(),
                         failures=FailureSpec(rate=0.1))
        with pytest.raises(ValueError, match="sync"):
            build_engine("serving", None, None, serving=self._spec(),
                         sync="local-sgd")

    def test_aliases_resolve(self):
        assert ENGINES.resolve("serve") == "serving"
        assert ENGINES.resolve("inference") == "serving"

    def test_execution_labels(self):
        assert SCENARIOS.build("steady-poisson").execution == "serving · poisson(1500 rps)"
        assert SCENARIOS.build("flash-crowd-burst").execution.startswith(
            "serving · flash-crowd")
        assert SCENARIOS.build("diurnal-cache-drift").execution.startswith(
            "serving · diurnal")

    def test_serving_scenarios_registered(self):
        names = set(SCENARIOS.names())
        assert {"steady-poisson", "diurnal-cache-drift", "flash-crowd-burst"} <= names


class TestPercentileSummary:
    def test_empty_is_zeros(self):
        out = percentile_summary([])
        assert out == {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}

    def test_known_values(self):
        values = list(range(1, 101))
        out = percentile_summary(values)
        assert out["p50"] == pytest.approx(50.5)
        assert out["max"] == 100.0
        assert out["mean"] == pytest.approx(50.5)
        assert out["p99"] == pytest.approx(np.percentile(values, 99.0))

    def test_custom_percentiles(self):
        out = percentile_summary([1.0, 2.0, 3.0], percentiles=(25.0,))
        assert set(out) == {"p25", "mean", "max"}

    def test_cluster_report_busy_time_keys(self):
        workload = build_scenario("uniform", seed=0, scale=SCALE, epochs=1,
                                  train_config=TrainConfig(epochs=1, hidden_dim=32, seed=0))
        report = workload.run()
        summary = report.summary()
        for key in ("p50", "p95", "p99", "mean", "max"):
            assert f"busy_time.{key}" in summary
        assert report.busy_time_percentiles()["max"] == pytest.approx(
            max(t.simulated_time_s for t in report.trainer_stats))


class TestServeCli:
    ARGS = ["--scale", str(SCALE), "--requests", str(REQUESTS)]

    def test_serve_smoke(self, capsys):
        assert main(["serve", "--scenario", "steady-poisson", "--seed", "3",
                     *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "latency ms:" in out and "SLO" in out
        assert "execution=serving · poisson" in out

    def test_serve_rejects_training_scenario(self, capsys):
        assert main(["serve", "--scenario", "uniform"]) == 2
        err = capsys.readouterr().err
        assert "steady-poisson" in err  # error lists the serving scenarios

    def test_run_cluster_routes_serving_scenario(self, capsys):
        code = main(["run", "--cluster", "--scenario", "flash-crowd-burst",
                     "--scale", str(SCALE), "--epochs", "1", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[serving] flash-crowd" in out
        assert "phase p99 ms:" in out

    def test_serve_trace_deterministic(self, capsys, tmp_path):
        for sub in ("a", "b"):
            assert main(["serve", "--scenario", "steady-poisson", "--seed", "5",
                         "--trace-dir", str(tmp_path / sub), *self.ARGS]) == 0
        capsys.readouterr()
        trace_a = (tmp_path / "a" / "serving_steady-poisson.json").read_bytes()
        trace_b = (tmp_path / "b" / "serving_steady-poisson.json").read_bytes()
        assert trace_a == trace_b
        payload = json.loads(trace_a)
        assert payload["completed"] == REQUESTS
        assert set(payload["component_ms"]) == set(COMPONENTS)

    def test_serve_overrides_spec(self, capsys):
        assert main(["serve", "--scenario", "steady-poisson", "--arrival", "flash-crowd",
                     "--rate", "900", "--slo-ms", "2", "--seed", "3",
                     *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "flash-crowd(900 rps" in out
        assert "SLO 2 ms" in out
