"""Tests for synthetic graph/feature generators."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.csr import CSRGraph


class TestPowerlawDegrees:
    def test_mean_close_to_target(self):
        degs = gen.powerlaw_degree_sequence(5000, avg_degree=10, seed=0)
        assert 5 <= degs.mean() <= 20

    def test_even_sum(self):
        degs = gen.powerlaw_degree_sequence(1001, avg_degree=7, seed=1)
        assert degs.sum() % 2 == 0

    def test_minimum_degree(self):
        degs = gen.powerlaw_degree_sequence(1000, avg_degree=5, min_degree=2, seed=2)
        assert degs.min() >= 2

    def test_heavy_tail(self):
        degs = gen.powerlaw_degree_sequence(5000, avg_degree=10, seed=3)
        assert degs.max() > 5 * degs.mean()

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            gen.powerlaw_degree_sequence(100, 5, exponent=0.5)


class TestChungLu:
    def test_edge_count_close(self):
        degs = gen.powerlaw_degree_sequence(2000, avg_degree=8, seed=0)
        src, dst = gen.chung_lu_edges(degs, seed=0)
        expected = degs.sum() // 2
        assert 0.3 * expected <= len(src) <= expected

    def test_no_self_loops(self):
        degs = np.full(100, 6)
        src, dst = gen.chung_lu_edges(degs, seed=1)
        assert np.all(src != dst)

    def test_empty_degrees(self):
        src, dst = gen.chung_lu_edges(np.zeros(10), seed=0)
        assert len(src) == 0 and len(dst) == 0


class TestRmat:
    def test_shape(self):
        src, dst = gen.rmat_edges(8, 4, seed=0)
        assert len(src) == len(dst) == (1 << 8) * 4

    def test_ids_in_range(self):
        src, dst = gen.rmat_edges(7, 3, seed=1)
        n = 1 << 7
        assert src.max() < n and dst.max() < n

    def test_graph_is_symmetric(self):
        g = gen.rmat_graph(7, 4, seed=2)
        assert isinstance(g, CSRGraph)
        assert g.is_symmetric()

    def test_degree_skew(self):
        g = gen.rmat_graph(10, 8, seed=3)
        degs = g.out_degree()
        assert degs.max() > 4 * max(1.0, degs.mean())

    def test_invalid_quadrants(self):
        with pytest.raises(ValueError):
            gen.rmat_edges(5, 2, a=0.6, b=0.3, c=0.3)

    def test_deterministic(self):
        a = gen.rmat_edges(6, 2, seed=9)
        b = gen.rmat_edges(6, 2, seed=9)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])


class TestPlantedPartition:
    def test_labels_shape_and_range(self):
        graph, labels = gen.planted_partition_graph(500, 5, 10, seed=0)
        assert len(labels) == 500
        assert labels.min() >= 0 and labels.max() < 5

    def test_intra_fraction_effect(self):
        """Higher intra_fraction must produce a larger share of intra-community edges."""
        def intra_share(frac):
            graph, labels = gen.planted_partition_graph(
                800, 8, 12, intra_fraction=frac, seed=1
            )
            src, dst = graph.edges()
            return np.mean(labels[src] == labels[dst])

        assert intra_share(0.9) > intra_share(0.3)

    def test_avg_degree_reasonable(self):
        graph, _ = gen.planted_partition_graph(1000, 5, 16, seed=2)
        avg = graph.num_edges / graph.num_nodes
        assert 6 <= avg <= 32

    def test_symmetric(self):
        graph, _ = gen.planted_partition_graph(300, 4, 8, seed=3)
        assert graph.is_symmetric()


class TestFeaturesAndSplits:
    def test_features_shape_dtype(self):
        labels = np.array([0, 1, 2, 0, 1])
        feats = gen.class_informative_features(labels, 16, seed=0)
        assert feats.shape == (5, 16)
        assert feats.dtype == np.float32

    def test_features_are_class_informative(self):
        """Same-class feature centroids must be closer than cross-class ones."""
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, size=600)
        feats = gen.class_informative_features(labels, 32, noise=0.5, seed=1)
        centroids = np.stack([feats[labels == c].mean(axis=0) for c in range(3)])
        within = np.mean([np.linalg.norm(feats[labels == c] - centroids[c], axis=1).mean() for c in range(3)])
        between = np.mean(
            [np.linalg.norm(centroids[i] - centroids[j]) for i in range(3) for j in range(i + 1, 3)]
        )
        assert between > 0.5 * within

    def test_split_masks_are_disjoint_and_cover(self):
        train, val, test = gen.train_val_test_split(1000, seed=0)
        assert not np.any(train & val)
        assert not np.any(train & test)
        assert not np.any(val & test)
        assert np.all(train | val | test)

    def test_split_fractions(self):
        train, val, test = gen.train_val_test_split(1000, 0.5, 0.25, seed=1)
        assert abs(train.sum() - 500) <= 1
        assert abs(val.sum() - 250) <= 1

    def test_split_invalid_fractions(self):
        with pytest.raises(ValueError):
            gen.train_val_test_split(100, 0.8, 0.5)

    def test_smooth_labels_increases_homophily(self, small_community_graph):
        graph, labels = small_community_graph
        rng = np.random.default_rng(0)
        noisy = labels.copy()
        flip = rng.random(len(labels)) < 0.5
        noisy[flip] = rng.integers(0, labels.max() + 1, size=int(flip.sum()))
        smoothed = gen.smooth_labels_by_propagation(graph, noisy, rounds=2, seed=0)
        src, dst = graph.edges()

        def homophily(lab):
            return float(np.mean(lab[src] == lab[dst]))

        assert homophily(smoothed) > homophily(noisy)
