"""Golden-number regression test for a fixed-seed 2x2 cluster run.

``tests/golden/cluster_2x2.json`` captures the losses and telemetry of a
small, fully deterministic 2-machine x 2-trainer prefetch run.  Any change to
partitioning, sampling, the prefetcher, the timing policies, or the cluster
engine's barrier accounting shows up here as a numeric diff — on purpose.

If a change is *intended* to move these numbers, regenerate the fixture and
commit it together with the change::

    PYTHONPATH=src python tests/test_golden_cluster.py --regenerate

Floats are compared at rel=1e-9: bit-exactness across numpy versions is not
guaranteed for reductions, but anything a code change does moves these numbers
by far more than that.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core.config import PrefetchConfig
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.graph.datasets import load_dataset
from repro.training.cluster_engine import ClusterEngine, ClusterReport
from repro.training.config import TrainConfig

GOLDEN_PATH = Path(__file__).parent / "golden" / "cluster_2x2.json"
REL_TOL = 1e-9


def golden_cluster_run() -> ClusterReport:
    """The fixed-seed 2x2 workload the fixture pins (do not change casually)."""
    dataset = load_dataset("products", scale=0.05, seed=5)
    cluster = SimCluster(
        dataset,
        ClusterConfig(
            num_machines=2, trainers_per_machine=2,
            batch_size=64, fanouts=(5, 10), seed=7,
        ),
    )
    engine = ClusterEngine(cluster, TrainConfig(epochs=2, hidden_dim=32, seed=1))
    return engine.run(
        "prefetch",
        prefetch_config=PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=8),
    )


def _assert_matches(actual, expected, path="$"):
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected dict, got {type(actual)}"
        assert sorted(actual) == sorted(expected), (
            f"{path}: keys differ: {sorted(actual)} vs {sorted(expected)}"
        )
        for key in expected:
            _assert_matches(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert len(actual) == len(expected), f"{path}: length {len(actual)} != {len(expected)}"
        for i, (a, e) in enumerate(zip(actual, expected)):
            _assert_matches(a, e, f"{path}[{i}]")
    elif isinstance(expected, float):
        assert actual == expected or abs(actual - expected) <= REL_TOL * max(
            abs(actual), abs(expected)
        ), f"{path}: {actual} != {expected}"
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


def test_golden_2x2_cluster_numbers():
    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; regenerate with "
        f"PYTHONPATH=src python tests/test_golden_cluster.py --regenerate"
    )
    expected = json.loads(GOLDEN_PATH.read_text())
    actual = json.loads(json.dumps(golden_cluster_run().as_dict()))
    _assert_matches(actual, expected)


def regenerate(out_path: Path = GOLDEN_PATH) -> None:
    """Write the fixture to *out_path* (default: the committed location).

    The CI golden-drift job regenerates into a temp file and diffs it against
    the committed fixture, so an uncommitted behavior change in any pinned
    layer fails the build instead of landing silently.
    """
    out_path.parent.mkdir(parents=True, exist_ok=True)
    report = golden_cluster_run()
    out_path.write_text(json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    print(f"  losses: {[round(r.loss, 6) for r in report.report.epoch_records]}")
    print(f"  critical path: {report.critical_path_time_s:.6f}s")


def compare() -> int:
    """Regenerate in memory and compare against the committed fixture.

    Uses the same rel=1e-9 tolerance as the test (bit-exactness across numpy
    versions is not guaranteed for reductions), so the CI golden-drift job
    fails on behavior changes without turning red on a numpy upgrade's
    last-ulp summation differences.  Returns a process exit code.
    """
    if not GOLDEN_PATH.exists():
        print(f"missing golden fixture {GOLDEN_PATH}", file=sys.stderr)
        return 1
    expected = json.loads(GOLDEN_PATH.read_text())
    actual = json.loads(json.dumps(golden_cluster_run().as_dict()))
    try:
        _assert_matches(actual, expected)
    except AssertionError as exc:
        print(f"golden fixture drift detected: {exc}", file=sys.stderr)
        print("if the change is intended, regenerate with "
              "PYTHONPATH=src python tests/test_golden_cluster.py --regenerate "
              "and commit the fixture with it", file=sys.stderr)
        return 1
    print(f"regenerated run matches {GOLDEN_PATH} (rel tol {REL_TOL})")
    return 0


if __name__ == "__main__":
    if "--compare" in sys.argv:
        sys.exit(compare())
    elif "--regenerate" in sys.argv:
        out = GOLDEN_PATH
        if "--out" in sys.argv:
            out = Path(sys.argv[sys.argv.index("--out") + 1])
        regenerate(out)
    else:
        print(__doc__)
        sys.exit(2)
