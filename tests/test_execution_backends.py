"""Differential tests pinning the process-pool execution backend to inline.

The pool backend (:mod:`repro.training.backends`) fans whole machines out to
worker processes over shared-memory exports and merges step outcomes at the
parent's sync points in rank order.  The contract is *bit identity*: reports,
event histories, and final weights must equal the inline backend's — which is
itself byte-identical to the historical in-process loops (pinned by the
golden fixtures).  These tests run the golden 2x2 workload plus straggler and
bounded-staleness variants through both backends and diff everything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import PrefetchConfig
from repro.core.eviction import build_eviction_policy
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.graph.datasets import load_dataset
from repro.serving.arrivals import ServingSpec
from repro.training.async_engine import AsyncClusterEngine
from repro.training.backends import (
    EXECUTION_BACKENDS,
    InlineExecutionBackend,
    ProcessPoolExecutionBackend,
    build_execution_backend,
)
from repro.training.cluster_engine import ClusterEngine
from repro.training.config import TrainConfig
from repro.training.engines import build_engine

PREFETCH = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=8)


@pytest.fixture(scope="module")
def golden_dataset():
    """The golden fixture's dataset (products analog, scale 0.05, seed 5)."""
    return load_dataset("products", scale=0.05, seed=5)


@pytest.fixture(scope="module")
def tiny_dataset():
    """A smaller products analog for the async/spawn differentials."""
    return load_dataset("products", scale=0.03, seed=5)


def _config(**overrides) -> ClusterConfig:
    base = dict(num_machines=2, trainers_per_machine=2, batch_size=64,
                fanouts=(5, 10), seed=7)
    base.update(overrides)
    return ClusterConfig(**base)


def _assert_models_equal(a, b):
    sa, sb = a.state_dict(), b.state_dict()
    assert sorted(sa) == sorted(sb)
    for key in sa:
        np.testing.assert_array_equal(sa[key], sb[key], err_msg=key)


class TestRegistry:
    def test_names_and_aliases(self):
        names = set(EXECUTION_BACKENDS.names())
        assert {"inline", "process-pool"} <= names
        assert EXECUTION_BACKENDS.resolve("serial") == "inline"
        assert EXECUTION_BACKENDS.resolve("pool") == "process-pool"
        assert EXECUTION_BACKENDS.resolve("mp") == "process-pool"

    def test_build_returns_right_class(self, tiny_dataset):
        cluster = SimCluster(tiny_dataset, _config())
        tc = TrainConfig(epochs=1, hidden_dim=32, seed=1)
        assert type(build_execution_backend("inline", cluster, tc)) \
            is InlineExecutionBackend
        pool = build_execution_backend("pool", cluster, tc, workers=2)
        assert type(pool) is ProcessPoolExecutionBackend
        assert "process-pool" in pool.describe()

    def test_workers_clamped_to_machines(self, tiny_dataset):
        cluster = SimCluster(tiny_dataset, _config())
        tc = TrainConfig(epochs=1, hidden_dim=32, seed=1)
        assert ProcessPoolExecutionBackend(cluster, tc, workers=8).workers == 2
        assert ProcessPoolExecutionBackend(cluster, tc).workers == 2
        with pytest.raises(ValueError, match="workers"):
            ProcessPoolExecutionBackend(cluster, tc, workers=0)


class TestLockstepDifferential:
    def test_golden_2x2_bit_identical(self, golden_dataset):
        """The golden 2x2 prefetch workload: pool == inline, bit for bit."""
        tc = TrainConfig(epochs=2, hidden_dim=32, seed=1)
        inline = ClusterEngine(SimCluster(golden_dataset, _config()), tc)
        ra = inline.run("prefetch", prefetch_config=PREFETCH)
        pooled = ClusterEngine(
            SimCluster(golden_dataset, _config()), tc,
            execution_backend="process-pool", workers=2,
        )
        rb = pooled.run("prefetch", prefetch_config=PREFETCH)
        assert ra.as_dict() == rb.as_dict()
        _assert_models_equal(inline.final_model, pooled.final_model)

    def test_straggler_machine_bit_identical(self, tiny_dataset):
        """Heterogeneous compute (one slow machine) merges identically."""
        config = _config(compute_multipliers=(2.5, 1.0))
        tc = TrainConfig(epochs=1, hidden_dim=32, seed=1)
        ra = ClusterEngine(SimCluster(tiny_dataset, config), tc).run(
            "massivegnn", prefetch_config=PREFETCH)
        rb = ClusterEngine(
            SimCluster(tiny_dataset, config), tc,
            execution_backend="process-pool", workers=2,
        ).run("massivegnn", prefetch_config=PREFETCH)
        assert ra.as_dict() == rb.as_dict()

    def test_single_worker_pool_bit_identical(self, tiny_dataset):
        """workers=1 still crosses the process boundary and still matches."""
        tc = TrainConfig(epochs=1, hidden_dim=32, seed=1)
        ra = ClusterEngine(SimCluster(tiny_dataset, _config()), tc).run(
            "prefetch", prefetch_config=PREFETCH)
        rb = ClusterEngine(
            SimCluster(tiny_dataset, _config()), tc,
            execution_backend="process-pool", workers=1,
        ).run("prefetch", prefetch_config=PREFETCH)
        assert ra.as_dict() == rb.as_dict()

    def test_spawn_start_method_bit_identical(self, tiny_dataset, monkeypatch):
        """The spawn start method (no inherited state at all) also matches."""
        monkeypatch.setattr(
            ProcessPoolExecutionBackend, "_resolved_start_method",
            lambda self: "spawn",
        )
        tc = TrainConfig(epochs=1, hidden_dim=32, seed=1)
        ra = ClusterEngine(SimCluster(tiny_dataset, _config()), tc).run(
            "prefetch", prefetch_config=PREFETCH)
        rb = ClusterEngine(
            SimCluster(tiny_dataset, _config()), tc,
            execution_backend="process-pool", workers=2,
        ).run("prefetch", prefetch_config=PREFETCH)
        assert ra.as_dict() == rb.as_dict()


class TestAsyncDifferential:
    def _run(self, dataset, backend, *, sync, sync_options=None, config=None):
        engine = AsyncClusterEngine(
            SimCluster(dataset, config or _config()),
            TrainConfig(epochs=1, hidden_dim=32, seed=1),
            sync=sync, sync_options=sync_options, record_events=True,
            execution_backend=backend,
            workers=2 if backend == "process-pool" else None,
        )
        report = engine.run("massivegnn", prefetch_config=PREFETCH)
        return report, engine.event_history

    def test_barrier_bit_identical(self, tiny_dataset):
        ra, ha = self._run(tiny_dataset, "inline", sync="allreduce-barrier")
        rb, hb = self._run(tiny_dataset, "process-pool", sync="allreduce-barrier")
        assert ra.as_dict() == rb.as_dict()
        assert ha == hb

    def test_bounded_staleness_bit_identical(self, tiny_dataset):
        ra, ha = self._run(tiny_dataset, "inline", sync="bounded-staleness",
                           sync_options={"staleness": 2})
        rb, hb = self._run(tiny_dataset, "process-pool", sync="bounded-staleness",
                           sync_options={"staleness": 2})
        assert ra.as_dict() == rb.as_dict()
        assert ha == hb

    def test_straggler_barrier_bit_identical(self, tiny_dataset):
        config = _config(compute_multipliers=(2.5, 1.0))
        ra, ha = self._run(tiny_dataset, "inline", sync="allreduce-barrier",
                           config=config)
        rb, hb = self._run(tiny_dataset, "process-pool", sync="allreduce-barrier",
                           config=config)
        assert ra.as_dict() == rb.as_dict()
        assert ha == hb


class TestRejections:
    def test_inline_rejects_workers(self, tiny_dataset):
        tc = TrainConfig(epochs=1, hidden_dim=32, seed=1)
        with pytest.raises(ValueError, match="worker count"):
            ClusterEngine(
                SimCluster(tiny_dataset, _config()), tc,
                execution_backend="inline", workers=2,
            ).run("baseline")

    def test_pool_rejects_local_sgd(self, tiny_dataset):
        engine = AsyncClusterEngine(
            SimCluster(tiny_dataset, _config()),
            TrainConfig(epochs=1, hidden_dim=32, seed=1),
            sync="local-sgd", execution_backend="process-pool", workers=2,
        )
        with pytest.raises(ValueError, match="local-sgd"):
            engine.run("baseline")

    def test_pool_rejects_callable_pipeline(self, tiny_dataset):
        backend = ProcessPoolExecutionBackend(
            SimCluster(tiny_dataset, _config()),
            TrainConfig(epochs=1, hidden_dim=32, seed=1), workers=2,
        )
        try:
            with pytest.raises(ValueError, match="registry pipeline name"):
                backend.prepare(lambda *a, **k: None, PREFETCH, None, None)
        finally:
            backend.close()

    def test_pool_rejects_live_eviction_policy(self, tiny_dataset):
        backend = ProcessPoolExecutionBackend(
            SimCluster(tiny_dataset, _config()),
            TrainConfig(epochs=1, hidden_dim=32, seed=1), workers=2,
        )
        policy = build_eviction_policy("score-threshold", seed=0)
        try:
            with pytest.raises(ValueError, match="eviction-policy"):
                backend.prepare("prefetch", PREFETCH, policy, None)
        finally:
            backend.close()

    def test_serving_engine_rejects_pool(self, tiny_dataset):
        cluster = SimCluster(tiny_dataset, _config())
        tc = TrainConfig(epochs=1, hidden_dim=32, seed=1)
        with pytest.raises(ValueError, match="inline execution backend"):
            build_engine("serving", cluster, tc, serving=ServingSpec(),
                         execution_backend="process-pool")
        with pytest.raises(ValueError, match="worker count"):
            build_engine("serving", cluster, tc, serving=ServingSpec(), workers=2)


class TestCli:
    def test_run_header_prints_backend_and_workers(self, capsys):
        code = main([
            "run", "--cluster", "--scenario", "uniform", "--scale", "0.03",
            "--epochs", "1", "--execution-backend", "process-pool",
            "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=process-pool (2 workers)" in out

    def test_workers_on_inline_exits_2(self, capsys):
        code = main(["run", "--cluster", "--scenario", "uniform", "--workers", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--execution-backend process-pool" in err

    def test_execution_backend_flag_implies_cluster(self, capsys):
        code = main([
            "run", "--scale", "0.03", "--epochs", "1",
            "--execution-backend", "inline",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario 'uniform'" in out
        assert "backend=inline" in out
