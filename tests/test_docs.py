"""Tier-1 docs health: links resolve, anchors exist, scenario catalog in sync.

Runs the same checks as the CI ``docs`` job (``tools/check_docs.py``)
in-process, so a broken docs link or a scenario-registry change without a
regenerated ``docs/SCENARIOS.md`` fails the ordinary test suite too, not just
the dedicated CI job.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


class TestDocsHealth:
    def test_no_broken_links_or_anchors(self):
        problems = check_docs.check_links()
        assert problems == []

    def test_scenario_catalog_in_sync(self):
        problems = check_docs.check_catalog()
        assert problems == []

    def test_required_docs_exist(self):
        for name in ("ARCHITECTURE.md", "EXTENDING.md", "PAPER_MAP.md", "SCENARIOS.md"):
            assert (REPO_ROOT / "docs" / name).exists(), name

    def test_paper_map_covers_every_fig_and_table_bench(self):
        """Every bench_fig*/bench_table* script must appear in PAPER_MAP.md."""
        paper_map = (REPO_ROOT / "docs" / "PAPER_MAP.md").read_text()
        benches = sorted((REPO_ROOT / "benchmarks").glob("bench_fig*.py"))
        benches += sorted((REPO_ROOT / "benchmarks").glob("bench_table*.py"))
        missing = [b.name for b in benches if b.name not in paper_map]
        assert missing == [], f"PAPER_MAP.md is missing {missing}"

    def test_catalog_lists_every_scenario(self):
        src = REPO_ROOT / "src"
        sys.path.insert(0, str(src))
        try:
            from repro.scenarios import available_scenarios
        finally:
            sys.path.pop(0)
        catalog = (REPO_ROOT / "docs" / "SCENARIOS.md").read_text()
        missing = [n for n in available_scenarios() if f"`{n}`" not in catalog]
        assert missing == []


class TestCheckerCatchesProblems:
    """The checker itself must detect what it claims to (meta-tests)."""

    def test_slugging_matches_github_rules(self):
        assert check_docs.github_slug("Layer diagram") == "layer-diagram"
        assert check_docs.github_slug("Fig. 6 — results!") == "fig-6--results"
        assert check_docs.github_slug("`code` heading") == "code-heading"

    def test_broken_link_detected(self, tmp_path, monkeypatch):
        docs = tmp_path / "docs"
        docs.mkdir()
        (tmp_path / "README.md").write_text("[gone](docs/NOPE.md)\n")
        monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
        problems = check_docs.check_links()
        assert len(problems) == 1 and "NOPE.md" in problems[0]

    def test_missing_anchor_detected(self, tmp_path, monkeypatch):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "A.md").write_text("# Real heading\n[x](#not-a-heading)\n")
        (tmp_path / "README.md").write_text("ok\n")
        monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
        problems = check_docs.check_links()
        assert len(problems) == 1 and "not-a-heading" in problems[0]

    def test_links_inside_code_fences_ignored(self, tmp_path, monkeypatch):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "```bash\ncat [not-a-link](missing.md)\n```\n"
        )
        monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
        assert check_docs.check_links() == []
