"""Tests for graph partitioning (METIS-like, random, hash)."""

import numpy as np
import pytest

from repro.graph.partition import (
    PartitionResult,
    balance,
    edge_cut,
    edge_cut_fraction,
    hash_partition,
    metis_partition,
    partition_graph,
    random_partition,
)


class TestPartitionResult:
    def test_sizes(self):
        result = PartitionResult(parts=np.array([0, 1, 0, 1]), num_parts=2)
        np.testing.assert_array_equal(result.sizes(), [2, 2])

    def test_partition_nodes(self):
        result = PartitionResult(parts=np.array([0, 1, 0]), num_parts=2)
        np.testing.assert_array_equal(result.partition_nodes(0), [0, 2])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            PartitionResult(parts=np.array([0, 3]), num_parts=2)


class TestMetrics:
    def test_edge_cut_zero_for_single_partition(self, tiny_graph):
        parts = np.zeros(tiny_graph.num_nodes, dtype=np.int64)
        assert edge_cut(tiny_graph, parts) == 0

    def test_edge_cut_fraction_bounds(self, small_community_graph):
        graph, _ = small_community_graph
        parts = random_partition(graph, 4, seed=0).parts
        frac = edge_cut_fraction(graph, parts)
        assert 0.0 <= frac <= 1.0

    def test_balance_perfect(self):
        parts = np.array([0, 0, 1, 1])
        assert balance(parts, 2) == pytest.approx(1.0)

    def test_balance_imbalanced(self):
        parts = np.array([0, 0, 0, 1])
        assert balance(parts, 2) == pytest.approx(1.5)


class TestBaselinePartitioners:
    def test_random_partition_balanced(self, small_community_graph):
        graph, _ = small_community_graph
        result = random_partition(graph, 4, seed=0)
        sizes = result.sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_hash_partition_deterministic(self, small_community_graph):
        graph, _ = small_community_graph
        a = hash_partition(graph, 4, seed=1)
        b = hash_partition(graph, 4, seed=1)
        np.testing.assert_array_equal(a.parts, b.parts)

    def test_hash_partition_covers_all_parts(self, small_community_graph):
        graph, _ = small_community_graph
        result = hash_partition(graph, 4, seed=0)
        assert set(np.unique(result.parts)) == {0, 1, 2, 3}

    def test_stats_populated(self, small_community_graph):
        graph, _ = small_community_graph
        result = random_partition(graph, 2, seed=0)
        assert "edge_cut_fraction" in result.stats


class TestMetisPartition:
    def test_assigns_every_node(self, small_community_graph):
        graph, _ = small_community_graph
        result = metis_partition(graph, 4, seed=0)
        assert len(result.parts) == graph.num_nodes
        assert set(np.unique(result.parts)) <= {0, 1, 2, 3}

    def test_all_parts_non_empty(self, small_community_graph):
        graph, _ = small_community_graph
        result = metis_partition(graph, 4, seed=0)
        assert np.all(result.sizes() > 0)

    def test_balance_bounded(self, small_community_graph):
        graph, _ = small_community_graph
        result = metis_partition(graph, 4, seed=0)
        assert balance(result.parts, 4) <= 1.6

    def test_beats_random_on_edge_cut(self, small_community_graph):
        """The multilevel partitioner must exploit community structure."""
        graph, _ = small_community_graph
        metis_cut = edge_cut_fraction(graph, metis_partition(graph, 4, seed=0).parts)
        random_cut = edge_cut_fraction(graph, random_partition(graph, 4, seed=0).parts)
        assert metis_cut < random_cut

    def test_single_partition(self, small_community_graph):
        graph, _ = small_community_graph
        result = metis_partition(graph, 1, seed=0)
        assert np.all(result.parts == 0)

    def test_too_many_partitions_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            metis_partition(tiny_graph, tiny_graph.num_nodes + 1)

    def test_deterministic_given_seed(self, small_community_graph):
        graph, _ = small_community_graph
        a = metis_partition(graph, 2, seed=5)
        b = metis_partition(graph, 2, seed=5)
        np.testing.assert_array_equal(a.parts, b.parts)


class TestDispatch:
    @pytest.mark.parametrize("method", ["metis", "random", "hash"])
    def test_partition_graph_dispatch(self, small_community_graph, method):
        graph, _ = small_community_graph
        result = partition_graph(graph, 2, method=method, seed=0)
        assert result.method == method
        assert result.num_parts == 2

    def test_unknown_method(self, tiny_graph):
        with pytest.raises(ValueError):
            partition_graph(tiny_graph, 2, method="bogus")
