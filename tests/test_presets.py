"""Preset tests: committed files round-trip, layering precedence is pinned.

Every ``presets/*.json`` in the repository must load, validate, materialize,
and run a smoke step — a committed preset that drifts from the registries it
names fails here, not at a user's ``repro run --preset``.  The three-layer
merge the preset loader introduces (scenario recipe -> preset -> CLI flags)
is pinned: ``with_overrides`` composes associatively and CLI beats preset
beats scenario.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios.registry import SCENARIOS
from repro.training.config import TrainConfig
from repro.training.engines import ENGINES
from repro.tuning import (
    Preset,
    available_presets,
    default_presets_dir,
    load_preset,
)

SCALE = 0.05

COMMITTED = available_presets()


def test_repository_ships_presets():
    assert len(COMMITTED) >= 3
    assert "throughput-straggler" in COMMITTED
    assert "low-p99-serving" in COMMITTED


@pytest.mark.parametrize("name", COMMITTED)
def test_committed_preset_loads_and_validates(name):
    preset = load_preset(name)
    assert preset.name == name
    assert preset.scenario in SCENARIOS.names()
    assert preset.overrides  # a preset with no overrides froze nothing
    assert preset.spec_hash
    # provenance: the tuner recorded a strict win over the scenario default
    assert preset.improvement_percent is not None
    assert preset.improvement_percent > 0


@pytest.mark.parametrize("name", COMMITTED)
def test_committed_preset_file_is_canonical_json(name):
    path = default_presets_dir() / f"{name}.json"
    raw = path.read_text()
    preset = load_preset(name)
    assert preset.to_json() == raw  # byte-stable: load -> dump is the identity


@pytest.mark.parametrize("name", COMMITTED)
def test_committed_preset_materializes_and_runs_smoke(name):
    preset = load_preset(name)
    scenario = preset.apply().with_overrides(scale=SCALE)
    if ENGINES.resolve(scenario.engine) == "serving":
        scenario = scenario.with_overrides(
            serving=scenario.serving.with_overrides(num_requests=64),
        )
        report = scenario.materialize(seed=0).run()
        assert report.latency_ms()["p99"] > 0
    else:
        scenario = scenario.with_overrides(epochs=1)
        workload = scenario.materialize(
            seed=0, train_config=TrainConfig(epochs=1, hidden_dim=32, seed=0),
        )
        report = workload.run()
        assert report.critical_path_time_s > 0


def test_round_trip_through_dict_and_file(tmp_path):
    preset = Preset(
        name="rt", scenario="straggler-machine",
        overrides=(("engine", "async"), ("sync", "bounded-staleness")),
        objective="critical-path-s", score=1.0, baseline_score=2.0,
        improvement_percent=50.0, spec_hash="cafe",
    )
    clone = Preset.from_dict(json.loads(preset.to_json()))
    assert clone == preset
    path = preset.save(tmp_path)
    assert path == tmp_path / "rt.json"
    assert load_preset(path) == preset
    assert load_preset("rt", presets_dir=tmp_path) == preset
    assert available_presets(tmp_path) == ["rt"]


def test_unknown_fields_rejected_like_with_overrides():
    payload = json.loads(load_preset(COMMITTED[0]).to_json())
    payload["turbo"] = True
    with pytest.raises(ValueError, match="unknown preset fields.*turbo"):
        Preset.from_dict(payload)


def test_bad_override_and_names_rejected_at_load(tmp_path):
    good = load_preset(COMMITTED[0])
    payload = json.loads(good.to_json())
    payload["overrides"] = {"sylo": 3}
    (tmp_path / "bad.json").write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="unknown tuning axis"):
        load_preset("bad", presets_dir=tmp_path)
    payload["overrides"] = {"sync": "warp-speed"}
    (tmp_path / "bad2.json").write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="valid names"):
        load_preset("bad2", presets_dir=tmp_path)


def test_unknown_preset_name_lists_available():
    with pytest.raises(ValueError, match="available presets"):
        load_preset("no-such-preset")


def test_malformed_preset_file(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_preset(path)
    path2 = tmp_path / "list.json"
    path2.write_text("[1, 2]\n")
    with pytest.raises(ValueError, match="JSON object"):
        load_preset(path2)


# --------------------------------------------------------------------------- #
# Three-layer merge: associativity and precedence
# --------------------------------------------------------------------------- #
def test_with_overrides_composes_associatively():
    """Chained scenario -> preset -> CLI must equal the merged override set.

    Regression: resizing ``compute_multipliers`` used to run only when
    ``num_machines`` arrived *without* multipliers in the same call, so the
    chained and merged forms disagreed on the vector length.
    """
    base = SCENARIOS.build("straggler-machine")  # multipliers (2.5, 1.0)
    chained = (base.with_overrides(compute_multipliers=(3.0, 1.0))
                   .with_overrides(num_machines=3))
    merged = base.with_overrides(compute_multipliers=(3.0, 1.0), num_machines=3)
    assert chained == merged
    assert merged.compute_multipliers == (3.0, 1.0, 1.0)
    assert len(merged.compute_multipliers) == merged.num_machines


def test_with_overrides_shrink_and_grow_stay_aligned():
    base = SCENARIOS.build("straggler-machine")
    shrunk = base.with_overrides(num_machines=1, compute_multipliers=(2.5, 1.0, 9.0))
    assert shrunk.compute_multipliers == (2.5,)
    grown = base.with_overrides(num_machines=4)
    assert grown.compute_multipliers == (2.5, 1.0, 1.0, 1.0)


def test_precedence_cli_beats_preset_beats_scenario():
    preset = load_preset("throughput-straggler")
    scenario = SCENARIOS.build(preset.scenario)     # layer 1: recipe
    with_preset = preset.apply()                    # layer 2: preset
    overrides = dict(preset.overrides)
    assert "sync" in overrides
    assert with_preset.sync == overrides["sync"] != scenario.sync
    final = with_preset.with_overrides(sync="local-sgd", epochs=1)  # layer 3: CLI
    assert final.sync == "local-sgd"                # CLI beat the preset
    assert final.engine == with_preset.engine       # untouched preset field survives
    assert final.epochs == 1
    assert final.dataset == scenario.dataset        # untouched recipe field survives


def test_preset_apply_rejects_drifted_axes(tmp_path):
    # a preset whose overrides name a registry value that later disappeared
    # must fail at load time with the registry's own error
    payload = {
        "name": "drifted", "scenario": "uniform",
        "overrides": {"cache.scorer": "gone-scorer"},
        "objective": "critical-path-s",
    }
    (tmp_path / "drifted.json").write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="valid names"):
        load_preset("drifted", presets_dir=tmp_path)
