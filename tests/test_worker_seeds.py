"""Tests for worker-process seed derivation (``SeedSequence.spawn`` by rank).

Pool workers get :func:`~repro.utils.rng.spawn_worker_seed`, which spawns
statistically independent child sequences — unlike ``seed + rank`` arithmetic
where adjacent ranks land on adjacent states of the same stream.  Per-trainer
determinism does NOT depend on these seeds (nothing on the deterministic path
consumes them — the inline/pool differentials in
``tests/test_execution_backends.py`` pin per-trainer stream identity); they
are hygiene for any global-RNG consumer inside a worker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import spawn_worker_seed


class TestSpawnWorkerSeed:
    def test_deterministic_and_stable_across_pool_sizes(self):
        # Rank k's seed never depends on how many workers exist in total.
        assert spawn_worker_seed(7, 3) == spawn_worker_seed(7, 3)
        full = [spawn_worker_seed(7, rank) for rank in range(8)]
        assert full[2] == spawn_worker_seed(7, 2)

    def test_distinct_across_ranks_and_seeds(self):
        seeds = {spawn_worker_seed(7, rank) for rank in range(16)}
        assert len(seeds) == 16
        assert spawn_worker_seed(7, 0) != spawn_worker_seed(8, 0)

    def test_accepts_seed_sequence_and_none(self):
        seq = np.random.SeedSequence(7)
        assert spawn_worker_seed(seq, 1) == spawn_worker_seed(7, 1)
        assert spawn_worker_seed(None, 0) == spawn_worker_seed(0, 0)

    def test_negative_rank_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_worker_seed(7, -1)

    def test_range_fits_legacy_seeders(self):
        for rank in range(32):
            seed = spawn_worker_seed(123, rank)
            assert 0 <= seed < 2**63 - 1

    def test_adjacent_rank_streams_uncorrelated(self):
        """Streams of adjacent ranks show no linear correlation.

        This is the property ``seed + rank`` seeding lacks for some
        generators; SeedSequence children are independent by construction.
        """
        draws = [
            np.random.default_rng(spawn_worker_seed(7, rank)).random(4096)
            for rank in range(4)
        ]
        for a in range(4):
            for b in range(a + 1, 4):
                corr = np.corrcoef(draws[a], draws[b])[0, 1]
                assert abs(corr) < 0.08, (a, b, corr)
