"""Pickle audit: every spec object a pool worker receives must round-trip.

The process-pool execution backend ships a :class:`~repro.training.backends.
TrainerTask` to worker processes; everything reachable from it — the config
and spec dataclasses, registry recipes, shared-memory handles — must survive
``pickle.loads(pickle.dumps(x)) == x`` under any start method (``spawn``
inherits nothing, so equality after the round trip is the whole contract).
A config that pickles by reference to live state fails here first, not as a
hang inside a worker.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cache.config import CacheConfig
from repro.core.config import PrefetchConfig
from repro.distributed.cluster import ClusterConfig
from repro.distributed.cost_model import CostModel
from repro.events.schedule import CongestionSpec, ElasticSpec, FailureSpec
from repro.graph.csr import SharedCSRHandle
from repro.graph.datasets import DatasetSpec, load_dataset
from repro.scenarios import SCENARIOS
from repro.serving.arrivals import ServingSpec
from repro.training.backends import TrainerTask
from repro.training.config import TrainConfig
from repro.tuning import Preset

SPEC_OBJECTS = {
    "cluster-config": ClusterConfig(
        num_machines=2, trainers_per_machine=2, batch_size=64,
        fanouts=(5, 10), seed=7,
    ),
    "cluster-config-loaded": ClusterConfig(
        num_machines=3, trainers_per_machine=1, batch_size=32, fanouts=(4,),
        seed=3, compute_multipliers=(2.0, 1.0, 1.0), sampler="vectorized",
        rpc="batched", congestion=CongestionSpec(),
    ),
    "train-config": TrainConfig(epochs=2, hidden_dim=32, seed=1, evaluate=True),
    "prefetch-config": PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=8),
    "cache-config": CacheConfig(tiers=2, admission="always", eviction="lru"),
    "cost-model-cpu": CostModel.preset("cpu"),
    "cost-model-gpu-scaled": CostModel.preset("gpu").scaled(rpc_latency_s=2.0),
    "failure-spec": FailureSpec(rate=0.05),
    "congestion-spec": CongestionSpec(),
    "elastic-spec": ElasticSpec(
        initially_inactive=(1, 3), joins=((1, 1.0e-3), (3, 1.0e-3)),
        leaves=((0, 2.0e-3),), cache_policy="warm",
    ),
    "serving-spec": ServingSpec(),
    "dataset-spec": load_dataset("arxiv", scale=0.1, seed=0).spec,
    "shared-csr-handle": SharedCSRHandle(
        indptr_path="/tmp/x_indptr.npy", indices_path="/tmp/x_indices.npy",
        num_nodes=8,
    ),
    "tune-preset": Preset(
        name="audit", scenario="straggler-machine",
        overrides=(("engine", "async"), ("sync", "bounded-staleness")),
        objective="critical-path-s", score=0.0044, baseline_score=0.0047,
        improvement_percent=7.0, seed=0, strategy="grid", spec_hash="abc123",
    ),
}


@pytest.mark.parametrize("name", sorted(SPEC_OBJECTS))
def test_spec_round_trips(name):
    obj = SPEC_OBJECTS[name]
    clone = pickle.loads(pickle.dumps(obj))
    assert clone == obj
    assert type(clone) is type(obj)


def test_dataset_spec_type():
    assert isinstance(SPEC_OBJECTS["dataset-spec"], DatasetSpec)


def test_tune_report_round_trips():
    """A ranked TuneReport (candidates and all) survives pickling."""
    from repro.tuning.runner import CandidateResult, TuneReport

    report = TuneReport(
        scenario="straggler-machine", objective="critical-path-s",
        direction="min", strategy="grid", budget=None, seed=0,
        scale=0.05, epochs=1,
        space=(("sync", ("allreduce-barrier", "bounded-staleness")),),
        baseline_score=0.0047,
        evaluated=((("sync", "allreduce-barrier"),), (("sync", "bounded-staleness"),)),
        candidates=(
            CandidateResult(rank=1, overrides=(("sync", "bounded-staleness"),),
                            score=0.0044, improvement_percent=7.0),
            CandidateResult(rank=2, overrides=(("sync", "allreduce-barrier"),),
                            score=0.0047, improvement_percent=0.0),
        ),
        spec_hash="abc123",
    )
    clone = pickle.loads(pickle.dumps(report))
    assert clone == report
    assert clone.best == report.candidates[0]
    assert clone.canonical_json() == report.canonical_json()


@pytest.mark.parametrize("name", SCENARIOS.names())
def test_registered_scenarios_round_trip(name):
    scenario = SCENARIOS.build(name)
    assert pickle.loads(pickle.dumps(scenario)) == scenario


def test_checkpoint_artifacts_round_trip():
    """Every checkpoint artifact survives pickling (restore-on-recovery payloads)."""
    import numpy as np

    from repro.training.checkpoint import ClusterCheckpoint, TrainerCheckpoint

    cluster_ckpt = ClusterCheckpoint(
        step=3,
        time_s=1.5e-3,
        model_state={"w0": np.arange(6, dtype=np.float64).reshape(2, 3)},
        optimizer_state={"velocity": {"w0": np.ones((2, 3))}},
    )
    trainer_ckpt = TrainerCheckpoint(
        rank=1,
        clock_state={"time": 2.0e-3, "components": {"compute": 1.0e-3}},
        loader_state={
            "step": 4,
            "sampler_rng_state": {"state": 1},
            "seed_iterator": {
                "epochs_started": 1, "rng_state": {"state": 2},
                "order": np.arange(8), "cursor": 4, "limit": 8, "mid_epoch": True,
            },
        },
    )
    for obj in (cluster_ckpt, trainer_ckpt):
        clone = pickle.loads(pickle.dumps(obj))
        assert clone == obj
        assert type(clone) is type(obj)


def test_trainer_task_round_trips(tmp_path):
    """A fully loaded TrainerTask (the actual worker payload) round-trips."""
    import numpy as np

    from repro.distributed.cluster import SimCluster
    from repro.features.shared import export_shared_dataset
    from repro.utils.rng import spawn_worker_seed

    dataset = load_dataset("arxiv", scale=0.1, seed=0)
    cluster = SimCluster(dataset, SPEC_OBJECTS["cluster-config"])
    payloads = {pid: store.shared_arrays() for pid, store in cluster.servers.items()}
    handle = export_shared_dataset(
        dataset, cluster.partition_result, payloads, str(tmp_path)
    )
    task = TrainerTask(
        worker_index=1, num_workers=2, machines=(1,), ranks=(2, 3),
        cluster_config=SPEC_OBJECTS["cluster-config"],
        train_config=SPEC_OBJECTS["train-config"],
        pipeline="massivegnn",
        prefetch_config=SPEC_OBJECTS["prefetch-config"],
        cache_config=SPEC_OBJECTS["cache-config"],
        cost_model=SPEC_OBJECTS["cost-model-cpu"],
        dataset=handle,
        worker_seed=spawn_worker_seed(7, 1),
    )
    clone = pickle.loads(pickle.dumps(task))
    assert clone == task
    # The nested dataset handle must also round-trip on its own.
    assert pickle.loads(pickle.dumps(handle)) == handle
    assert isinstance(clone.worker_seed, int)
    assert np.array_equal(clone.machines, task.machines)
