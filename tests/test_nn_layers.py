"""Tests for tensor utilities, dense layers, losses, and optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Module, Parameter
from repro.nn.loss import accuracy, cross_entropy, softmax, top_k_accuracy
from repro.nn.optim import Adam, SGD, build_optimizer
from repro.nn import tensor_utils as tu


class TestSegmentOps:
    def test_segment_sum(self):
        values = np.array([[1.0], [2.0], [3.0]])
        out = tu.segment_sum(values, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out, [[3.0], [3.0]])

    def test_segment_mean(self):
        values = np.array([[2.0], [4.0], [6.0]])
        out = tu.segment_mean(values, np.array([0, 0, 1]), 3)
        np.testing.assert_allclose(out, [[3.0], [6.0], [0.0]])

    def test_segment_mean_backward_matches_numerical(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(6, 3)).astype(np.float64)
        seg = np.array([0, 0, 1, 1, 1, 2])
        grad_out = rng.normal(size=(3, 3))

        # numerical gradient of sum(grad_out * segment_mean(values))
        def f(v):
            return np.sum(grad_out * tu.segment_mean(v, seg, 3))

        analytic = tu.segment_mean_backward(grad_out, seg, 3)
        eps = 1e-6
        for i in (0, 3, 5):
            for j in range(3):
                plus = values.copy(); plus[i, j] += eps
                minus = values.copy(); minus[i, j] -= eps
                num = (f(plus) - f(minus)) / (2 * eps)
                assert num == pytest.approx(analytic[i, j], rel=1e-4, abs=1e-6)

    def test_segment_softmax_normalizes(self):
        scores = np.array([[1.0], [2.0], [3.0], [0.5]])
        seg = np.array([0, 0, 1, 1])
        alpha = tu.segment_softmax(scores, seg, 2)
        assert alpha[:2].sum() == pytest.approx(1.0)
        assert alpha[2:].sum() == pytest.approx(1.0)

    def test_segment_softmax_stable_for_large_scores(self):
        scores = np.array([[1000.0], [1001.0]])
        alpha = tu.segment_softmax(scores, np.array([0, 0]), 1)
        assert np.all(np.isfinite(alpha))
        assert alpha.sum() == pytest.approx(1.0)

    def test_segment_softmax_backward_matches_numerical(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=(5, 2))
        seg = np.array([0, 0, 0, 1, 1])
        grad_alpha = rng.normal(size=(5, 2))

        def f(s):
            return np.sum(grad_alpha * tu.segment_softmax(s, seg, 2))

        alpha = tu.segment_softmax(scores, seg, 2)
        analytic = tu.segment_softmax_backward(grad_alpha, alpha, seg, 2)
        eps = 1e-6
        for i in range(5):
            for j in range(2):
                plus = scores.copy(); plus[i, j] += eps
                minus = scores.copy(); minus[i, j] -= eps
                num = (f(plus) - f(minus)) / (2 * eps)
                assert num == pytest.approx(analytic[i, j], rel=1e-4, abs=1e-6)

    def test_empty_softmax(self):
        out = tu.segment_softmax(np.zeros((0, 2)), np.zeros(0, dtype=np.int64), 3)
        assert out.shape == (0, 2)

    def test_activations(self):
        x = np.array([-1.0, 0.5])
        np.testing.assert_allclose(tu.relu(x), [0.0, 0.5])
        np.testing.assert_allclose(tu.leaky_relu(x, 0.1), [-0.1, 0.5])
        np.testing.assert_allclose(tu.relu_backward(np.ones(2), x), [0.0, 1.0])
        np.testing.assert_allclose(tu.leaky_relu_backward(np.ones(2), x, 0.1), [0.1, 1.0])

    def test_xavier_shapes_and_scale(self):
        w = tu.xavier_uniform((100, 50), seed=0)
        assert w.shape == (100, 50)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit + 1e-6)


class TestModuleAndLinear:
    def test_named_parameters_nested(self):
        class Net(Module):
            def __init__(self):
                self.fc1 = Linear(4, 3, seed=0)
                self.fc2 = Linear(3, 2, seed=1)

        net = Net()
        names = set(net.named_parameters().keys())
        assert names == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}
        assert net.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_state_dict_roundtrip(self):
        a = Linear(4, 3, seed=0)
        b = Linear(4, 3, seed=1)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.value, b.weight.value)

    def test_state_dict_mismatch_raises(self):
        a = Linear(4, 3, seed=0)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((4, 3))})

    def test_linear_forward_backward_gradcheck(self):
        rng = np.random.default_rng(0)
        layer = Linear(5, 3, seed=0)
        x = rng.normal(size=(7, 5)).astype(np.float32)
        grad_out = rng.normal(size=(7, 3)).astype(np.float32)
        layer.forward(x)
        grad_x = layer.backward(grad_out)

        eps = 1e-3
        # check dL/dW numerically for a few entries (L = sum(grad_out * forward(x)))
        for (i, j) in [(0, 0), (2, 1), (4, 2)]:
            w = layer.weight.value
            orig = w[i, j]
            w[i, j] = orig + eps
            lp = np.sum(grad_out * (x @ w + layer.bias.value))
            w[i, j] = orig - eps
            lm = np.sum(grad_out * (x @ w + layer.bias.value))
            w[i, j] = orig
            num = (lp - lm) / (2 * eps)
            assert num == pytest.approx(layer.weight.grad[i, j], rel=1e-2, abs=1e-2)
        # dL/dx
        np.testing.assert_allclose(grad_x, grad_out @ layer.weight.value.T, rtol=1e-5)

    def test_zero_grad(self):
        layer = Linear(3, 2, seed=0)
        layer.forward(np.ones((1, 3), dtype=np.float32))
        layer.backward(np.ones((1, 2), dtype=np.float32))
        assert np.any(layer.weight.grad != 0)
        layer.zero_grad()
        assert np.all(layer.weight.grad == 0)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2).backward(np.zeros((1, 2)))

    def test_parameter_repr(self):
        p = Parameter(np.zeros((2, 2)))
        assert "shape" in repr(p)


class TestLoss:
    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(5, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), rtol=1e-6)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, grad = cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-4
        assert np.all(np.abs(grad) < 1e-4)

    def test_cross_entropy_gradient_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 3, 2, 1])
        _, grad = cross_entropy(logits, labels)
        eps = 1e-5
        for i, j in [(0, 0), (1, 3), (3, 4)]:
            plus = logits.copy(); plus[i, j] += eps
            minus = logits.copy(); minus[i, j] -= eps
            num = (cross_entropy(plus, labels)[0] - cross_entropy(minus, labels)[0]) / (2 * eps)
            assert num == pytest.approx(grad[i, j], rel=1e-3, abs=1e-6)

    def test_cross_entropy_empty(self):
        loss, grad = cross_entropy(np.zeros((0, 3)), np.zeros(0, dtype=np.int64))
        assert loss == 0.0 and grad.shape == (0, 3)

    def test_cross_entropy_label_out_of_range(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((1, 2)), np.array([5]))

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
        assert accuracy(np.array([0, 1]), np.array([0, 0])) == pytest.approx(0.5)
        assert accuracy(np.zeros((0, 2)), np.zeros(0, dtype=np.int64)) == 0.0

    def test_top_k_accuracy(self):
        logits = np.array([[0.1, 0.5, 0.4], [0.9, 0.3, 0.05]])
        # Row 0: top-2 = {1, 2} so label 2 is covered; row 1: top-2 = {0, 1} so label 2 is not.
        assert top_k_accuracy(logits, np.array([2, 2]), k=2) == pytest.approx(0.5)
        assert top_k_accuracy(logits, np.array([1, 0]), k=1) == pytest.approx(1.0)
        assert top_k_accuracy(logits, np.array([2, 2]), k=5) == pytest.approx(1.0)


class TestOptimizers:
    def _quadratic_problem(self):
        # Minimize ||x - target||^2 -> gradient 2*(x - target)
        target = np.array([1.0, -2.0, 3.0], dtype=np.float32)
        params = {"x": np.zeros(3, dtype=np.float32)}
        return params, target

    def test_sgd_converges(self):
        params, target = self._quadratic_problem()
        opt = SGD(lr=0.1)
        for _ in range(200):
            grads = {"x": 2 * (params["x"] - target)}
            opt.step(params, grads)
        np.testing.assert_allclose(params["x"], target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        params, target = self._quadratic_problem()
        opt = SGD(lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.step(params, {"x": 2 * (params["x"] - target)})
        np.testing.assert_allclose(params["x"], target, atol=1e-2)

    def test_adam_converges(self):
        params, target = self._quadratic_problem()
        opt = Adam(lr=0.1)
        for _ in range(300):
            opt.step(params, {"x": 2 * (params["x"] - target)})
        np.testing.assert_allclose(params["x"], target, atol=1e-2)

    def test_weight_decay_shrinks_params(self):
        params = {"x": np.array([10.0], dtype=np.float32)}
        opt = SGD(lr=0.1, weight_decay=0.5)
        opt.step(params, {"x": np.zeros(1, dtype=np.float32)})
        assert params["x"][0] < 10.0

    def test_updates_in_place(self):
        params = {"x": np.array([1.0], dtype=np.float32)}
        view = params["x"]
        SGD(lr=0.5).step(params, {"x": np.array([1.0], dtype=np.float32)})
        assert view[0] == pytest.approx(0.5)

    def test_key_mismatch_raises(self):
        with pytest.raises(KeyError):
            SGD(lr=0.1).step({"x": np.zeros(1)}, {"y": np.zeros(1)})

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            SGD(lr=-1.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.5)

    def test_build_optimizer(self):
        assert isinstance(build_optimizer("sgd", 0.1), SGD)
        assert isinstance(build_optimizer("adam", 0.1), Adam)
        with pytest.raises(ValueError):
            build_optimizer("rmsprop", 0.1)
