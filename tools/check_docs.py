"""Docs health checker: link/anchor validation + scenario-catalog drift.

Two checks, runnable independently or together (both by default):

* ``--links`` — every relative link and image in ``docs/*.md`` and
  ``README.md`` must point at a file that exists in the repository, and every
  intra-document anchor (``[...](#section)`` or ``FILE.md#section``) must
  match a heading in the target document (GitHub slug rules: lowercase,
  punctuation stripped, spaces to dashes).  External ``http(s)://`` links are
  not fetched — CI must stay hermetic.
* ``--catalog`` — ``docs/SCENARIOS.md`` must equal the output of
  ``repro scenarios --markdown`` exactly; a mismatch means the scenario
  registry changed without the committed catalog being regenerated.

Run::

    PYTHONPATH=src python tools/check_docs.py

Exit code 0 when clean; 1 with a per-finding report otherwise.  Wired into
the CI ``docs`` job and, in-process, into ``tests/test_docs.py``.
"""

from __future__ import annotations

import argparse
import functools
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) — excluding images is unnecessary: image targets are files too.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (lowercase, punctuation out, dashes)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def markdown_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


@functools.lru_cache(maxsize=None)
def headings_of(path: Path) -> "tuple[str, ...]":
    """Heading slugs of *path* (cached: documents are anchor-checked per link)."""
    slugs: List[str] = []
    in_fence = False
    for line in path.read_text().splitlines():
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            slugs.append(github_slug(match.group(2)))
    return tuple(slugs)


def links_of(path: Path) -> List[str]:
    links: List[str] = []
    in_fence = False
    for line in path.read_text().splitlines():
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        links.extend(_LINK_RE.findall(line))
    return links


def check_links() -> List[str]:
    """Broken relative links/anchors across README.md and docs/*.md."""
    problems: List[str] = []
    for doc in markdown_files():
        for target in links_of(doc):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            rel = doc.relative_to(REPO_ROOT)
            path_part, _, anchor = target.partition("#")
            if path_part:
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    problems.append(f"{rel}: broken link -> {target}")
                    continue
                anchor_doc = resolved
            else:
                anchor_doc = doc  # pure intra-document anchor
            if anchor and anchor_doc.suffix == ".md":
                if github_slug(anchor) not in headings_of(anchor_doc):
                    problems.append(
                        f"{rel}: missing anchor #{anchor} in {anchor_doc.name}"
                    )
    return problems


def check_catalog() -> List[str]:
    """docs/SCENARIOS.md must match `repro scenarios --markdown` exactly."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.scenarios import catalog_markdown
    finally:
        sys.path.pop(0)
    committed_path = REPO_ROOT / "docs" / "SCENARIOS.md"
    if not committed_path.exists():
        return ["docs/SCENARIOS.md is missing; generate it with "
                "`PYTHONPATH=src python -m repro scenarios --markdown > docs/SCENARIOS.md`"]
    committed = committed_path.read_text()
    fresh = catalog_markdown() + "\n"
    if committed != fresh:
        return ["docs/SCENARIOS.md drifted from the scenario registry; regenerate "
                "with `PYTHONPATH=src python -m repro scenarios --markdown > "
                "docs/SCENARIOS.md` and commit it with the scenario change"]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links", action="store_true", help="run only the link check")
    parser.add_argument("--catalog", action="store_true",
                        help="run only the scenario-catalog drift check")
    args = parser.parse_args(argv)
    run_links = args.links or not args.catalog
    run_catalog = args.catalog or not args.links

    problems: List[Tuple[str, str]] = []
    if run_links:
        problems += [("links", p) for p in check_links()]
    if run_catalog:
        problems += [("catalog", p) for p in check_catalog()]

    if problems:
        for kind, message in problems:
            print(f"[{kind}] {message}", file=sys.stderr)
        print(f"FAIL: {len(problems)} docs problem(s)", file=sys.stderr)
        return 1
    checked = len(markdown_files()) if run_links else 0
    print(f"docs ok ({checked} markdown files link-checked"
          f"{', catalog in sync' if run_catalog else ''})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
