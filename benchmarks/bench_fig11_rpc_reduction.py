"""Fig. 11: remote nodes fetched and communication time, prefetch vs. baseline.

The paper measures a 15% (products) to 23% (papers) reduction in remote nodes
requested per trainer, and a ~44-50% reduction in the communication time
stalled on RPC (Eq. 9), even after accounting for the extra fetches needed to
replace evicted nodes.  This benchmark reports both quantities from the RPC
channel counters of the two pipelines.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_dataset, run_pair, save_table
from repro.core.config import PrefetchConfig
from repro.perf.model import communication_stall_time

PREFETCH = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16)


@pytest.mark.benchmark(group="fig11")
def test_fig11_rpc_reduction(benchmark, bench_scale, bench_epochs):
    datasets = {
        "products": bench_dataset("products", scale=bench_scale, seed=8),
        "papers": bench_dataset("papers", scale=min(bench_scale, 0.15), seed=8),
    }

    def run_all():
        return {
            name: run_pair(ds, 2, "cpu", bench_epochs, PREFETCH, seed=8)
            for name, ds in datasets.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, reports in results.items():
        base, prefetch = reports["baseline"], reports["prefetch"]
        base_nodes = base.remote_nodes_fetched()
        pref_nodes = prefetch.remote_nodes_fetched()
        node_reduction = 100.0 * (base_nodes - pref_nodes) / max(base_nodes, 1)
        base_comm = communication_stall_time(
            base.component_breakdown["rpc"], base.component_breakdown["copy"]
        )
        pref_comm = communication_stall_time(
            prefetch.component_breakdown["rpc"], prefetch.component_breakdown["copy"]
        )
        comm_reduction = 100.0 * (base_comm - pref_comm) / max(base_comm, 1e-12)
        rows.append(
            [name, base_nodes, pref_nodes, round(node_reduction, 1),
             round(base_comm, 4), round(pref_comm, 4), round(comm_reduction, 1)]
        )
    save_table(
        "fig11_rpc_reduction",
        ["dataset", "remote nodes (baseline)", "remote nodes (prefetch)", "node reduction %",
         "comm time baseline s", "comm time prefetch s", "comm reduction %"],
        rows,
        notes=(
            "Fig. 11 analog: remote node fetches and communication stall time (Eq. 9), per trainer averages.\n"
            "Paper shape: double-digit percent fewer remote nodes and a large communication-time reduction,\n"
            "even counting the replacement fetches made by eviction rounds."
        ),
    )

    for name, reports in results.items():
        assert reports["prefetch"].remote_nodes_fetched() < reports["baseline"].remote_nodes_fetched()
