"""Fig. 14: peak memory of baseline vs. prefetch under an extreme configuration.

The paper measures tracemalloc peaks with f_h = 0.5 and eviction on every
minibatch (Δ = 1): initialization grows by ~500 MB/trainer (buffer +
scoreboards) while the training-phase peak only rises ~10% over DistDGL.
This benchmark repeats the methodology on the scaled papers analog.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_cluster_config, bench_dataset, save_table
from repro.core.config import PrefetchConfig
from repro.training.config import TrainConfig
from repro.training.memory import compare_memory


@pytest.mark.benchmark(group="fig14")
def test_fig14_peak_memory(benchmark, bench_scale):
    dataset = bench_dataset("papers", scale=min(bench_scale, 0.15), seed=11)

    def run_profiles():
        return compare_memory(
            dataset,
            prefetch_config=PrefetchConfig(halo_fraction=0.5, delta=1, gamma=0.95),
            cluster_config=bench_cluster_config(2, batch_size=128, seed=11),
            train_config=TrainConfig(epochs=2, hidden_dim=32, max_steps_per_epoch=4, seed=11),
        )

    profiles = benchmark.pedantic(run_profiles, rounds=1, iterations=1)
    base, pref = profiles["baseline"], profiles["prefetch"]

    rows = [
        ["baseline", round(base.init_peak_bytes / 1e6, 2), round(base.train_peak_bytes / 1e6, 2)],
        ["prefetch (f_h=0.5, Δ=1)", round(pref.init_peak_bytes / 1e6, 2), round(pref.train_peak_bytes / 1e6, 2)],
        ["prefetch / baseline ratio",
         round(pref.init_peak_bytes / max(base.init_peak_bytes, 1), 2),
         round(pref.train_peak_bytes / max(base.train_peak_bytes, 1), 2)],
    ]
    save_table(
        "fig14_peak_memory",
        ["pipeline", "init peak MB", "train peak MB"],
        rows,
        notes=(
            "Fig. 14 analog: tracemalloc peak allocations, extreme configuration (f_h=0.5, Δ=1, γ=0.95).\n"
            "Paper shape: prefetching adds a visible one-time initialization footprint but only a\n"
            "modest (~10%) increase in the training-phase peak."
        ),
    )

    # Shape check: training-phase peak does not explode.
    assert pref.train_peak_bytes < 3.0 * base.train_peak_bytes
