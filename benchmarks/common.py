"""Helpers shared by the benchmark modules: run wrappers and result tables.

The paper's hardware scale (2–64 Perlmutter nodes, 4 trainers each, 100
epochs) is reduced to laptop scale here: 2–8 simulated machines, 1–4 trainers
per machine, a handful of epochs, and scaled-down dataset analogs.  The
quantities each benchmark reports are the same *relative* quantities the paper
reports (percent improvement, hit rate, percent RPC reduction, overlap
efficiency), so the shapes are directly comparable even though the absolute
numbers are not.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Sequence

from repro.core.config import PrefetchConfig
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.cost_model import CostModel
from repro.graph.datasets import GraphDataset, load_dataset
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine
from repro.training.telemetry import TrainingReport
from repro.utils.logging_utils import format_table

RESULTS_DIR = Path(__file__).parent / "results"

# Benchmark-scale stand-ins for the paper's "#nodes" (machines) axis.
MACHINE_CONFIGS = (2, 4)
TRAINERS_PER_MACHINE = 2
DEFAULT_FANOUTS = (5, 10)
# Small batches give every trainer enough minibatches per epoch to amortize the
# prefetcher's one-time initialization and first-minibatch costs, mirroring the
# paper's hundreds of minibatches per trainer.
DEFAULT_BATCH = 64


def bench_cluster_config(
    num_machines: int,
    backend: str = "cpu",
    batch_size: int = DEFAULT_BATCH,
    trainers_per_machine: int = TRAINERS_PER_MACHINE,
    seed: int = 0,
) -> ClusterConfig:
    """Cluster topology used across the benchmark suite."""
    return ClusterConfig(
        num_machines=num_machines,
        trainers_per_machine=trainers_per_machine,
        batch_size=batch_size,
        fanouts=DEFAULT_FANOUTS,
        backend=backend,
        seed=seed,
    )


def bench_dataset(name: str, scale: float, seed: int = 0) -> GraphDataset:
    """Load one of the paper's dataset analogs at benchmark scale."""
    return load_dataset(name, scale=scale, seed=seed)


def run_pair(
    dataset: GraphDataset,
    num_machines: int,
    backend: str,
    epochs: int,
    prefetch_config: PrefetchConfig,
    *,
    arch: str = "sage",
    num_heads: int = 2,
    batch_size: int = DEFAULT_BATCH,
    seed: int = 0,
    include_no_eviction: bool = False,
) -> Dict[str, TrainingReport]:
    """Run baseline / (optionally) prefetch-no-evict / prefetch-evict on one cluster."""
    cluster = SimCluster(
        dataset,
        bench_cluster_config(num_machines, backend=backend, batch_size=batch_size, seed=seed),
        cost_model=CostModel.preset(backend),
    )
    engine = TrainingEngine(
        cluster,
        TrainConfig(epochs=epochs, arch=arch, hidden_dim=32, num_heads=num_heads, seed=seed),
    )
    out: Dict[str, TrainingReport] = {"baseline": engine.run_baseline()}
    if include_no_eviction:
        out["prefetch_no_evict"] = engine.run_prefetch(prefetch_config.without_eviction())
    out["prefetch"] = engine.run_prefetch(prefetch_config)
    return out


def save_table(
    name: str, headers: Sequence[str], rows: Iterable[Sequence[object]], notes: str = ""
) -> str:
    """Render, print, and persist a paper-style result table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    table = format_table(headers, rows)
    text = table if not notes else f"{notes}\n\n{table}"
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
    return text
