"""Ablation benchmarks for the design choices DESIGN.md calls out.

Two questions the paper motivates but does not ablate directly:

1. **Eviction policy** — does the scored (S_E/S_A) policy actually beat
   simpler LRU / random / no-eviction policies at equal buffer size?
2. **Partition quality** — how much of the prefetcher's benefit depends on
   METIS-quality partitions vs. random partitions (which create far more halo
   traffic)?
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_cluster_config, bench_dataset, save_table
from repro.core.config import PrefetchConfig
from repro.core.eviction import build_eviction_policy
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine


@pytest.mark.benchmark(group="ablation")
def test_ablation_eviction_policies(benchmark, bench_scale, bench_epochs):
    dataset = bench_dataset("products", scale=bench_scale, seed=15)
    config = PrefetchConfig(halo_fraction=0.25, gamma=0.95, delta=8)

    def run_policies():
        cluster = SimCluster(dataset, bench_cluster_config(2, batch_size=128, seed=15))
        engine = TrainingEngine(cluster, TrainConfig(epochs=bench_epochs + 1, hidden_dim=32, seed=15))
        baseline = engine.run_baseline()
        out = {"__baseline__": baseline}
        # A degree-ranked cache with the same capacity but no scoreboards: the
        # lower bar every eviction policy must clear.
        out["static-cache"] = engine.run_pipeline("static-cache", prefetch_config=config)
        out["no-eviction"] = engine.run_prefetch(config.without_eviction())
        for policy_name in ("score-threshold", "lru", "random"):
            out[policy_name] = engine.run_prefetch(
                config, eviction_policy=build_eviction_policy(policy_name, seed=0)
            )
        return out

    results = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    baseline = results.pop("__baseline__")

    rows = []
    for name, report in results.items():
        rows.append(
            [name, round(report.total_simulated_time_s, 4), round(report.hit_rate, 3),
             report.remote_nodes_fetched(), round(report.improvement_percent_vs(baseline), 1)]
        )
    save_table(
        "ablation_eviction_policies",
        ["policy", "time s", "hit rate", "remote nodes fetched", "improvement % vs baseline"],
        rows,
        notes=(
            "Ablation: eviction policy at fixed buffer size.\n"
            "Expected shape: the paper's score-threshold policy matches or beats LRU/random and\n"
            "no-eviction on hit rate."
        ),
    )

    by_name = {row[0]: row for row in rows}
    # The scored policy's hit rate should not be worse than random eviction.
    assert by_name["score-threshold"][2] >= by_name["random"][2] - 0.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_partition_quality(benchmark, bench_scale, bench_epochs):
    dataset = bench_dataset("products", scale=bench_scale, seed=16)
    prefetch = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16)

    def run_partitioners():
        out = {}
        for method in ("metis", "random"):
            cluster_config = ClusterConfig(
                num_machines=2, trainers_per_machine=2, batch_size=128,
                fanouts=(5, 10), partition_method=method, seed=16,
            )
            cluster = SimCluster(dataset, cluster_config)
            engine = TrainingEngine(cluster, TrainConfig(epochs=bench_epochs, hidden_dim=32, seed=16))
            baseline = engine.run_baseline()
            prefetched = engine.run_prefetch(prefetch)
            out[method] = (cluster, baseline, prefetched)
        return out

    results = benchmark.pedantic(run_partitioners, rounds=1, iterations=1)

    rows = []
    for method, (cluster, baseline, prefetched) in results.items():
        rows.append(
            [method,
             round(cluster.partition_result.stats["edge_cut_fraction"], 3),
             int(cluster.average_remote_nodes_per_trainer()),
             round(baseline.total_simulated_time_s, 4),
             round(prefetched.total_simulated_time_s, 4),
             round(prefetched.improvement_percent_vs(baseline), 1),
             round(prefetched.hit_rate, 3)]
        )
    save_table(
        "ablation_partition_quality",
        ["partitioner", "edge-cut frac", "avg halo/trainer", "baseline s", "prefetch s",
         "improvement %", "hit rate"],
        rows,
        notes=(
            "Ablation: METIS-like vs. random partitioning underneath the prefetcher.\n"
            "Expected shape: random partitions create more halo traffic (higher edge cut), making the\n"
            "baseline slower; prefetching helps in both cases."
        ),
    )

    by_method = {row[0]: row for row in rows}
    assert by_method["random"][1] >= by_method["metis"][1]
