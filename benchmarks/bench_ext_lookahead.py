"""Extension: deeper look-ahead for GPU-side overlap (the paper's future work).

The paper's summary argues that prefetching *multiple* future minibatches can
make "perfect overlap" sustainable on GPU configurations where a single
look-ahead minibatch is not enough (t_prepare > t_DDP).  This benchmark takes
the measured per-step component times from a simulated GPU training run,
feeds them into the look-ahead pipeline model, and reports how end-to-end time
shrinks as the look-ahead depth grows.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_dataset, run_pair, save_table
from repro.core.config import PrefetchConfig
from repro.core.lookahead import simulate_lookahead, steady_state_step_time
from repro.perf.model import components_from_breakdown, prepare_time

PREFETCH = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16)
DEPTHS = (1, 2, 3, 4)


@pytest.mark.benchmark(group="extension")
def test_ext_lookahead_depth(benchmark, bench_scale, bench_epochs):
    dataset = bench_dataset("products", scale=bench_scale, seed=17)

    def run_gpu():
        return run_pair(dataset, 2, "gpu", bench_epochs, PREFETCH, seed=17)

    reports = benchmark.pedantic(run_gpu, rounds=1, iterations=1)
    prefetch = reports["prefetch"]
    steps = max(1, prefetch.num_minibatches // prefetch.world_size)
    comps = components_from_breakdown(prefetch.component_breakdown, steps)
    t_prep = prepare_time(comps)
    t_ddp = comps.t_ddp

    rows = []
    base_total = None
    for depth in DEPTHS:
        total, stats = simulate_lookahead([t_prep] * steps, [t_ddp] * steps, lookahead=depth)
        if base_total is None:
            base_total = total
        rows.append(
            [depth, round(steady_state_step_time(t_prep, t_ddp, depth), 6),
             round(total, 4), round(100.0 * (base_total - total) / base_total, 1),
             round(stats.mean_stall, 6)]
        )
    save_table(
        "ext_lookahead_depth",
        ["look-ahead depth", "steady step s", "total s", "gain % vs depth 1", "mean stall s"],
        rows,
        notes=(
            "Extension study (paper Section VI future work): deeper look-ahead on the GPU backend.\n"
            f"Measured per-step components: t_prepare={t_prep:.6f}s, t_DDP={t_ddp:.6f}s.\n"
            "Expected shape: when t_prepare > t_DDP (GPU), deeper look-ahead recovers overlap until\n"
            "the pipeline becomes training-bound; beyond that, extra depth adds nothing."
        ),
    )

    totals = [r[2] for r in rows]
    assert all(totals[i + 1] <= totals[i] + 1e-9 for i in range(len(totals) - 1))
    if t_prep > t_ddp:
        assert totals[-1] < totals[0]
