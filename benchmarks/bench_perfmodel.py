"""Performance-model validation: Eqs. 2-7 vs. the simulated execution.

Not a figure in the paper, but the analytical model of Section IV-C underpins
every claim about when prefetching helps.  This benchmark extracts the average
per-step component times from the simulated baseline run, feeds them through
the model, and compares the predicted speedup against the speedup the
simulated prefetch run actually achieved.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_dataset, run_pair, save_table
from repro.core.config import PrefetchConfig
from repro.perf.model import (
    components_from_breakdown,
    improvement_factor,
    overlap_efficiency,
    predicted_speedup,
)

PREFETCH = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16)


@pytest.mark.benchmark(group="perfmodel")
def test_performance_model_vs_simulation(benchmark, bench_scale, bench_epochs):
    datasets = {
        "arxiv": bench_dataset("arxiv", scale=bench_scale, seed=14),
        "products": bench_dataset("products", scale=bench_scale, seed=14),
    }

    def run_all():
        return {
            (name, backend): run_pair(ds, 2, backend, bench_epochs, PREFETCH, seed=14)
            for name, ds in datasets.items()
            for backend in ("cpu", "gpu")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for (name, backend), reports in results.items():
        base, prefetch = reports["baseline"], reports["prefetch"]
        steps = max(1, base.num_minibatches // base.world_size)
        comps = components_from_breakdown(base.component_breakdown, steps)
        predicted = predicted_speedup(comps, num_steps=steps)
        measured = prefetch.speedup_vs(base)
        rows.append(
            [name, backend, round(comps.t_rpc / max(comps.t_ddp, 1e-12), 3),
             round(improvement_factor(comps), 3), round(predicted, 3), round(measured, 3),
             round(overlap_efficiency(comps), 3), round(prefetch.overlap_efficiency, 3)]
        )
    save_table(
        "perfmodel_validation",
        ["dataset", "backend", "t_RPC/t_DDP", "Eq.6 bound", "predicted speedup",
         "measured speedup", "model overlap eff", "measured overlap eff"],
        rows,
        notes=(
            "Analytical model (Eqs. 2-6) vs. simulated execution.\n"
            "Expected: measured speedups track the model's predictions and never exceed the Eq. 6 bound by much."
        ),
    )

    for row in rows:
        predicted, measured = row[4], row[5]
        # The measured speedup should track the analytical prediction and stay
        # below the Eq. 6 upper bound (plus slack for the first-step cost).
        assert measured <= row[3] * 1.5 + 0.5
        assert measured == pytest.approx(predicted, rel=0.5)
