"""Async execution benchmark: critical-path time vs. gradient-sync policy.

Extends the repository's perf trajectory (``BENCH_hotpath.json``) with the
asynchrony dimension the event-driven backend adds.  On the
``straggler-machine`` scenario (machine 0 computes 2.5x slower) it runs:

* the **lockstep** engine — the bulk-synchronous baseline every policy is
  measured against;
* the **async engine with ``allreduce-barrier``** — must match the lockstep
  critical path to ~1e-9 relative (the differential sanity check; a mismatch
  fails the script immediately);
* **``bounded-staleness``** at several K — the critical-path-vs-staleness
  curve.  Trainers stop idling at barriers and the per-round collective is an
  async push hidden behind compute, so the critical path must come out
  *strictly below* lockstep: the script exits nonzero unless the best K beats
  the lockstep critical path by ``--min-reduction`` percent (the CI gate,
  enforced again by ``check_perf_regression.py`` against the committed
  trajectory);
* **``local-sgd``** at several H — sparse model averaging as the second
  async policy.

All reported metrics are simulated times and counters — deterministic given
(seed, config), machine-independent, so the regression gate holds them to a
tight band.

Run::

    PYTHONPATH=src python benchmarks/bench_async_sync.py \\
        --merge-into BENCH_hotpath.json

``--merge-into`` updates the named trajectory file in place (adding/replacing
its ``"async_sync"`` section); ``--out`` writes a standalone JSON instead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.scenarios import build_scenario
from repro.training.config import TrainConfig

REL_TOL = 1e-9


def run_workload(scenario_name: str, scale: float, epochs: int, seed: int, **overrides):
    workload = build_scenario(
        scenario_name,
        seed=seed,
        scale=scale,
        epochs=epochs,
        train_config=TrainConfig(epochs=epochs, hidden_dim=32, seed=seed),
        **overrides,
    )
    return workload.run()


def summarize(report) -> dict:
    out = {
        "critical_path_time_s": report.critical_path_time_s,
        "total_barrier_wait_s": report.total_barrier_wait_s,
        "load_imbalance": report.load_imbalance,
        "final_train_accuracy": report.report.final_train_accuracy,
        "num_minibatches": report.report.num_minibatches,
    }
    staleness_wait = sum(
        t.sync_stats.get("staleness_wait_s", 0.0) for t in report.trainer_stats
    )
    hidden = sum(t.sync_stats.get("hidden_sync_time_s", 0.0) for t in report.trainer_stats)
    if staleness_wait:
        out["staleness_wait_s"] = staleness_wait
    if hidden:
        out["hidden_sync_time_s"] = hidden
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="straggler-machine",
                        help="base scenario to sweep sync policies over")
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get("REPRO_BENCH_SCALE", 0.05)))
    parser.add_argument("--epochs", type=int,
                        default=int(os.environ.get("REPRO_BENCH_EPOCHS", 2)))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--staleness", type=int, nargs="+", default=[0, 1, 2, 4],
                        help="bounded-staleness K values to sweep")
    parser.add_argument("--sync-periods", type=int, nargs="+", default=[2, 4],
                        help="local-sgd H values to sweep")
    parser.add_argument("--min-reduction", type=float, default=0.5,
                        help="gate: best bounded-staleness critical-path reduction "
                             "must beat lockstep by at least this percent")
    parser.add_argument("--out", type=Path, default=Path("benchmarks/results/BENCH_async_sync.json"),
                        help="standalone output file (ignored with --merge-into)")
    parser.add_argument("--merge-into", type=Path, default=None,
                        help="merge the async_sync section into this trajectory file")
    args = parser.parse_args(argv)

    common = dict(scale=args.scale, epochs=args.epochs, seed=args.seed)
    print(f"[async_sync] scenario={args.scenario} scale={args.scale} epochs={args.epochs}")

    lockstep = run_workload(args.scenario, engine="lockstep", **common)
    lock_crit = lockstep.critical_path_time_s
    print(f"  lockstep             critical path {lock_crit:.6f}s "
          f"(barrier wait {lockstep.total_barrier_wait_s:.6f}s)")

    barrier = run_workload(args.scenario, engine="async", sync="allreduce-barrier", **common)
    barrier_crit = barrier.critical_path_time_s
    matches = abs(barrier_crit - lock_crit) <= REL_TOL * max(abs(barrier_crit), abs(lock_crit))
    print(f"  async barrier        critical path {barrier_crit:.6f}s "
          f"(matches lockstep: {matches})")
    if not matches:
        print("FAIL: async allreduce-barrier must reproduce the lockstep critical "
              "path; the event backend has drifted", file=sys.stderr)
        return 1

    per_policy = {}
    curve = []
    for k in args.staleness:
        report = run_workload(args.scenario, engine="async", sync="bounded-staleness",
                              staleness=k, **common)
        entry = summarize(report)
        entry["reduction_percent"] = 100.0 * (lock_crit - entry["critical_path_time_s"]) / lock_crit
        per_policy[f"bounded-staleness-k{k}"] = entry
        curve.append({"staleness": k,
                      "critical_path_time_s": entry["critical_path_time_s"],
                      "reduction_percent": entry["reduction_percent"],
                      "total_barrier_wait_s": entry["total_barrier_wait_s"]})
        print(f"  bounded-staleness K={k} critical path {entry['critical_path_time_s']:.6f}s "
              f"({entry['reduction_percent']:+.2f}% vs lockstep)")
    for h in args.sync_periods:
        report = run_workload(args.scenario, engine="async", sync="local-sgd",
                              sync_period=h, **common)
        entry = summarize(report)
        entry["reduction_percent"] = 100.0 * (lock_crit - entry["critical_path_time_s"]) / lock_crit
        per_policy[f"local-sgd-h{h}"] = entry
        print(f"  local-sgd H={h}        critical path {entry['critical_path_time_s']:.6f}s "
              f"({entry['reduction_percent']:+.2f}% vs lockstep)")

    stale_entries = [(name, e) for name, e in per_policy.items()
                     if name.startswith("bounded-staleness")]
    best_name, best = max(stale_entries, key=lambda item: item[1]["reduction_percent"])
    print(f"  best bounded-staleness: {best_name} "
          f"({best['reduction_percent']:+.2f}% critical path)")

    payload = {
        "benchmark": "async_sync",
        "generated_by": "benchmarks/bench_async_sync.py",
        "config": {
            "scenario": args.scenario,
            "scale": args.scale,
            "epochs": args.epochs,
            "seed": args.seed,
            "staleness_sweep": list(args.staleness),
            "sync_period_sweep": list(args.sync_periods),
        },
        "straggler": {
            "lockstep": summarize(lockstep),
            "async_barrier_matches_lockstep": bool(matches),
            "per_policy": per_policy,
            "staleness_curve": curve,
            "best_bounded_staleness": {
                "name": best_name,
                "reduction_percent": best["reduction_percent"],
                "critical_path_time_s": best["critical_path_time_s"],
            },
        },
    }

    if args.merge_into is not None:
        trajectory = {}
        if args.merge_into.exists():
            trajectory = json.loads(args.merge_into.read_text())
        trajectory["async_sync"] = payload
        args.merge_into.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
        print(f"merged async_sync section into {args.merge_into}")
    else:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")

    if best["reduction_percent"] < args.min_reduction:
        print(f"FAIL: best bounded-staleness reduction "
              f"{best['reduction_percent']:.2f}% < required {args.min_reduction}% — "
              f"asynchrony no longer pays on the straggler scenario", file=sys.stderr)
        return 1
    print(f"async_sync gate ok: {best['reduction_percent']:.2f}% >= {args.min_reduction}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
