"""Table IV: optimal (f_h, γ, Δ) per dataset and backend.

The paper grid-searches f_h ∈ {15,25,35,50}%, γ ∈ {0.95, 0.995, 0.9995} and
Δ ∈ {16..1024} for every dataset/backend pair and reports the combination with
the lowest end-to-end time (time is prioritized over hit rate).  This benchmark
runs a reduced grid for two datasets on both backends and reports the winning
combination plus its improvement over the baseline.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_cluster_config, bench_dataset, save_table
from repro.training.config import TrainConfig
from repro.training.sweep import find_optimal, run_parameter_sweep

GRID = {"halo_fractions": (0.25, 0.5), "gammas": (0.95, 0.995), "deltas": (8, 32)}
DATASETS = ("arxiv", "products")


@pytest.mark.benchmark(group="table4")
def test_table4_optimal_parameters(benchmark, bench_scale, bench_epochs):
    datasets = {name: bench_dataset(name, scale=bench_scale, seed=13) for name in DATASETS}

    def run_grids():
        out = {}
        for name, ds in datasets.items():
            for backend in ("cpu", "gpu"):
                sweep = run_parameter_sweep(
                    ds,
                    cluster_config=bench_cluster_config(2, backend=backend, batch_size=128, seed=13),
                    train_config=TrainConfig(epochs=bench_epochs, hidden_dim=32, seed=13),
                    **GRID,
                )
                out[(name, backend)] = find_optimal(sweep)
        return out

    optima = benchmark.pedantic(run_grids, rounds=1, iterations=1)

    rows = []
    for (name, backend), best in optima.items():
        rows.append(
            [name, backend, best["halo_fraction"], best["gamma"], int(best["delta"]),
             round(best["total_time_s"], 4), round(best["hit_rate"], 3),
             round(best["improvement_percent"], 1)]
        )
    save_table(
        "table4_optimal_params",
        ["dataset", "backend", "f_h", "gamma", "delta", "time s", "hit rate", "improvement %"],
        rows,
        notes=(
            "Table IV analog: optimal (f_h, γ, Δ) per dataset/backend from a reduced grid search.\n"
            "Paper shape: the optimum differs per dataset and backend; time is prioritized over hit rate."
        ),
    )
    assert len(rows) == len(DATASETS) * 2
