"""Fig. 5: the four (γ, Δ) trade-off quadrants, measured.

The paper's Fig. 5 is a conceptual quadrant diagram; Section IV-E predicts the
behaviour of each regime.  This benchmark runs one representative configuration
per quadrant and reports hit rate, execution time, and eviction-round count,
checking that the recommended regime (low decay / long interval) is competitive
on hit rate while keeping overhead low.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_cluster_config, bench_dataset, save_table
from repro.distributed.cluster import SimCluster
from repro.perf.tradeoffs import quadrant_configs
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine


@pytest.mark.benchmark(group="fig5")
def test_fig5_tradeoff_quadrants(benchmark, bench_scale, bench_epochs):
    dataset = bench_dataset("products", scale=bench_scale, seed=12)
    configs = quadrant_configs(halo_fraction=0.35, short_delta=4, long_delta=64)

    def run_quadrants():
        cluster = SimCluster(dataset, bench_cluster_config(2, batch_size=128, seed=12))
        engine = TrainingEngine(cluster, TrainConfig(epochs=bench_epochs + 1, hidden_dim=32, seed=12))
        baseline = engine.run_baseline()
        out = {"__baseline__": baseline}
        for name, config in configs.items():
            out[name] = engine.run_prefetch(config)
        return out

    results = benchmark.pedantic(run_quadrants, rounds=1, iterations=1)
    baseline = results.pop("__baseline__")

    rows = []
    for name, report in results.items():
        evictions = len(report.hit_tracker.eviction_steps) if report.hit_tracker else 0
        rows.append(
            [name, round(report.total_simulated_time_s, 4), round(report.hit_rate, 3),
             evictions, round(report.improvement_percent_vs(baseline), 1)]
        )
    save_table(
        "fig5_quadrants",
        ["quadrant", "time s", "hit rate", "eviction rounds", "improvement % vs baseline"],
        rows,
        notes=(
            "Fig. 5 analog: one configuration per (γ, Δ) quadrant.\n"
            "Paper shape: low-decay/long-interval is the recommended regime — good hit rate with few\n"
            "eviction rounds; short intervals inflate eviction-round counts (overhead)."
        ),
    )

    short = [r for r in rows if "short-interval" in r[0]]
    long = [r for r in rows if "long-interval" in r[0]]
    # Shape check: short intervals trigger more eviction rounds than long intervals.
    assert min(r[3] for r in short) >= max(r[3] for r in long)
