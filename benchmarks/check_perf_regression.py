"""CI perf-regression gate: fresh bench output vs. the committed baseline.

Compares a freshly generated hot-path trajectory (``bench_hotpath.py`` +
``bench_cache_tiers.py``/``bench_async_sync.py --merge-into``) against the
committed ``BENCH_hotpath.json`` and fails on hot-path slowdowns.  Two
classes of metric are treated differently:

* **machine-independent** metrics — wire-request reduction, cache hit rates,
  policy hit-rate gains, simulated critical-path reductions, the elastic
  migration-byte ledger — are deterministic given the same benchmark config,
  so they get tight tolerance bands;
* **machine-dependent** metrics — the vectorized-sampler speedup and the
  process-pool wall-clock speedup — vary with the runner's hardware, so they
  get a wide relative band plus a hard floor (vectorized must never be slower
  than the loop reference; the pool at max workers must beat inline wall
  clock).  The pool floor and band only apply when the producing run had at
  least two CPU cores — on a single-core runner parallel speedup is
  physically impossible, so gating it would only measure the container.

Throughput-style numbers (rows/s, ns/node) are reported in the trend artifact
but never gated: comparing wall-clock across unrelated machines would make
the gate flaky without catching anything the ratios miss.

The verdict plus every check's numbers land in ``--trend-out`` (uploaded as a
CI artifact), so the trajectory of each metric is inspectable per run.

Run::

    PYTHONPATH=src python benchmarks/check_perf_regression.py \\
        --baseline BENCH_hotpath.json --fresh /tmp/fresh.json \\
        --trend-out /tmp/perf_trend.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional


class Check:
    def __init__(self, name: str, baseline: Optional[float], fresh: Optional[float],
                 threshold: float, passed: bool, note: str = ""):
        self.name = name
        self.baseline = baseline
        self.fresh = fresh
        self.threshold = threshold
        self.passed = passed
        self.note = note

    def as_dict(self):
        return {
            "name": self.name,
            "baseline": self.baseline,
            "fresh": self.fresh,
            "threshold": self.threshold,
            "passed": self.passed,
            "note": self.note,
        }


def _get(tree: dict, path: str):
    node = tree
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def run_checks(baseline: dict, fresh: dict, speedup_ratio: float,
               reduction_abs: float, hit_abs: float, min_hit_gain: float,
               min_async_reduction: float = 0.5,
               latency_ratio: float = 1.05,
               min_pool_speedup: float = 1.0,
               min_tune_gain: float = 0.5) -> List[Check]:
    checks: List[Check] = []

    # ---- sampler speedup: machine-dependent, wide band + hard floor ----
    path = "sampler.smoke.speedup_vectorized_over_loop"
    base, now = _get(baseline, path), _get(fresh, path)
    if now is not None:
        floor = 1.0
        checks.append(Check(
            "sampler.vectorized_not_slower_than_loop", None, now, floor, now >= floor,
            "hard floor: the vectorized sampler must never lose to its loop twin",
        ))
        if base is not None:
            threshold = base * speedup_ratio
            checks.append(Check(
                "sampler.speedup_vs_baseline", base, now, threshold, now >= threshold,
                f"wide band ({speedup_ratio:.0%} of baseline): runners differ in "
                f"hardware, big drops still surface",
            ))

    # ---- execution backends: bit-identity always; wall clock on >=2 cores ----
    identical = _get(fresh, "execution_backends.reports_identical")
    if identical is not None:
        checks.append(Check(
            "pool.reports_bit_identical_to_inline", None,
            1.0 if identical else 0.0, 1.0, bool(identical),
            "hard invariant: the process-pool backend must reproduce the inline "
            "report bit for bit",
        ))
    path = "execution_backends.speedup_at_max_workers"
    now = _get(fresh, path)
    fresh_cores = _get(fresh, "execution_backends.cpu_count") or 1
    if now is not None and fresh_cores >= 2:
        checks.append(Check(
            "pool.beats_inline_wall_clock", None, now, min_pool_speedup,
            now >= min_pool_speedup,
            "hard floor: the pool at max workers must beat inline wall clock "
            "(only gated on multi-core runners)",
        ))
        base = _get(baseline, path)
        base_cores = _get(baseline, "execution_backends.cpu_count") or 1
        if base is not None and base_cores >= 2:
            threshold = base * speedup_ratio
            checks.append(Check(
                "pool.speedup_vs_baseline", base, now, threshold, now >= threshold,
                f"wide band ({speedup_ratio:.0%} of baseline): wall clock varies "
                f"with runner hardware, big drops still surface",
            ))

    # ---- RPC coalescing: deterministic counters, tight band ----
    path = "rpc.wire_request_reduction_percent"
    base, now = _get(baseline, path), _get(fresh, path)
    if base is not None and now is not None:
        threshold = base - reduction_abs
        checks.append(Check(
            "rpc.wire_request_reduction_percent", base, now, threshold, now >= threshold,
            "counter-derived: identical config must reproduce the reduction",
        ))
    per_call = _get(fresh, "rpc.per_channel.per-call.requests")
    batched = _get(fresh, "rpc.per_channel.batched.requests")
    if per_call is not None and batched is not None:
        checks.append(Check(
            "rpc.batched_strictly_fewer_wire_requests", per_call, batched,
            per_call, batched < per_call,
            "hard floor: coalescing must reduce wire requests on hot-halo",
        ))

    # ---- cache tiers: deterministic hit rates, tight band ----
    path = "cache_tiers.drift_scenario.best_non_default.hit_gain_over_static"
    base, now = _get(baseline, path), _get(fresh, path)
    if now is not None:
        threshold = max(min_hit_gain, (base - hit_abs) if base is not None else min_hit_gain)
        checks.append(Check(
            "cache.drift_hit_gain_over_static", base, now, threshold, now >= threshold,
            "a non-default tier policy must keep beating static-degree on hot-set-drift",
        ))
    for scen_key, label in (("drift_scenario", "drift"), ("churn_scenario", "churn")):
        base_cfgs = _get(baseline, f"cache_tiers.{scen_key}.per_config") or {}
        fresh_cfgs = _get(fresh, f"cache_tiers.{scen_key}.per_config") or {}
        for name in sorted(set(base_cfgs) & set(fresh_cfgs)):
            base_hit = base_cfgs[name].get("mean_hit_rate")
            now_hit = fresh_cfgs[name].get("mean_hit_rate")
            if base_hit is None or now_hit is None:
                continue
            threshold = base_hit - hit_abs
            checks.append(Check(
                f"cache.{label}.{name}.mean_hit_rate", base_hit, now_hit, threshold,
                now_hit >= threshold,
                "deterministic at fixed seed/config; only real behavior changes move it",
            ))
        # The scored policy must beat both degree heuristics on every
        # cache scenario — the ROADMAP item 2 acceptance gate.
        scored_hit = (fresh_cfgs.get("scored") or {}).get("mean_hit_rate")
        if scored_hit is None:
            continue
        for rival in ("static-degree", "degree-weighted"):
            rival_hit = (fresh_cfgs.get(rival) or {}).get("mean_hit_rate")
            if rival_hit is None:
                continue
            threshold = rival_hit + min_hit_gain
            checks.append(Check(
                f"cache.{label}.scored_beats_{rival}", rival_hit, scored_hit,
                threshold, scored_hit >= threshold,
                "hard floor: the scored policy must beat the degree heuristic's "
                "hit rate on this scenario",
            ))

    # ---- async sync policies: simulated times, deterministic, tight band ----
    matches = _get(fresh, "async_sync.straggler.async_barrier_matches_lockstep")
    if matches is not None:
        checks.append(Check(
            "async.barrier_bit_matches_lockstep", None,
            1.0 if matches else 0.0, 1.0, bool(matches),
            "hard invariant: the event backend's barrier mode must reproduce the "
            "lockstep critical path",
        ))
    path = "async_sync.straggler.best_bounded_staleness.reduction_percent"
    base, now = _get(baseline, path), _get(fresh, path)
    if now is not None:
        checks.append(Check(
            "async.bounded_staleness_reduces_critical_path", None, now,
            min_async_reduction, now >= min_async_reduction,
            "hard floor: bounded staleness must strictly beat the lockstep "
            "critical path on the straggler scenario",
        ))
        if base is not None:
            threshold = base - reduction_abs
            checks.append(Check(
                "async.staleness_reduction_vs_baseline", base, now, threshold,
                now >= threshold,
                "simulated-time ratio: identical config must reproduce the reduction",
            ))

    # ---- serving: simulated latencies, deterministic, tight band ----
    exceeds = _get(fresh, "serving.flash_crowd.p99_exceeds_steady")
    if exceeds is not None:
        checks.append(Check(
            "serving.flash_crowd_p99_exceeds_steady", None,
            1.0 if exceeds else 0.0, 1.0, bool(exceeds),
            "hard invariant: burst queueing must push the p99 tail above the "
            "steady stream's at the same average rate",
        ))
    slo_rate = _get(fresh, "serving.slo.violation_rate_at_base_load")
    slo_max = _get(fresh, "serving.slo.max_allowed")
    if slo_rate is not None and slo_max is not None:
        checks.append(Check(
            "serving.slo_violation_rate_at_base_load", None, slo_rate, slo_max,
            slo_rate <= slo_max,
            "hard ceiling: the steady stream at base load must meet its declared SLO",
        ))
    base_curve = {p.get("load_factor"): p
                  for p in (_get(baseline, "serving.latency_curve") or [])}
    fresh_curve = {p.get("load_factor"): p
                   for p in (_get(fresh, "serving.latency_curve") or [])}
    for factor in sorted(set(base_curve) & set(fresh_curve)):
        base_p99 = base_curve[factor].get("p99_ms")
        now_p99 = fresh_curve[factor].get("p99_ms")
        if base_p99 is None or now_p99 is None:
            continue
        threshold = base_p99 * latency_ratio
        checks.append(Check(
            f"serving.p99_ms_at_load_x{factor:g}", base_p99, now_p99, threshold,
            now_p99 <= threshold,
            "simulated latency, deterministic at fixed seed/config; growth past "
            "the band is a real hot-path regression",
        ))

    # ---- tuning: the sweep's best must keep beating the scenario default ----
    identical = _get(fresh, "tuning.reports_bit_identical")
    if identical is not None:
        checks.append(Check(
            "tune.same_seed_runs_bit_identical", None,
            1.0 if identical else 0.0, 1.0, bool(identical),
            "hard invariant: same-seed tune runs must produce byte-identical "
            "ranked reports and preset files",
        ))
    for leg in ("training", "serving"):
        path = f"tuning.{leg}.improvement_percent"
        base, now = _get(baseline, path), _get(fresh, path)
        if now is None:
            continue
        checks.append(Check(
            f"tune.{leg}.best_beats_default", None, now, min_tune_gain,
            now >= min_tune_gain,
            "hard floor (percent): the tuner's best config must beat the "
            "scenario default on its declared objective",
        ))
        if base is not None:
            threshold = base - reduction_abs
            checks.append(Check(
                f"tune.{leg}.improvement_vs_baseline", base, now, threshold,
                now >= threshold,
                "simulated-score ratio: identical config must reproduce the gain",
            ))

    # ---- elasticity: simulated times + deterministic migration ledger ----
    path = "elasticity.post_join_improvement_percent"
    base, now = _get(baseline, path), _get(fresh, path)
    if now is not None:
        checks.append(Check(
            "elastic.post_join_beats_held_baseline", None, now, 0.0, now > 0.0,
            "hard floor: epochs after the scale-out joins must beat the "
            "held-back baseline's critical path",
        ))
        if base is not None:
            threshold = base - reduction_abs
            checks.append(Check(
                "elastic.post_join_improvement_vs_baseline", base, now, threshold,
                now >= threshold,
                "simulated-time ratio: identical config must reproduce the improvement",
            ))
    path = "elasticity.migration_bytes"
    base, now = _get(baseline, path), _get(fresh, path)
    if base is not None and now is not None:
        checks.append(Check(
            "elastic.migration_bytes_deterministic", base, now, base, now == base,
            "counter-derived: the migrated-row ledger is exact at fixed seed/config",
        ))
    return checks


def report_only_metrics(fresh: dict) -> dict:
    """Machine-dependent throughput numbers carried in the trend, never gated."""
    return {
        "sampler.smoke.ns_per_node.vectorized": _get(
            fresh, "sampler.smoke.per_sampler.vectorized.ns_per_node"
        ),
        "fetch.rows_per_s": _get(fresh, "fetch.rows_per_s"),
        "cache_tiers.churn.mean_hit_rate": _get(
            fresh, "cache_tiers.churn_scenario.mean_hit_rate"
        ),
        "async_sync.straggler.staleness_curve": _get(
            fresh, "async_sync.straggler.staleness_curve"
        ),
        "serving.latency_curve": _get(fresh, "serving.latency_curve"),
        "serving.diurnal.phase_p99_ms": _get(fresh, "serving.diurnal.phase_p99_ms"),
        "execution_backends.curve": _get(fresh, "execution_backends.curve"),
        "execution_backends.cpu_count": _get(fresh, "execution_backends.cpu_count"),
        "elasticity.elastic_epoch_times_s": _get(
            fresh, "elasticity.elastic_epoch_times_s"
        ),
        "elasticity.held_epoch_times_s": _get(fresh, "elasticity.held_epoch_times_s"),
        "tuning.training.best_overrides": _get(fresh, "tuning.training.best_overrides"),
        "tuning.serving.best_overrides": _get(fresh, "tuning.serving.best_overrides"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=Path("BENCH_hotpath.json"),
                        help="committed trajectory file (the regression baseline)")
    parser.add_argument("--fresh", type=Path, required=True,
                        help="freshly generated trajectory file to validate")
    parser.add_argument("--trend-out", type=Path, default=Path("perf_trend.json"),
                        help="where to write the trend/verdict artifact")
    parser.add_argument("--speedup-tolerance", type=float, default=0.35,
                        help="fresh sampler speedup must be >= this fraction of the "
                             "baseline's (wide: runners differ in hardware)")
    parser.add_argument("--reduction-tolerance", type=float, default=1.0,
                        help="allowed absolute drop in wire-request reduction percent")
    parser.add_argument("--hit-tolerance", type=float, default=0.02,
                        help="allowed absolute drop in cache hit-rate metrics")
    parser.add_argument("--min-hit-gain", type=float, default=0.005,
                        help="hard floor for the drift-scenario policy gain and for "
                             "scored's margin over both degree heuristics on "
                             "hot-set-drift and cache-churn")
    parser.add_argument("--min-async-reduction", type=float, default=0.5,
                        help="hard floor (percent) for bounded-staleness "
                             "critical-path reduction on the straggler scenario")
    parser.add_argument("--latency-tolerance", type=float, default=1.05,
                        help="fresh serving p99 at each load point must stay within "
                             "this multiple of the baseline's")
    parser.add_argument("--min-pool-speedup", type=float, default=1.0,
                        help="hard floor for the process-pool wall-clock speedup "
                             "over inline at max workers (only gated when the "
                             "producing run had >= 2 CPU cores)")
    parser.add_argument("--min-tune-gain", type=float, default=0.5,
                        help="hard floor (percent) for the tuner's best-config "
                             "improvement over the scenario default on both "
                             "bench_tune legs")
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"FAIL: baseline {args.baseline} does not exist; commit a trajectory "
              f"(bench_hotpath.py + bench_cache_tiers.py --merge-into)", file=sys.stderr)
        return 1
    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())

    checks = run_checks(
        baseline, fresh,
        speedup_ratio=args.speedup_tolerance,
        reduction_abs=args.reduction_tolerance,
        hit_abs=args.hit_tolerance,
        min_hit_gain=args.min_hit_gain,
        min_async_reduction=args.min_async_reduction,
        latency_ratio=args.latency_tolerance,
        min_pool_speedup=args.min_pool_speedup,
        min_tune_gain=args.min_tune_gain,
    )
    failed = [c for c in checks if not c.passed]
    for check in checks:
        status = "ok  " if check.passed else "FAIL"
        base = "-" if check.baseline is None else f"{check.baseline:.4f}"
        print(f"  [{status}] {check.name}: fresh={check.fresh:.4f} baseline={base} "
              f"threshold={check.threshold:.4f}")

    trend = {
        "baseline_file": str(args.baseline),
        "fresh_file": str(args.fresh),
        "checks": [c.as_dict() for c in checks],
        "report_only": report_only_metrics(fresh),
        "verdict": "pass" if not failed else "fail",
    }
    args.trend_out.write_text(json.dumps(trend, indent=2, sort_keys=True) + "\n")
    print(f"trend written to {args.trend_out}")

    if failed:
        print(f"FAIL: {len(failed)} perf-regression check(s) failed: "
              + ", ".join(c.name for c in failed), file=sys.stderr)
        return 1
    print(f"all {len(checks)} perf-regression checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
