"""Fig. 7: GAT on the papers analog — the scheme generalizes across architectures.

The paper trains a 2-head GAT on papers100M with 64-256 trainers and observes
up to 39% improvement on CPU and 15% on GPU (eviction adds a few points on
CPU; the GPU variant can fail to improve when attention compute saturates
memory and overlap collapses).  The benchmark reproduces the CPU/GPU contrast
on the scaled papers analog.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_dataset, run_pair, save_table
from repro.core.config import PrefetchConfig

PREFETCH = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16)


@pytest.mark.benchmark(group="fig7")
def test_fig7_gat_papers(benchmark, bench_scale, bench_epochs):
    dataset = bench_dataset("papers", scale=min(bench_scale, 0.15), seed=4)

    def run_both_backends():
        out = {}
        for backend in ("cpu", "gpu"):
            out[backend] = run_pair(
                dataset, 2, backend, max(1, bench_epochs - 1), PREFETCH,
                arch="gat", num_heads=2, include_no_eviction=True, seed=4,
            )
        return out

    results = benchmark.pedantic(run_both_backends, rounds=1, iterations=1)

    rows = []
    for backend, reports in results.items():
        base, noev, evict = reports["baseline"], reports["prefetch_no_evict"], reports["prefetch"]
        rows.append(
            [
                backend,
                round(base.total_simulated_time_s, 4),
                round(noev.total_simulated_time_s, 4),
                round(evict.total_simulated_time_s, 4),
                round(noev.improvement_percent_vs(base), 1),
                round(evict.improvement_percent_vs(base), 1),
                round(evict.hit_rate, 3),
                round(evict.overlap_efficiency, 3),
            ]
        )
    save_table(
        "fig7_gat_papers",
        ["backend", "baseline s", "prefetch s", "prefetch+evict s",
         "improv% (no evict)", "improv% (evict)", "hit rate", "overlap eff"],
        rows,
        notes=(
            "Fig. 7 analog: 2-head GAT on the papers analog.\n"
            "Paper shape: prefetching still helps a heavier architecture on both backends.\n"
            "Known deviation: the paper's GAT-GPU runs were memory-constrained (only 2 heads fit),\n"
            "which collapsed their overlap; the simulated GPU has no such memory wall, so its\n"
            "relative gain is not suppressed here (see EXPERIMENTS.md)."
        ),
    )

    cpu_improv = results["cpu"]["prefetch"].improvement_percent_vs(results["cpu"]["baseline"])
    gpu_improv = results["gpu"]["prefetch"].improvement_percent_vs(results["gpu"]["baseline"])
    # The scheme must generalize to GAT: positive improvement on both backends.
    assert cpu_improv > 0.0
    assert gpu_improv > 0.0
