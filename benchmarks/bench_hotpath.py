"""Hot-path benchmark: sampler throughput + owner-coalesced RPC accounting.

Seeds the repository's perf trajectory (``BENCH_hotpath.json``) with the
quantities the sampler→fetch→prefetch hot path is judged on:

* **sampler ns/node** — wall-clock cost of the ``loop`` (per-node reference)
  vs. ``vectorized`` (batched partial Fisher–Yates) samplers on a 100k-node
  smoke graph (papers100M-like average degree), plus a hub-heavy R-MAT stress
  graph and the ``legacy`` ``Generator.choice`` baseline.  The script exits
  nonzero if the vectorized sampler's smoke-graph speedup over the loop
  sampler falls below ``--min-speedup`` — the CI gate.
* **fetch rows/s** — feature-store assembly throughput on the hot-halo
  workload's buffered data path.
* **wire-request counts** — logical vs. coalesced wire RPC totals of the
  ``hot-halo`` scenario under the ``per-call`` and ``batched`` channels; the
  run asserts that numerics are identical, logical demand matches exactly, and
  the batched channel's wire requests strictly decrease (Fig. 11 accounting).
* **execution-backend wall clock** — real elapsed seconds of a 4-machine
  lockstep workload under the inline backend vs. the process-pool backend at
  1/2/4 workers (``repro.training.backends``).  Every pool run is asserted
  bit-identical to inline; on a multi-core runner the pool at max workers
  must also beat inline wall clock (``--min-pool-speedup``, skipped on
  single-core runners where parallel speedup is physically impossible).
* **elastic scale-out overhead** — simulated per-epoch critical paths and the
  migration-byte ledger of the ``scale-out-burst`` scenario vs. a held-back
  twin whose joins are stripped.  The run asserts every scheduled join lands,
  the joiners pay a nonzero migration ledger, the post-join epoch beats the
  held baseline's, and a rebuilt run reproduces the report bit for bit.

Run::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --out BENCH_hotpath.json

Smoke-scale knobs (CI): ``--graph-nodes 20000 --rmat-scale 14 --rounds 2``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.distributed.rpc import aggregate_rpc_stats
from repro.features import LocalKVStoreSource, SourceContext, build_feature_source
from repro.features.store import FeatureStore
from repro.graph.generators import planted_partition_graph, rmat_graph
from repro.sampling.neighbor_sampler import build_sampler
from repro.scenarios import SCENARIOS

SAMPLER_NAMES = ("loop", "vectorized", "legacy")


# --------------------------------------------------------------------------- #
# Part 1: sampler throughput (loop vs. vectorized vs. legacy)
# --------------------------------------------------------------------------- #
def bench_samplers(graph, batch_size: int, rounds: int, fanouts):
    seed_rng = np.random.default_rng(3)
    seed_batches = [
        np.unique(seed_rng.integers(0, graph.num_nodes, size=batch_size))
        for _ in range(rounds)
    ]

    # Self-check: the loop and vectorized samplers must produce identical
    # minibatches on the same seed before their timings are comparable.
    check_a = build_sampler("loop", graph, fanouts, seed=1).sample(seed_batches[0])
    check_b = build_sampler("vectorized", graph, fanouts, seed=1).sample(seed_batches[0])
    for x, y in zip(check_a.blocks, check_b.blocks):
        assert np.array_equal(x.src_nodes, y.src_nodes)
        assert np.array_equal(x.edge_src, y.edge_src)
        assert np.array_equal(x.edge_dst, y.edge_dst)

    results = {}
    for name in SAMPLER_NAMES:
        build_sampler(name, graph, fanouts, seed=1).sample(seed_batches[0])  # warm-up
        sampler = build_sampler(name, graph, fanouts, seed=1)
        nodes_visited = 0
        edges_sampled = 0
        start = time.perf_counter()
        for step, seeds in enumerate(seed_batches):
            mb = sampler.sample(seeds, step=step)
            nodes_visited += sum(block.num_dst for block in mb.blocks)
            edges_sampled += mb.total_edges()
        elapsed = time.perf_counter() - start
        results[name] = {
            "seconds_total": elapsed,
            "seconds_per_batch": elapsed / rounds,
            "ns_per_node": 1e9 * elapsed / max(1, nodes_visited),
            "ns_per_edge": 1e9 * elapsed / max(1, edges_sampled),
            "nodes_visited": int(nodes_visited),
            "edges_sampled": int(edges_sampled),
        }
    return {
        "graph_nodes": int(graph.num_nodes),
        "graph_edges": int(graph.num_edges),
        "batch_size": batch_size,
        "rounds": rounds,
        "fanouts": list(fanouts),
        "per_sampler": results,
        "speedup_vectorized_over_loop": (
            results["loop"]["seconds_total"] / results["vectorized"]["seconds_total"]
        ),
        "speedup_vectorized_over_legacy": (
            results["legacy"]["seconds_total"] / results["vectorized"]["seconds_total"]
        ),
    }


# --------------------------------------------------------------------------- #
# Part 2: hot-halo RPC accounting (per-call vs. batched) + fetch throughput
# --------------------------------------------------------------------------- #
def bench_hot_halo_rpc(scenario_scale: float, epochs: int):
    runs = {}
    losses = {}
    for rpc in ("per-call", "batched"):
        workload = (
            SCENARIOS.build("hot-halo")
            .with_overrides(scale=scenario_scale, epochs=epochs, rpc=rpc)
            .materialize(seed=0)
        )
        report = workload.run()
        agg = aggregate_rpc_stats([t.rpc for t in workload.cluster.trainers])
        runs[rpc] = {
            **agg.as_extended_dict(),
            "critical_path_time_s": report.critical_path_time_s,
        }
        losses[rpc] = [r.loss for r in report.report.epoch_records]

    # The three acceptance properties of owner coalescing:
    assert losses["per-call"] == losses["batched"], "coalescing changed training numerics"
    assert runs["per-call"]["nodes_requested"] == runs["batched"]["nodes_requested"], (
        "per-step fetched-row totals must match exactly"
    )
    assert runs["per-call"]["logical_requests"] == runs["batched"]["logical_requests"]
    assert runs["batched"]["requests"] < runs["per-call"]["requests"], (
        "batched channel must strictly reduce wire requests on hot-halo"
    )
    reduction = 1.0 - runs["batched"]["requests"] / max(1, runs["per-call"]["requests"])
    return {
        "scenario": "hot-halo",
        "scale": scenario_scale,
        "epochs": epochs,
        "per_channel": runs,
        "wire_request_reduction_percent": 100.0 * reduction,
    }


def bench_execution_backends(scale: float, epochs: int, batch_size: int,
                             hidden_dim: int, workers_grid):
    """Wall clock of inline vs. process-pool trainers on one lockstep workload.

    Sized compute-heavy (big minibatches, small model) so per-step gradient
    IPC and one-time worker setup stay small next to trainer compute — the
    regime where worker processes pay off on a multi-core runner.
    """
    import os

    from repro.core.config import PrefetchConfig
    from repro.distributed.cluster import ClusterConfig, SimCluster
    from repro.graph.datasets import load_dataset
    from repro.training.cluster_engine import ClusterEngine
    from repro.training.config import TrainConfig

    dataset = load_dataset("products", scale=scale, seed=5)
    config = ClusterConfig(num_machines=4, trainers_per_machine=1,
                           batch_size=batch_size, fanouts=(10, 25), seed=7)
    train_config = TrainConfig(epochs=epochs, hidden_dim=hidden_dim, seed=1)
    prefetch = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=8)

    def run(backend, workers=None):
        engine = ClusterEngine(SimCluster(dataset, config), train_config,
                               execution_backend=backend, workers=workers)
        start = time.perf_counter()
        report = engine.run("massivegnn", prefetch_config=prefetch)
        return time.perf_counter() - start, report

    inline_wall, inline_report = run("inline")
    curve = []
    identical = True
    for workers in workers_grid:
        wall, report = run("process-pool", workers=workers)
        identical = identical and report.as_dict() == inline_report.as_dict()
        curve.append({
            "workers": int(min(workers, config.num_machines)),
            "wall_s": wall,
            "speedup_vs_inline": inline_wall / wall if wall > 0 else 0.0,
        })
    assert identical, "process-pool report diverged from inline (bit-identity broken)"
    return {
        "machines": config.num_machines,
        "trainers_per_machine": config.trainers_per_machine,
        "scale": scale,
        "epochs": epochs,
        "batch_size": batch_size,
        "hidden_dim": hidden_dim,
        "cpu_count": os.cpu_count() or 1,
        "inline_wall_s": inline_wall,
        "curve": curve,
        "speedup_at_max_workers": curve[-1]["speedup_vs_inline"] if curve else None,
        "reports_identical": identical,
    }


def bench_fetch_throughput(scenario_scale: float, steps: int):
    """Feature rows assembled per second through the buffered hot-halo store."""
    workload = (
        SCENARIOS.build("hot-halo")
        .with_overrides(scale=scenario_scale, epochs=1)
        .materialize(seed=0)
    )
    cluster = workload.cluster
    trainer = cluster.trainers[0]
    ctx = SourceContext(
        rpc=trainer.rpc,
        partition=trainer.partition,
        num_global_nodes=cluster.dataset.num_nodes,
        book=cluster.book,
        prefetch_config=workload.scenario.prefetch_config,
        seed=0,
    )
    store = FeatureStore(
        partition=trainer.partition,
        local_source=LocalKVStoreSource(trainer.rpc),
        halo_source=build_feature_source("buffered", ctx),
    )
    store.initialize()
    batches = []
    epoch = iter(trainer.dataloader.epoch())
    for _ in range(steps):
        try:
            batches.append(next(epoch))
        except StopIteration:
            break
    rows = 0
    start = time.perf_counter()
    for minibatch in batches:
        features, _ = store.fetch_minibatch(minibatch)
        rows += features.shape[0]
    elapsed = time.perf_counter() - start
    return {
        "steps": len(batches),
        "rows_fetched": int(rows),
        "seconds_total": elapsed,
        "rows_per_s": rows / elapsed if elapsed > 0 else 0.0,
    }


# --------------------------------------------------------------------------- #
# Part 5: elastic scale-out (migration cost vs. post-join critical path)
# --------------------------------------------------------------------------- #
def bench_elasticity(scenario_scale: float):
    """What the scale-out joins buy (epoch time) and cost (migration bytes).

    The elastic run starts two of four trainers held out and joins them early
    in epoch 0; the baseline keeps the same ranks held out for the whole run
    (the joins stripped from the spec, everything else identical).  Post-join
    epochs must beat the held baseline's — that is the capacity the migration
    bytes paid for.
    """
    from repro.events.schedule import ElasticSpec

    def run(**overrides):
        workload = (
            SCENARIOS.build("scale-out-burst")
            .with_overrides(scale=scenario_scale, **overrides)
            .materialize(seed=0)
        )
        return workload, workload.run()

    elastic_wl, elastic = run()
    spec = elastic_wl.scenario.elastic
    _, held = run(elastic=ElasticSpec(initially_inactive=spec.initially_inactive))
    _, again = run()
    assert elastic.as_dict() == again.as_dict(), (
        "elastic scale-out run must be bit-identical across rebuilds at one seed"
    )

    def epoch_times(report):
        return [r.simulated_time_s for r in report.report.epoch_records]

    def ledger(report, key):
        return sum(t.sync_stats.get(key, 0.0) for t in report.trainer_stats)

    elastic_epochs, held_epochs = epoch_times(elastic), epoch_times(held)
    post_join, held_last = elastic_epochs[-1], held_epochs[-1]
    assert ledger(elastic, "joins") == len(spec.joins), "every scheduled join must land"
    migration_bytes = ledger(elastic, "migration_bytes")
    assert migration_bytes > 0, "joiners must pay for their migrated seed rows"
    assert post_join < held_last, (
        "post-join epoch must beat the held-back baseline's critical path"
    )
    return {
        "scenario": "scale-out-burst",
        "scale": scenario_scale,
        "epochs": len(elastic_epochs),
        "elastic_epoch_times_s": elastic_epochs,
        "held_epoch_times_s": held_epochs,
        "elastic_critical_path_s": elastic.critical_path_time_s,
        "held_critical_path_s": held.critical_path_time_s,
        "post_join_epoch_time_s": post_join,
        "held_last_epoch_time_s": held_last,
        "post_join_improvement_percent": 100.0 * (1.0 - post_join / held_last),
        "migration_bytes": migration_bytes,
        "migration_time_s": ledger(elastic, "migration_s"),
        "joins": ledger(elastic, "joins"),
        "rebalances": ledger(elastic, "rebalances"),
    }


# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--graph-nodes", type=int, default=100_000,
                        help="nodes in the primary smoke graph (planted-partition, "
                             "papers100M-like average degree ~15)")
    parser.add_argument("--rmat-scale", type=int, default=17,
                        help="R-MAT scale (log2 nodes) for the hub-heavy stress "
                             "graph; 0 skips it")
    parser.add_argument("--batch-size", type=int, default=4096,
                        help="seed nodes per sampled minibatch")
    parser.add_argument("--rounds", type=int, default=3, help="minibatches per sampler")
    parser.add_argument("--fanouts", type=int, nargs="+", default=[10, 25])
    parser.add_argument("--scenario-scale", type=float, default=0.05,
                        help="hot-halo dataset scale for the RPC comparison")
    parser.add_argument("--epochs", type=int, default=1, help="hot-halo epochs")
    parser.add_argument("--fetch-steps", type=int, default=8,
                        help="minibatches for the fetch-throughput probe")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail if vectorized/loop speedup falls below this "
                             "(CI gate: vectorized must not be slower than loop)")
    parser.add_argument("--pool-scale", type=float, default=0.3,
                        help="dataset scale for the execution-backend wall-clock "
                             "comparison; 0 skips the section")
    parser.add_argument("--pool-epochs", type=int, default=4,
                        help="epochs for the execution-backend comparison (more "
                             "epochs amortize one-time worker setup)")
    parser.add_argument("--pool-batch-size", type=int, default=512,
                        help="seeds per minibatch for the execution-backend "
                             "comparison (big batches = compute-bound steps)")
    parser.add_argument("--pool-hidden-dim", type=int, default=64,
                        help="model width for the execution-backend comparison "
                             "(small model = small per-step gradient IPC)")
    parser.add_argument("--pool-workers", type=int, nargs="+", default=[1, 2, 4],
                        help="worker counts for the process-pool wall-clock curve")
    parser.add_argument("--min-pool-speedup", type=float, default=1.0,
                        help="fail if the pool's speedup over inline at max "
                             "workers falls below this (CI gate; skipped on "
                             "single-core runners)")
    parser.add_argument("--elastic-scale", type=float, default=0.05,
                        help="dataset scale for the elastic scale-out comparison; "
                             "0 skips the section")
    parser.add_argument("--out", type=Path, default=Path("BENCH_hotpath.json"))
    args = parser.parse_args(argv)

    def report(tag, result):
        print(f"    [{tag}] {result['graph_nodes']} nodes / {result['graph_edges']} edges")
        for name in SAMPLER_NAMES:
            row = result["per_sampler"][name]
            print(f"    {name:>10}: {row['seconds_per_batch']*1e3:8.1f} ms/batch   "
                  f"{row['ns_per_node']:9.1f} ns/node   {row['ns_per_edge']:7.1f} ns/edge")
        print(f"    vectorized speedup: {result['speedup_vectorized_over_loop']:.1f}x over loop, "
              f"{result['speedup_vectorized_over_legacy']:.1f}x over legacy")

    print(f"[1/5] sampler bench: {args.rounds} x {args.batch_size} seeds, "
          f"fanouts {args.fanouts}")
    smoke_graph, _ = planted_partition_graph(
        args.graph_nodes, num_communities=10, avg_degree=15, intra_fraction=0.7, seed=7
    )
    sampler = {
        "smoke": bench_samplers(smoke_graph, args.batch_size, args.rounds, args.fanouts)
    }
    report("smoke", sampler["smoke"])
    if args.rmat_scale > 0:
        stress_graph = rmat_graph(scale=args.rmat_scale, edge_factor=8, seed=7)
        sampler["hub_stress"] = bench_samplers(
            stress_graph, args.batch_size, args.rounds, args.fanouts
        )
        report("hub-stress", sampler["hub_stress"])

    print(f"[2/5] hot-halo RPC: scale {args.scenario_scale}, {args.epochs} epoch(s)")
    rpc = bench_hot_halo_rpc(args.scenario_scale, args.epochs)
    for channel, row in rpc["per_channel"].items():
        print(f"    {channel:>9}: wire requests {int(row['requests']):6d}   "
              f"logical {int(row['logical_requests']):6d}   "
              f"wire rows {int(row['nodes_fetched']):8d}   "
              f"logical rows {int(row['nodes_requested']):8d}")
    print(f"    wire-request reduction: {rpc['wire_request_reduction_percent']:.1f}% "
          f"(identical numerics, identical logical rows)")

    print(f"[3/5] fetch throughput: {args.fetch_steps} buffered hot-halo minibatches")
    fetch = bench_fetch_throughput(args.scenario_scale, args.fetch_steps)
    print(f"    {fetch['rows_per_s']:,.0f} rows/s over {fetch['rows_fetched']} rows")

    execution_backends = None
    if args.pool_scale > 0:
        print(f"[4/5] execution backends: 4x1 lockstep, scale {args.pool_scale}, "
              f"{args.pool_epochs} epoch(s), workers {args.pool_workers}")
        execution_backends = bench_execution_backends(
            args.pool_scale, args.pool_epochs, args.pool_batch_size,
            args.pool_hidden_dim, args.pool_workers,
        )
        print(f"       inline: {execution_backends['inline_wall_s']:.2f}s wall "
              f"({execution_backends['cpu_count']} cpu cores)")
        for point in execution_backends["curve"]:
            print(f"    pool@{point['workers']}: {point['wall_s']:.2f}s wall   "
                  f"{point['speedup_vs_inline']:.2f}x vs inline   (bit-identical)")

    elasticity = None
    if args.elastic_scale > 0:
        print(f"[5/5] elasticity: scale-out-burst vs. held-back twin, "
              f"scale {args.elastic_scale}")
        elasticity = bench_elasticity(args.elastic_scale)
        print("    elastic epochs: "
              + "  ".join(f"{t*1e3:.3f}ms" for t in elasticity["elastic_epoch_times_s"]))
        print("    held epochs:    "
              + "  ".join(f"{t*1e3:.3f}ms" for t in elasticity["held_epoch_times_s"]))
        print(f"    post-join improvement: "
              f"{elasticity['post_join_improvement_percent']:.1f}% over held baseline "
              f"({int(elasticity['migration_bytes'])} bytes migrated across "
              f"{elasticity['joins']:.0f} joins)")

    payload = {
        "benchmark": "hotpath",
        "generated_by": "benchmarks/bench_hotpath.py",
        "config": {
            "graph_nodes": args.graph_nodes,
            "rmat_scale": args.rmat_scale,
            "batch_size": args.batch_size,
            "rounds": args.rounds,
            "fanouts": args.fanouts,
            "scenario_scale": args.scenario_scale,
            "epochs": args.epochs,
            "elastic_scale": args.elastic_scale,
        },
        "sampler": sampler,
        "rpc": rpc,
        "fetch": fetch,
    }
    if execution_backends is not None:
        payload["execution_backends"] = execution_backends
    if elasticity is not None:
        payload["elasticity"] = elasticity
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    speedup = sampler["smoke"]["speedup_vectorized_over_loop"]
    if speedup < args.min_speedup:
        print(f"FAIL: vectorized sampler speedup {speedup:.2f}x is below the "
              f"required {args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    if execution_backends is not None:
        pool_speedup = execution_backends["speedup_at_max_workers"]
        if execution_backends["cpu_count"] < 2:
            print("note: single-core runner — the pool wall-clock gate is skipped "
                  "(parallel speedup is physically impossible; bit-identity was "
                  "still asserted)")
        elif pool_speedup < args.min_pool_speedup:
            print(f"FAIL: process-pool speedup at max workers {pool_speedup:.2f}x "
                  f"is below the required {args.min_pool_speedup:.2f}x",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
