"""Fig. 10: hit-rate progression across minibatches with eviction points.

Training for many epochs, the paper shows the cumulative hit rate rising at
each eviction point and plateauing (~95% papers, ~75% products), together
with the share of sampled nodes that are remote.  This benchmark runs a longer
training (more epochs than the other benches) and reports the hit-rate
trajectory at several checkpoints plus the eviction rounds performed.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import bench_cluster_config, bench_dataset, save_table
from repro.core.config import PrefetchConfig
from repro.distributed.cluster import SimCluster
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine


@pytest.mark.benchmark(group="fig10")
def test_fig10_hit_rate_progression(benchmark, bench_scale):
    dataset = bench_dataset("products", scale=bench_scale, seed=7)
    config = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=8)

    def run_long():
        cluster = SimCluster(dataset, bench_cluster_config(2, batch_size=128, seed=7))
        engine = TrainingEngine(cluster, TrainConfig(epochs=6, hidden_dim=32, seed=7))
        return engine.run_prefetch(config)

    report = benchmark.pedantic(run_long, rounds=1, iterations=1)

    tracker = report.hit_tracker
    running = tracker.running_hit_rate()
    checkpoints = np.linspace(0, len(running) - 1, num=min(10, len(running)), dtype=int)
    rows = [
        [int(step), round(float(running[step]), 3)]
        for step in checkpoints
    ]
    save_table(
        "fig10_hitrate_progression",
        ["minibatch", "cumulative hit rate"],
        rows,
        notes=(
            "Fig. 10 analog: cumulative hit-rate trajectory across minibatches "
            f"({len(tracker.eviction_steps)} eviction rounds at Δ={config.delta}).\n"
            "Paper shape: hit rate climbs as eviction replaces cold buffer entries, then plateaus."
        ),
    )

    # Shape checks: the trajectory ends no lower than it starts, and evictions happened.
    assert running[-1] >= running[0] - 0.05
    assert len(tracker.eviction_steps) >= 1
