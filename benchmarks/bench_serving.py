"""Serving benchmark: latency vs. offered load on the inference engine.

Extends the repository's perf trajectory (``BENCH_hotpath.json``) with the
online-serving dimension the :mod:`repro.serving` subsystem adds.  On the
``steady-poisson`` scenario it sweeps offered load (a set of multipliers on
the scenario's base rate) and records the p50/p95/p99 latency curve, then
runs the two stress streams:

* **``flash-crowd-burst``** — 30% of the requests compressed into 5% of the
  horizon.  Queueing theory says the burst tail must sit *above* the steady
  tail at the same average rate; the script exits nonzero if it does not
  (the invariant is re-checked by ``check_perf_regression.py`` against the
  committed trajectory);
* **``diurnal-cache-drift``** — square-wave rate with a peak-phase hot-set
  shift, reported with the per-phase latency split.

The SLO gate: at the scenario's base load the steady stream's SLO-violation
rate must stay at or below ``--max-slo-rate`` (the declared threshold carried
into the trajectory as ``slo.max_allowed``).

All reported metrics are simulated times and counters — deterministic given
(seed, config), machine-independent, so the regression gate holds the curve
to a tight band.

Run::

    PYTHONPATH=src python benchmarks/bench_serving.py \\
        --merge-into BENCH_hotpath.json

``--merge-into`` updates the named trajectory file in place (adding/replacing
its ``"serving"`` section); ``--out`` writes a standalone JSON instead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.scenarios import SCENARIOS


def run_serving(scenario_name: str, scale: float, seed: int, **spec_overrides):
    scenario = SCENARIOS.build(scenario_name)
    spec = scenario.serving.with_overrides(**spec_overrides)
    workload = scenario.with_overrides(scale=scale, serving=spec).materialize(seed=seed)
    return workload.run()


def curve_point(report, load_factor: float) -> dict:
    latency = report.latency_ms()
    return {
        "load_factor": load_factor,
        "offered_rps": report.offered_rate_rps,
        "throughput_rps": report.throughput_rps,
        "p50_ms": latency["p50"],
        "p95_ms": latency["p95"],
        "p99_ms": latency["p99"],
        "mean_ms": latency["mean"],
        "slo_violation_rate": report.slo_violation_rate,
        "mean_utilization": report.mean_utilization,
    }


def stress_entry(report) -> dict:
    latency = report.latency_ms()
    out = {
        "p50_ms": latency["p50"],
        "p95_ms": latency["p95"],
        "p99_ms": latency["p99"],
        "throughput_rps": report.throughput_rps,
        "slo_violation_rate": report.slo_violation_rate,
        "mean_utilization": report.mean_utilization,
    }
    if report.mean_hit_rate is not None:
        out["mean_hit_rate"] = report.mean_hit_rate
    phase = report.phase_latency_ms()
    if phase:
        out["phase_p99_ms"] = {name: summary["p99"] for name, summary in phase.items()}
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="steady-poisson",
                        help="base serving scenario for the load sweep")
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get("REPRO_BENCH_SCALE", 0.05)))
    parser.add_argument("--requests", type=int,
                        default=int(os.environ.get("REPRO_BENCH_REQUESTS", 256)))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--load-factors", type=float, nargs="+",
                        default=[0.4, 1.0, 1.6],
                        help="offered-load multipliers on the scenario's base rate "
                             "(must include 1.0, the SLO-gate point)")
    parser.add_argument("--max-slo-rate", type=float, default=0.02,
                        help="gate: steady-stream SLO-violation rate at base load "
                             "must stay at or below this")
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks/results/BENCH_serving.json"),
                        help="standalone output file (ignored with --merge-into)")
    parser.add_argument("--merge-into", type=Path, default=None,
                        help="merge the serving section into this trajectory file")
    args = parser.parse_args(argv)

    if 1.0 not in args.load_factors:
        print("FAIL: --load-factors must include 1.0 (the SLO-gate point)",
              file=sys.stderr)
        return 1

    base_spec = SCENARIOS.build(args.scenario).serving
    base_rate = base_spec.rate_rps
    print(f"[serving] scenario={args.scenario} scale={args.scale} "
          f"requests={args.requests} base_rate={base_rate:g} rps")

    curve = []
    base_point = None
    for factor in args.load_factors:
        report = run_serving(
            args.scenario, scale=args.scale, seed=args.seed,
            rate_rps=base_rate * factor, num_requests=args.requests,
        )
        point = curve_point(report, factor)
        curve.append(point)
        if factor == 1.0:
            base_point = point
        print(f"  load x{factor:g} ({point['offered_rps']:g} rps): "
              f"p50 {point['p50_ms']:.3f} p95 {point['p95_ms']:.3f} "
              f"p99 {point['p99_ms']:.3f} ms, "
              f"slo rate {point['slo_violation_rate']:.3f}, "
              f"util {point['mean_utilization']:.3f}")

    flash_report = run_serving("flash-crowd-burst", scale=args.scale,
                               seed=args.seed, num_requests=args.requests)
    flash = stress_entry(flash_report)
    flash["steady_p99_ms"] = base_point["p99_ms"]
    flash["p99_exceeds_steady"] = bool(flash["p99_ms"] > base_point["p99_ms"])
    print(f"  flash-crowd-burst: p99 {flash['p99_ms']:.3f} ms "
          f"(steady {base_point['p99_ms']:.3f} ms), "
          f"slo rate {flash['slo_violation_rate']:.3f}")

    diurnal_report = run_serving("diurnal-cache-drift", scale=args.scale,
                                 seed=args.seed, num_requests=args.requests)
    diurnal = stress_entry(diurnal_report)
    print(f"  diurnal-cache-drift: p99 {diurnal['p99_ms']:.3f} ms, "
          f"phase p99 {diurnal.get('phase_p99_ms', {})}")

    payload = {
        "benchmark": "serving",
        "generated_by": "benchmarks/bench_serving.py",
        "config": {
            "scenario": args.scenario,
            "scale": args.scale,
            "requests": args.requests,
            "seed": args.seed,
            "base_rate_rps": base_rate,
            "load_factors": list(args.load_factors),
        },
        "latency_curve": curve,
        "flash_crowd": flash,
        "diurnal": diurnal,
        "slo": {
            "slo_ms": base_spec.slo_ms,
            "violation_rate_at_base_load": base_point["slo_violation_rate"],
            "max_allowed": args.max_slo_rate,
        },
    }

    if args.merge_into is not None:
        trajectory = {}
        if args.merge_into.exists():
            trajectory = json.loads(args.merge_into.read_text())
        trajectory["serving"] = payload
        args.merge_into.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
        print(f"merged serving section into {args.merge_into}")
    else:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")

    failed = False
    if not flash["p99_exceeds_steady"]:
        print(f"FAIL: flash-crowd p99 {flash['p99_ms']:.3f} ms does not exceed the "
              f"steady p99 {base_point['p99_ms']:.3f} ms — burst queueing has "
              f"vanished from the model", file=sys.stderr)
        failed = True
    if base_point["slo_violation_rate"] > args.max_slo_rate:
        print(f"FAIL: steady SLO-violation rate {base_point['slo_violation_rate']:.3f} "
              f"at base load exceeds the declared {args.max_slo_rate:g} threshold",
              file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"serving gates ok: flash p99 {flash['p99_ms']:.3f} > steady "
          f"{base_point['p99_ms']:.3f} ms; base-load slo rate "
          f"{base_point['slo_violation_rate']:.3f} <= {args.max_slo_rate:g}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
