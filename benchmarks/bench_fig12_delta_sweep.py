"""Fig. 12: execution time and hit rate as the eviction interval Δ varies per γ.

The paper sweeps Δ ∈ {16 … 1024} for each decay factor and observes that very
frequent eviction (small Δ) adds inspection overhead while very long intervals
delay useful replacements.  This benchmark sweeps a reduced Δ range for two γ
values and reports time and hit rate per point.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_cluster_config, bench_dataset, save_table
from repro.training.config import TrainConfig
from repro.training.sweep import delta_sweep

GAMMAS = (0.95, 0.995)
DELTAS = (4, 16, 64)


@pytest.mark.benchmark(group="fig12")
def test_fig12_delta_sweep(benchmark, bench_scale, bench_epochs):
    dataset = bench_dataset("products", scale=bench_scale, seed=9)

    def run_sweep():
        return delta_sweep(
            dataset,
            gamma_values=GAMMAS,
            delta_values=DELTAS,
            halo_fraction=0.35,
            cluster_config=bench_cluster_config(2, batch_size=128, seed=9),
            train_config=TrainConfig(epochs=bench_epochs, hidden_dim=32, seed=9),
        )

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for gamma, points in results.items():
        for point in points:
            rows.append(
                [gamma, point.delta, round(point.total_time_s, 4),
                 round(point.hit_rate, 3), round(point.improvement_percent, 1)]
            )
    save_table(
        "fig12_delta_sweep",
        ["gamma", "delta", "time s", "hit rate", "improvement % vs baseline"],
        rows,
        notes=(
            "Fig. 12 analog: varying the eviction interval Δ per decay factor γ.\n"
            "Paper shape: both very small and very large Δ lose to a mid-range interval."
        ),
    )
    assert len(rows) == len(GAMMAS) * len(DELTAS)
