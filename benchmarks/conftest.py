"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index).  The measured experiment runs inside the
pytest-benchmark fixture (so ``pytest benchmarks/ --benchmark-only`` times it),
and the paper-style result table is written to ``benchmarks/results/<name>.txt``
as well as echoed to stdout.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Dataset scale multiplier for benchmarks (override with REPRO_BENCH_SCALE)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def bench_epochs() -> int:
    """Training epochs per benchmark run (override with REPRO_BENCH_EPOCHS)."""
    return int(os.environ.get("REPRO_BENCH_EPOCHS", "3"))
