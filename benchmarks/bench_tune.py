"""Tuning benchmark: the sweep's best config must beat the scenario default.

Runs ``repro.tuning`` end to end on one training and one serving scenario and
records, for each leg, the baseline score (the untouched scenario recipe),
the tuner's best score, and the winning overrides:

* **training** — ``straggler-machine`` under ``critical-path-s``: the sweep
  over engine/sync/staleness must rediscover that bounded-staleness execution
  hides the 2.5x straggler (the PR 5 result, now found by search instead of
  by hand);
* **serving** — ``flash-crowd-burst`` under ``serving-p99-ms``: the sweep
  over worker count and hot-tier eviction must find that extra capacity
  absorbs the burst's queueing tail.

Both legs assert a strict improvement; the committed gains are re-checked by
``check_perf_regression.py`` against the trajectory.  The script also runs
the training sweep twice at the same seed and asserts the ranked reports and
the frozen preset files are byte-identical — the determinism contract
``repro tune`` advertises, enforced on every CI run.

All scores are simulated times — deterministic given (seed, config),
machine-independent, so the gate holds the gains to a tight band.

Run::

    PYTHONPATH=src python benchmarks/bench_tune.py --merge-into BENCH_hotpath.json

``--merge-into`` updates the named trajectory file in place (adding/replacing
its ``"tuning"`` section); ``--out`` writes a standalone JSON instead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.scenarios import SCENARIOS
from repro.tuning import Preset, SearchSpace, TuneRunner


def tune_leg(scenario, objective: str, space: SearchSpace, seed: int,
             scale=None, epochs=None):
    runner = TuneRunner(scenario, objective=objective, space=space, seed=seed,
                        scale=scale, epochs=epochs)
    return runner.run()


def leg_entry(report) -> dict:
    best = report.best
    return {
        "scenario": report.scenario,
        "objective": report.objective,
        "direction": report.direction,
        "baseline_score": report.baseline_score,
        "best_score": best.score,
        "best_overrides": dict(best.overrides),
        "improvement_percent": best.improvement_percent,
        "candidates_evaluated": len(report.evaluated),
        "spec_hash": report.spec_hash,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get("REPRO_BENCH_SCALE", 0.05)))
    parser.add_argument("--epochs", type=int, default=1,
                        help="epochs for every training-leg evaluation")
    parser.add_argument("--requests", type=int,
                        default=int(os.environ.get("REPRO_BENCH_REQUESTS", 256)))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks/results/BENCH_tune.json"),
                        help="standalone output file (ignored with --merge-into)")
    parser.add_argument("--merge-into", type=Path, default=None,
                        help="merge the tuning section into this trajectory file")
    args = parser.parse_args(argv)

    training_space = SearchSpace({
        "engine": ("async",),
        "sync": ("allreduce-barrier", "bounded-staleness"),
        "staleness": (1, 2),
    })
    serving_space = SearchSpace({
        "trainers_per_machine": (2, 4),
        "cache.eviction": ("lru", "clock"),
    })

    print(f"[tune] training leg: straggler-machine / critical-path-s "
          f"(scale={args.scale} epochs={args.epochs} seed={args.seed})")
    training = tune_leg("straggler-machine", "critical-path-s", training_space,
                        seed=args.seed, scale=args.scale, epochs=args.epochs)
    print(training.summary())

    serving_base = SCENARIOS.build("flash-crowd-burst")
    serving_base = serving_base.with_overrides(
        scale=args.scale,
        serving=serving_base.serving.with_overrides(num_requests=args.requests),
    )
    print(f"\n[tune] serving leg: flash-crowd-burst / serving-p99-ms "
          f"(scale={args.scale} requests={args.requests} seed={args.seed})")
    serving = tune_leg(serving_base, "serving-p99-ms", serving_space,
                       seed=args.seed)
    print(serving.summary())

    # Determinism contract: a same-seed re-run must reproduce the ranked
    # report and the frozen preset byte for byte.
    rerun = tune_leg("straggler-machine", "critical-path-s", training_space,
                     seed=args.seed, scale=args.scale, epochs=args.epochs)
    reports_identical = training.canonical_json() == rerun.canonical_json()
    presets_identical = (
        Preset.from_tune(training, "bench-check").to_json()
        == Preset.from_tune(rerun, "bench-check").to_json()
    )
    bit_identical = reports_identical and presets_identical
    print(f"\nsame-seed re-run bit-identical: report={reports_identical} "
          f"preset={presets_identical}")

    payload = {
        "benchmark": "tune",
        "generated_by": "benchmarks/bench_tune.py",
        "config": {
            "scale": args.scale,
            "epochs": args.epochs,
            "requests": args.requests,
            "seed": args.seed,
        },
        "training": leg_entry(training),
        "serving": leg_entry(serving),
        "reports_bit_identical": bit_identical,
    }

    if args.merge_into is not None:
        trajectory = {}
        if args.merge_into.exists():
            trajectory = json.loads(args.merge_into.read_text())
        trajectory["tuning"] = payload
        args.merge_into.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
        print(f"merged tuning section into {args.merge_into}")
    else:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")

    failed = False
    for label, leg in (("training", payload["training"]),
                       ("serving", payload["serving"])):
        gain = leg["improvement_percent"]
        if gain is None or gain <= 0:
            print(f"FAIL: {label} leg — the tuner's best config does not beat the "
                  f"scenario default on {leg['objective']} "
                  f"(improvement {gain})", file=sys.stderr)
            failed = True
        else:
            print(f"{label} gate ok: best beats default by {gain:+.2f}% "
                  f"on {leg['objective']}")
    if not bit_identical:
        print("FAIL: same-seed tune runs are not byte-identical — the sweep "
              "has picked up nondeterminism", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
