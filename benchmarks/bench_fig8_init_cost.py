"""Fig. 8: one-time prefetcher initialization cost.

The paper reports that selecting the top-degree halo nodes, fetching their
features, and building the scoreboards costs less than 1% of the total
training time (9-15% more startup work than DistDGL).  This benchmark measures
the simulated initialization cost per trainer relative to total training time
for the products and papers analogs.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import bench_dataset, run_pair, save_table
from repro.core.config import PrefetchConfig

PREFETCH = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16)


@pytest.mark.benchmark(group="fig8")
def test_fig8_initialization_cost(benchmark, bench_scale, bench_epochs):
    datasets = {
        "products": bench_dataset("products", scale=bench_scale, seed=5),
        "papers": bench_dataset("papers", scale=min(bench_scale, 0.15), seed=5),
    }

    def run_all():
        return {
            name: run_pair(ds, 2, "cpu", bench_epochs, PREFETCH, seed=5)["prefetch"]
            for name, ds in datasets.items()
        }

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, report in reports.items():
        init_rpc = float(np.sum([r["rpc_time_s"] for r in report.prefetch_init]))
        init_nodes = float(np.sum([r["num_prefetched"] for r in report.prefetch_init]))
        init_mb = float(np.sum([r["buffer_nbytes"] + r["scoreboard_nbytes"] for r in report.prefetch_init])) / 1e6
        frac = 100.0 * init_rpc / max(report.total_simulated_time_s, 1e-12)
        rows.append(
            [name, int(init_nodes), round(init_rpc, 5), round(init_mb, 2),
             round(report.total_simulated_time_s, 4), round(frac, 2)]
        )
    save_table(
        "fig8_init_cost",
        ["dataset", "prefetched nodes", "init RPC s", "buffer+scoreboard MB",
         "total training s", "init as % of training"],
        rows,
        notes=(
            "Fig. 8 analog: one-time prefetcher initialization cost.\n"
            "Paper shape: initialization is a small, amortized fraction of end-to-end training."
        ),
    )
    # Shape check: init stays a small fraction of training (paper: < 1%; allow slack at tiny scale).
    for name, report in reports.items():
        init_rpc = float(np.sum([r["rpc_time_s"] for r in report.prefetch_init]))
        assert init_rpc < 0.25 * report.total_simulated_time_s
