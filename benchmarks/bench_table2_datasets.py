"""Table II: dataset statistics of the synthetic OGB analogs.

Paper values (nodes / edges / feature dim): arxiv 0.16M / 1.16M / 128,
products 2.4M / 61.85M / 100, reddit 0.23M / 114.61M / 602,
papers 111M / 1.6B / 128.  The analogs preserve the feature dimensions, the
size ordering, and the degree skew at a laptop-friendly scale.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_dataset, save_table
from repro.graph.datasets import DATASET_SPECS


@pytest.mark.benchmark(group="table2")
def test_table2_dataset_statistics(benchmark, bench_scale):
    def build_all():
        return {
            name: bench_dataset(name, scale=bench_scale, seed=0)
            for name in ("arxiv", "products", "reddit", "papers")
        }

    datasets = benchmark.pedantic(build_all, rounds=1, iterations=1)

    rows = []
    for name, ds in datasets.items():
        spec = DATASET_SPECS[name]
        stats = ds.summary()
        rows.append(
            [
                name,
                spec.paper_num_nodes,
                spec.paper_num_edges,
                int(stats["num_nodes"]),
                int(stats["num_edges"]),
                int(stats["feature_dim"]),
                int(stats["num_classes"]),
                round(stats["avg_degree"], 1),
                int(stats["max_degree"]),
            ]
        )
    save_table(
        "table2_datasets",
        ["dataset", "paper |V|", "paper |E|", "analog |V|", "analog |E|",
         "feat dim", "classes", "avg deg", "max deg"],
        rows,
        notes="Table II analog: synthetic dataset statistics (feature dims match the paper exactly).",
    )

    # Sanity: ordering and feature dimensions match the paper.
    assert datasets["papers"].num_nodes > datasets["products"].num_nodes
    assert datasets["reddit"].feature_dim == 602
