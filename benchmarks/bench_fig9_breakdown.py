"""Fig. 9: component-wise training time breakdown and overlap efficiency.

The paper breaks each trainer's time into sampling, feature movement, score
maintenance, eviction, and DDP training, and reports that CPU training hides
the entire minibatch preparation behind computation (100% overlap) whereas GPU
training reaches only 60-70% overlap.  This benchmark reports the same
per-component averages and the overlap efficiency for products and papers on
both backends.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_dataset, run_pair, save_table
from repro.core.config import PrefetchConfig

PREFETCH = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16)
COMPONENTS = ("sampling", "lookup", "scoring", "eviction", "rpc", "copy", "ddp", "allreduce")


@pytest.mark.benchmark(group="fig9")
def test_fig9_component_breakdown(benchmark, bench_scale, bench_epochs):
    datasets = {
        "products": bench_dataset("products", scale=bench_scale, seed=6),
        "papers": bench_dataset("papers", scale=min(bench_scale, 0.15), seed=6),
    }

    def run_all():
        out = {}
        for name, ds in datasets.items():
            for backend in ("cpu", "gpu"):
                out[(name, backend)] = run_pair(ds, 2, backend, bench_epochs, PREFETCH, seed=6)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    overlaps = {}
    for (name, backend), reports in results.items():
        prefetch = reports["prefetch"]
        breakdown = prefetch.component_breakdown
        total = sum(breakdown.get(c, 0.0) for c in COMPONENTS) or 1.0
        row = [name, backend]
        row.extend(round(100.0 * breakdown.get(c, 0.0) / total, 1) for c in COMPONENTS)
        row.append(round(prefetch.overlap_efficiency, 3))
        rows.append(row)
        overlaps[(name, backend)] = prefetch.overlap_efficiency
    save_table(
        "fig9_component_breakdown",
        ["dataset", "backend"] + [f"{c}%" for c in COMPONENTS] + ["overlap eff"],
        rows,
        notes=(
            "Fig. 9 analog: per-component share of raw (un-overlapped) training time with prefetching,\n"
            "plus overlap efficiency. Paper shape: CPU ~100% overlap, GPU 60-70%."
        ),
    )

    # Shape check: CPU overlap efficiency >= GPU overlap efficiency per dataset.
    for name in datasets:
        assert overlaps[(name, "cpu")] >= overlaps[(name, "gpu")] - 0.05
