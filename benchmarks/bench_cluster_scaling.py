"""Cluster scaling: scenario workloads across growing machine counts.

The paper's scaling study (Fig. 6, Table III) grows the number of Perlmutter
nodes while holding 4 trainers per node and a constant batch size.  This
benchmark drives the same axis through the scenario registry: every named
scenario runs at 2 and 4 simulated machines, and the table reports the
cluster-level telemetry the :class:`~repro.training.cluster_engine.ClusterEngine`
aggregates — critical-path time, barrier (straggler) wait, load imbalance,
mean hit rate, and total RPC bytes.

Expected shapes:

* ``uniform`` has the smallest barrier wait and a load imbalance near 1;
* ``skewed-partitions`` and ``straggler-machine`` show how imbalance converts
  pipeline speed into barrier wait (synchronous DDP runs at the straggler's
  pace);
* ``hot-halo`` posts the highest hit rate per byte of buffer — power-law halo
  traffic is the prefetcher's best case.
"""

from __future__ import annotations

import pytest

from benchmarks.common import save_table
from repro.scenarios import build_scenario, training_scenarios
from repro.training.config import TrainConfig

MACHINES = (2, 4)


@pytest.mark.benchmark(group="cluster-scaling")
def test_cluster_scaling_scenarios(benchmark, bench_scale, bench_epochs):
    def run_grid():
        out = {}
        # Serving scenarios return latency reports, not ClusterReports; the
        # serving curve lives in bench_serving.py.
        for name in training_scenarios():
            for machines in MACHINES:
                workload = build_scenario(
                    name,
                    seed=1,
                    train_config=TrainConfig(epochs=bench_epochs, hidden_dim=32, seed=1),
                    scale=bench_scale,
                    num_machines=machines,
                )
                out[(name, machines)] = workload.run()
        return out

    reports = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    rows = []
    for (name, machines), report in sorted(reports.items()):
        summary = report.summary()
        rows.append([
            name,
            machines,
            int(summary["world_size"]),
            f"{summary['critical_path_time_s']:.4f}",
            f"{summary['total_barrier_wait_s']:.4f}",
            f"{summary['load_imbalance']:.3f}",
            f"{summary.get('mean_hit_rate', 0.0):.3f}",
            f"{summary['total_rpc_bytes'] / 1e6:.2f}",
        ])
    save_table(
        "cluster_scaling",
        ["scenario", "machines", "trainers", "critical path s", "barrier wait s",
         "imbalance", "hit rate", "RPC MB"],
        rows,
        notes=(
            "Scenario workloads across machine counts (ClusterEngine telemetry).\n"
            "Expected shape: imbalanced scenarios (skewed-partitions, straggler-machine) "
            "convert pipeline time into barrier wait; uniform stays near imbalance 1."
        ),
    )

    # Shape checks.  The slow machine always burns more DDP compute time; how
    # much of that reaches the barrier depends on overlap (at small scales
    # Eqs. 3-5 can hide a 2.5x compute slowdown entirely), so barrier wait is
    # only monotone non-decreasing.
    for machines in MACHINES:
        uniform = reports[("uniform", machines)]
        straggler = reports[("straggler-machine", machines)]
        ddp_u = sum(t.components.get("ddp", 0.0) for t in uniform.trainer_stats)
        ddp_s = sum(t.components.get("ddp", 0.0) for t in straggler.trainer_stats)
        assert ddp_s > ddp_u
        assert straggler.total_barrier_wait_s >= uniform.total_barrier_wait_s
        assert straggler.load_imbalance >= 1.0
    for report in reports.values():
        assert len(report.report.epoch_records) == report.report.epochs
