"""Fig. 6: end-to-end training time, MassiveGNN vs. DistDGL, CPU and GPU.

The paper's headline figure: GraphSAGE on 4 OGB datasets, 2–64 machines with 4
trainers each, CPU and GPU backends; annotations give the percent reduction in
execution time of MassiveGNN over DistDGL (15–40%, up to ~85% for arxiv), with
the secondary axis showing the hit rate.

This benchmark reproduces the same grid at reduced scale: for every
(dataset, backend, #machines) cell it reports the baseline time, the
prefetch-without-eviction time, the prefetch-with-eviction time, the percent
improvement, and the hit rate.  The expected shape (checked by assertions):
prefetching improves end-to-end time on the CPU backend, and eviction does not
hurt relative to no-eviction on average.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import MACHINE_CONFIGS, bench_dataset, run_pair, save_table
from repro.core.config import PrefetchConfig

DATASETS = ("arxiv", "products", "reddit", "papers")
PREFETCH = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16)


def _run_grid(backend: str, scale: float, epochs: int):
    rows = []
    improvements = []
    for name in DATASETS:
        dataset = bench_dataset(name, scale=scale, seed=2)
        for machines in MACHINE_CONFIGS:
            reports = run_pair(
                dataset, machines, backend, epochs, PREFETCH,
                include_no_eviction=True, seed=2,
            )
            base = reports["baseline"]
            noev = reports["prefetch_no_evict"]
            evict = reports["prefetch"]
            improvement = evict.improvement_percent_vs(base)
            improvements.append(improvement)
            rows.append(
                [
                    name,
                    machines,
                    round(base.total_simulated_time_s, 4),
                    round(noev.total_simulated_time_s, 4),
                    round(evict.total_simulated_time_s, 4),
                    round(noev.improvement_percent_vs(base), 1),
                    round(improvement, 1),
                    round(evict.hit_rate, 3),
                ]
            )
    return rows, improvements


@pytest.mark.benchmark(group="fig6")
def test_fig6_cpu_training_time(benchmark, bench_scale, bench_epochs):
    rows, improvements = benchmark.pedantic(
        _run_grid, args=("cpu", bench_scale, bench_epochs), rounds=1, iterations=1
    )
    save_table(
        "fig6_cpu_training_time",
        ["dataset", "#machines", "baseline s", "prefetch s", "prefetch+evict s",
         "improv% (no evict)", "improv% (evict)", "hit rate"],
        rows,
        notes=(
            "Fig. 6 (a-d) analog: GraphSAGE end-to-end simulated training time on the CPU backend.\n"
            "Paper shape: MassiveGNN improves DistDGL by ~15-43% on CPUs with near-perfect overlap."
        ),
    )
    # Shape check: prefetching helps on average on the CPU backend.
    assert np.mean(improvements) > 5.0


@pytest.mark.benchmark(group="fig6")
def test_fig6_gpu_training_time(benchmark, bench_scale, bench_epochs):
    rows, improvements = benchmark.pedantic(
        _run_grid, args=("gpu", bench_scale, bench_epochs), rounds=1, iterations=1
    )
    save_table(
        "fig6_gpu_training_time",
        ["dataset", "#machines", "baseline s", "prefetch s", "prefetch+evict s",
         "improv% (no evict)", "improv% (evict)", "hit rate"],
        rows,
        notes=(
            "Fig. 6 (e-h) analog: GraphSAGE end-to-end simulated training time on the GPU backend.\n"
            "Paper shape: improvements persist but are smaller than CPU (less overlap headroom)."
        ),
    )
    assert np.mean(improvements) > 0.0
