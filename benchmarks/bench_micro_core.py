"""Micro-benchmarks of the prefetcher's hot operations.

These are the operations Section IV worries about being cheap enough to hide
behind training: buffer membership lookup, scoreboard decay/increment, the
eviction assessment, and neighbor sampling.  pytest-benchmark measures their
real wall-clock cost (many rounds, statistical output) rather than the
simulated cost used by the training benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buffer import PrefetchBuffer
from repro.core.scoreboard import CompactAccessScoreboard, DenseAccessScoreboard, EvictionScores
from repro.graph.datasets import load_dataset
from repro.sampling.neighbor_sampler import NeighborSampler

NUM_GLOBAL = 200_000
NUM_HALO = 20_000
CAPACITY = 5_000
QUERY = 2_000


@pytest.fixture(scope="module")
def halo_ids():
    rng = np.random.default_rng(0)
    return np.sort(rng.choice(NUM_GLOBAL, size=NUM_HALO, replace=False)).astype(np.int64)


@pytest.fixture(scope="module")
def buffer(halo_ids):
    rng = np.random.default_rng(1)
    resident = rng.choice(halo_ids, size=CAPACITY, replace=False)
    feats = rng.normal(size=(CAPACITY, 128)).astype(np.float32)
    return PrefetchBuffer(resident, feats)


@pytest.fixture(scope="module")
def queries(halo_ids):
    rng = np.random.default_rng(2)
    return rng.choice(halo_ids, size=QUERY, replace=True).astype(np.int64)


@pytest.mark.benchmark(group="micro-buffer")
def test_micro_buffer_lookup(benchmark, buffer, queries):
    hit_mask, slots = benchmark(buffer.lookup, queries)
    assert len(hit_mask) == QUERY


@pytest.mark.benchmark(group="micro-buffer")
def test_micro_buffer_feature_gather(benchmark, buffer, queries):
    hit_mask, slots = buffer.lookup(queries)
    hits = slots[hit_mask]
    if len(hits) == 0:
        pytest.skip("no hits in the random query at this seed")
    rows = benchmark(buffer.get_features, hits)
    assert rows.shape[1] == 128


@pytest.mark.benchmark(group="micro-scoreboard")
def test_micro_dense_scoreboard_increment(benchmark, halo_ids, queries):
    board = DenseAccessScoreboard(NUM_GLOBAL, halo_ids)
    benchmark(board.increment, queries)


@pytest.mark.benchmark(group="micro-scoreboard")
def test_micro_compact_scoreboard_increment(benchmark, halo_ids, queries):
    board = CompactAccessScoreboard(halo_ids)
    benchmark(board.increment, queries)


@pytest.mark.benchmark(group="micro-scoreboard")
def test_micro_eviction_assessment(benchmark):
    scores = EvictionScores(CAPACITY)
    rng = np.random.default_rng(3)
    scores.set(np.arange(CAPACITY), rng.random(CAPACITY))

    def assess():
        unused = rng.random(CAPACITY) < 0.7
        scores.decay(unused, 0.995)
        return scores.below_threshold(0.9)

    out = benchmark(assess)
    assert out.ndim == 1


@pytest.mark.benchmark(group="micro-sampling")
def test_micro_neighbor_sampling(benchmark):
    dataset = load_dataset("products", scale=0.25, seed=0)
    sampler = NeighborSampler(dataset.graph, [10, 25], seed=0)
    seeds = np.arange(256)
    mb = benchmark(sampler.sample, seeds)
    assert len(mb.blocks) == 2
