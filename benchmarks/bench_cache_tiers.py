"""Tiered feature-cache benchmark: policy hit-rate curves + fetch latency.

Extends the repository's perf trajectory (``BENCH_hotpath.json``) with the
cache dimension the tier subsystem adds:

* **drift stream** — a synthetic drifting-Zipf request stream driven straight
  through :class:`~repro.cache.stack.TieredFeatureCache`, one run per
  eviction policy (``none``/static, ``lru``, ``lfu``, ``clock``,
  ``degree-weighted``, ``scored``).  Isolates policy quality from training
  noise and charts per-phase hit-rate curves.
* **hot-set-drift scenario** — full cluster runs of the ``hot-set-drift``
  scenario under the default static-degree config, an LRU single tier, the
  two-tier adaptive stack, and the degree-weighted and scored two-tier
  variants; reports per-epoch hit-rate curves, simulated fetch latency, and
  RPC bytes.  The script exits nonzero unless at least one non-default
  policy beats the static default's mean hit rate by ``--min-hit-gain``, and
  unless ``scored`` beats **both** degree heuristics (``static-degree`` and
  ``degree-weighted``) by the same margin — the CI gates for the tier
  subsystem (re-checked against the committed baseline by
  ``check_perf_regression.py``).
* **cache-churn scenario** — runs the undersized two-tier workload once per
  competing config (plus the scenario default) and records hit rates,
  eviction churn, and controller adjustments; the scored-beats-both gate
  applies here too.

Run::

    PYTHONPATH=src python benchmarks/bench_cache_tiers.py \\
        --merge-into BENCH_hotpath.json

``--merge-into`` updates the named trajectory file in place (adding/replacing
its ``"cache_tiers"`` section) so the perf-regression gate sees hot-path and
cache metrics in one artifact; ``--out`` writes a standalone JSON instead.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.stack import TieredFeatureCache
from repro.cache.tier import CacheTier
from repro.scenarios import SCENARIOS

DRIFT_POLICIES = ("none", "lru", "lfu", "clock", "degree-weighted", "scored")

SCENARIO_CONFIGS = {
    # The default recipe: static-degree single tier (the decaying baseline).
    "static-degree": CacheConfig(),
    "lru": CacheConfig(admission="always", eviction="lru"),
    "two-tier-adaptive": CacheConfig(
        tiers=2, admission="always", eviction="lru", hot_fraction=0.25, adaptive=True
    ),
    # The two degree heuristics vs. the scored policy, all on the same
    # two-tier adaptive stack so the comparison isolates policy quality
    # (static-degree above covers the single-tier degree heuristic).
    "degree-weighted": CacheConfig(
        tiers=2, admission="degree-weighted", eviction="degree-weighted",
        hot_fraction=0.25, adaptive=True,
    ),
    "scored": CacheConfig(
        tiers=2, admission="scored", eviction="scored",
        shared_admission="scored", shared_eviction="scored",
        hot_fraction=0.25, adaptive=True,
    ),
}

# The scored policy must beat both degree heuristics on both scenarios.
SCORED_RIVALS = ("static-degree", "degree-weighted")


# --------------------------------------------------------------------------- #
# Part 1: synthetic drifting-Zipf stream through the tier stack
# --------------------------------------------------------------------------- #
def drift_stream(num_ids: int, requests_per_phase: int, phases: int,
                 hot_size: int, seed: int):
    """Zipf-ish requests over a hot window that shifts every phase."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, hot_size + 1, dtype=np.float64)
    weights = 1.0 / ranks
    weights /= weights.sum()
    for phase in range(phases):
        start = (phase * hot_size // 2) % num_ids
        hot_ids = (start + np.arange(hot_size)) % num_ids
        for _ in range(requests_per_phase):
            batch = rng.choice(hot_ids, size=64, p=weights)
            yield phase, np.unique(batch)


def bench_drift_stream(num_ids: int, capacity: int, requests_per_phase: int,
                       phases: int, seed: int):
    dim = 16
    server = np.arange(num_ids * dim, dtype=np.float32).reshape(num_ids, dim)
    degrees = np.argsort(np.argsort(-np.arange(num_ids)))  # descending with id

    results = {}
    for policy in DRIFT_POLICIES:
        if policy == "none":
            admission = "static-degree"
        elif policy == "scored":
            admission = "scored"
        else:
            admission = "always"
        tier = CacheTier(
            "hot", capacity, dim,
            admission=admission, eviction=policy,
            degree_of=lambda ids: degrees[ids],
        )
        fetched = {"rows": 0}

        def fetch(ids, fetched=fetched):
            fetched["rows"] += len(ids)
            return server[ids], 0.0, 0

        stack = TieredFeatureCache([tier], fetch, dim)
        # Static tiers get the degree-ranked preload the static-cache source
        # uses; dynamic tiers warm up from their own misses.
        if policy == "none":
            top = np.sort(np.argsort(-degrees)[:capacity])
            tier.seed(top, server[top])

        phase_hits = np.zeros(phases, dtype=np.int64)
        phase_total = np.zeros(phases, dtype=np.int64)
        step = 0
        start_t = time.perf_counter()
        for phase, batch in drift_stream(
            num_ids, requests_per_phase, phases, hot_size=capacity, seed=seed
        ):
            rows, result = stack.fetch(batch, step)
            np.testing.assert_array_equal(rows, server[batch])
            phase_hits[phase] += result.num_hits
            phase_total[phase] += result.num_requested
            step += 1
        elapsed = time.perf_counter() - start_t

        curve = (phase_hits / np.maximum(1, phase_total)).round(4).tolist()
        results[policy] = {
            "hit_rate_curve": curve,
            "mean_hit_rate": float(phase_hits.sum() / max(1, phase_total.sum())),
            "rows_fetched_below": int(fetched["rows"]),
            "evictions": int(tier.stats.evictions),
            "seconds_total": elapsed,
        }
    return {
        "num_ids": num_ids,
        "capacity": capacity,
        "phases": phases,
        "requests_per_phase": requests_per_phase,
        "per_policy": results,
    }


# --------------------------------------------------------------------------- #
# Part 2: hot-set-drift scenario across cache configs
# --------------------------------------------------------------------------- #
def bench_drift_scenario(scale: float, epochs: int, seed: int):
    runs = {}
    for name, cache_config in SCENARIO_CONFIGS.items():
        workload = (
            SCENARIOS.build("hot-set-drift")
            .with_overrides(scale=scale, epochs=epochs)
            .materialize(seed=seed)
        )
        report = workload.run(cache_config=cache_config)
        rpc = report.report.rpc_stats
        runs[name] = {
            "cache_config": cache_config.describe(),
            "mean_hit_rate": report.mean_hit_rate,
            "hit_rate_curve": [
                round(r.hit_rate, 6) if r.hit_rate is not None else None
                for r in report.report.epoch_records
            ],
            "critical_path_time_s": report.critical_path_time_s,
            "fetch_latency_s": rpc.simulated_time_s,
            "rpc_bytes": int(rpc.bytes_fetched),
            "tier_hit_rates": report.mean_tier_hit_rates(),
            "tier_evictions": report.total_tier_evictions,
        }
    return {"scenario": "hot-set-drift", "scale": scale, "epochs": epochs, "per_config": runs}


def bench_churn_scenario(scale: float, epochs: int, seed: int):
    def one_run(cache_config):
        workload = (
            SCENARIOS.build("cache-churn")
            .with_overrides(scale=scale, epochs=epochs)
            .materialize(seed=seed)
        )
        report = workload.run(cache_config=cache_config)
        store = report.store_summary
        return {
            "cache_config": (
                "scenario default" if cache_config is None else cache_config.describe()
            ),
            "mean_hit_rate": report.mean_hit_rate,
            "tier_hit_rates": report.mean_tier_hit_rates(),
            "tier_evictions": report.total_tier_evictions,
            "controller_adjustments": store.get("halo.controller.adjustments", 0.0),
            "critical_path_time_s": report.critical_path_time_s,
        }

    default = one_run(None)
    per_config = {
        name: one_run(cache_config)
        for name, cache_config in SCENARIO_CONFIGS.items()
        if name in SCORED_RIVALS + ("scored",)
    }
    return {
        "scenario": "cache-churn",
        "scale": scale,
        "epochs": epochs,
        # The scenario-default run keeps its historical top-level keys so the
        # trend artifact's churn series stays continuous.
        **{k: default[k] for k in default if k != "cache_config"},
        "per_config": per_config,
    }


def scored_gains(per_config: dict) -> dict:
    """``{rival: scored_hit - rival_hit}`` for the scored-beats-both gate."""
    scored_hit = per_config["scored"]["mean_hit_rate"]
    return {
        rival: scored_hit - per_config[rival]["mean_hit_rate"]
        for rival in SCORED_RIVALS
    }


# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--stream-ids", type=int, default=20_000,
                        help="id universe of the synthetic drift stream")
    parser.add_argument("--stream-capacity", type=int, default=1_000,
                        help="tier capacity for the drift stream")
    parser.add_argument("--stream-phases", type=int, default=6,
                        help="drift phases (the hot window shifts each phase)")
    parser.add_argument("--stream-requests", type=int, default=150,
                        help="request batches per phase")
    parser.add_argument("--scenario-scale", type=float, default=0.05,
                        help="hot-set-drift/cache-churn dataset scale")
    parser.add_argument("--epochs", type=int, default=4, help="scenario epochs")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-hit-gain", type=float, default=0.005,
                        help="fail unless some non-default policy beats the static "
                             "default's mean hit rate on hot-set-drift by this margin, "
                             "and unless scored beats both degree heuristics by it "
                             "on hot-set-drift and cache-churn (gains are "
                             "deterministic at fixed seed/config)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_cache_tiers.json"),
                        help="standalone output file (ignored with --merge-into)")
    parser.add_argument("--merge-into", type=Path, default=None,
                        help="update this trajectory JSON in place, writing the "
                             "results under its 'cache_tiers' key")
    args = parser.parse_args(argv)

    print(f"[1/3] drift stream: {args.stream_phases} phases x "
          f"{args.stream_requests} batches, capacity {args.stream_capacity}")
    stream = bench_drift_stream(
        args.stream_ids, args.stream_capacity, args.stream_requests,
        args.stream_phases, args.seed,
    )
    for policy, row in stream["per_policy"].items():
        print(f"    {policy:>15}: mean hit {row['mean_hit_rate']:.3f}   "
              f"curve {row['hit_rate_curve']}   evictions {row['evictions']}")

    print(f"[2/3] hot-set-drift scenario: scale {args.scenario_scale}, "
          f"{args.epochs} epoch(s)")
    drift = bench_drift_scenario(args.scenario_scale, args.epochs, args.seed)
    for name, row in drift["per_config"].items():
        print(f"    {name:>17}: mean hit {row['mean_hit_rate']:.3f}   "
              f"fetch latency {row['fetch_latency_s']:.5f}s   "
              f"curve {row['hit_rate_curve']}")

    print(f"[3/3] cache-churn scenario: scale {args.scenario_scale}")
    churn = bench_churn_scenario(args.scenario_scale, min(args.epochs, 3), args.seed)
    print(f"    scenario default: mean hit {churn['mean_hit_rate']:.3f}   "
          f"evictions {churn['tier_evictions']}   "
          f"controller adjustments {int(churn['controller_adjustments'])}")
    for name, row in churn["per_config"].items():
        print(f"    {name:>17}: mean hit {row['mean_hit_rate']:.3f}   "
              f"evictions {row['tier_evictions']}")

    static_hit = drift["per_config"]["static-degree"]["mean_hit_rate"]
    best_name, best_hit = max(
        ((name, row["mean_hit_rate"]) for name, row in drift["per_config"].items()
         if name != "static-degree"),
        key=lambda item: item[1],
    )
    gain = best_hit - static_hit
    drift["best_non_default"] = {"name": best_name, "hit_gain_over_static": gain}
    print(f"    best non-default: {best_name} (+{gain:.3f} hit rate over static)")
    drift["scored_gains"] = scored_gains(drift["per_config"])
    churn["scored_gains"] = scored_gains(churn["per_config"])
    for scenario_name, gains in (("hot-set-drift", drift["scored_gains"]),
                                 ("cache-churn", churn["scored_gains"])):
        summary = ", ".join(f"{rival} {delta:+.4f}" for rival, delta in gains.items())
        print(f"    scored gains on {scenario_name}: {summary}")

    payload = {
        "benchmark": "cache_tiers",
        "generated_by": "benchmarks/bench_cache_tiers.py",
        "config": {
            "stream_ids": args.stream_ids,
            "stream_capacity": args.stream_capacity,
            "stream_phases": args.stream_phases,
            "stream_requests": args.stream_requests,
            "scenario_scale": args.scenario_scale,
            "epochs": args.epochs,
            "seed": args.seed,
        },
        "drift_stream": stream,
        "drift_scenario": drift,
        "churn_scenario": churn,
    }

    if args.merge_into is not None:
        trajectory = {}
        if args.merge_into.exists():
            trajectory = json.loads(args.merge_into.read_text())
        trajectory["cache_tiers"] = payload
        args.merge_into.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
        print(f"merged cache_tiers section into {args.merge_into}")
    else:
        args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")

    failed = False
    if gain < args.min_hit_gain:
        print(f"FAIL: best non-default policy gain {gain:.4f} is below the required "
              f"{args.min_hit_gain:.4f} on hot-set-drift", file=sys.stderr)
        failed = True
    for scenario_name, gains in (("hot-set-drift", drift["scored_gains"]),
                                 ("cache-churn", churn["scored_gains"])):
        for rival, delta in gains.items():
            if delta < args.min_hit_gain:
                print(f"FAIL: scored beats {rival} by only {delta:.4f} on "
                      f"{scenario_name} (required: {args.min_hit_gain:.4f})",
                      file=sys.stderr)
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
