"""Fig. 13: execution time and hit rate across the decay factor γ.

The paper sweeps γ over (0, 1) with error bars across the Δ values and finds
that low decay (γ ≥ 0.9) yields both the best hit rates and competitive
execution time, supporting the γ choices used in the headline experiments.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_cluster_config, bench_dataset, save_table
from repro.training.config import TrainConfig
from repro.training.sweep import gamma_sweep

GAMMAS = (0.3, 0.7, 0.95, 0.995)
DELTAS = (8, 32)


@pytest.mark.benchmark(group="fig13")
def test_fig13_gamma_sweep(benchmark, bench_scale, bench_epochs):
    dataset = bench_dataset("products", scale=bench_scale, seed=10)

    def run_sweep():
        return gamma_sweep(
            dataset,
            gamma_values=GAMMAS,
            delta_values=DELTAS,
            halo_fraction=0.35,
            cluster_config=bench_cluster_config(2, batch_size=128, seed=10),
            train_config=TrainConfig(epochs=bench_epochs, hidden_dim=32, seed=10),
        )

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for gamma, stats in results.items():
        rows.append(
            [gamma,
             round(stats["mean_time_s"], 4), round(stats["min_time_s"], 4), round(stats["max_time_s"], 4),
             round(stats["mean_hit_rate"], 3), round(stats["min_hit_rate"], 3), round(stats["max_hit_rate"], 3)]
        )
    save_table(
        "fig13_gamma_sweep",
        ["gamma", "mean time s", "min time s", "max time s",
         "mean hit rate", "min hit rate", "max hit rate"],
        rows,
        notes=(
            "Fig. 13 analog: varying the decay factor γ; min/max columns play the role of the paper's\n"
            "error bars over the Δ range. Paper shape: low decay (γ ≥ 0.9) achieves the best hit rates."
        ),
    )

    # Shape check: the best low-decay hit rate is at least as good as the best high-decay hit rate.
    low_decay = max(results[g]["mean_hit_rate"] for g in GAMMAS if g >= 0.9)
    high_decay = max(results[g]["mean_hit_rate"] for g in GAMMAS if g < 0.9)
    assert low_decay >= high_decay - 0.05
