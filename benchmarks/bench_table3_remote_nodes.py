"""Table III: average remote (halo) nodes per trainer and minibatches per trainer.

The paper keeps the batch size constant (2000), so growing the trainer count
shrinks both the per-trainer partition and the number of minibatches each
trainer processes per epoch — the effect that later depresses hit rates at
high trainer counts (Section V-A3).  This benchmark reproduces both columns
for a sweep of simulated machine counts.
"""

from __future__ import annotations

import pytest

from benchmarks.common import TRAINERS_PER_MACHINE, bench_cluster_config, bench_dataset, save_table
from repro.distributed.cluster import SimCluster


MACHINES = (2, 4, 8)


@pytest.mark.benchmark(group="table3")
def test_table3_remote_nodes_and_minibatches(benchmark, bench_scale):
    datasets = {
        name: bench_dataset(name, scale=bench_scale, seed=1)
        for name in ("arxiv", "products", "reddit", "papers")
    }

    def build_clusters():
        out = {}
        for name, ds in datasets.items():
            for machines in MACHINES:
                cluster = SimCluster(ds, bench_cluster_config(machines, seed=1))
                out[(name, machines)] = cluster.summary()
        return out

    summaries = benchmark.pedantic(build_clusters, rounds=1, iterations=1)

    rows = []
    for machines in MACHINES:
        row = [machines * TRAINERS_PER_MACHINE]
        for name in ("arxiv", "reddit", "products", "papers"):
            s = summaries[(name, machines)]
            row.append(f"{s['avg_remote_nodes_per_trainer']:.0f}/{s['minibatches_per_trainer']:.0f}")
        rows.append(row)
    save_table(
        "table3_remote_nodes",
        ["#trainers", "arxiv (halo/mb)", "reddit (halo/mb)", "products (halo/mb)", "papers (halo/mb)"],
        rows,
        notes=(
            "Table III analog: average remote nodes per trainer / minibatches per trainer per epoch.\n"
            "Expected shape: minibatches per trainer drop as trainers grow (constant batch size); "
            "larger datasets expose more remote nodes."
        ),
    )

    # Shape check: minibatches per trainer must not grow with trainer count.
    for name in datasets:
        mbs = [summaries[(name, m)]["minibatches_per_trainer"] for m in MACHINES]
        assert mbs[0] >= mbs[-1]
