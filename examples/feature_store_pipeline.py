#!/usr/bin/env python
"""The FeatureStore / MiniBatchPipeline API, end to end.

Demonstrates the seams the API redesign opened up:

1. assemble a pipeline by hand from chainable stages (seed >> sample >>
   fetch-feature >> batch) over a composed FeatureStore;
2. run every *registered* pipeline (baseline / prefetch / static-cache)
   through the same engine loop and compare them;
3. register a brand-new feature source + pipeline by name and run it without
   touching the engine — here, a "halo mirror" that keeps every halo feature
   resident (an infinite-capacity upper bound on any caching strategy).

Run with:  python examples/feature_store_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BatchStage,
    ClusterConfig,
    FeatureStore,
    FetchFeatureStage,
    FetchStats,
    LocalKVStoreSource,
    PrefetchConfig,
    SampleStage,
    SeedStage,
    SimCluster,
    TrainConfig,
    load_dataset,
)
from repro.features import FEATURE_SOURCES, SourceContext, build_feature_source
from repro.training import TrainingEngine
from repro.training.pipelines import PIPELINES, OverlappedTimingPolicy
from repro.sampling.pipeline import MiniBatchPipeline
from repro.utils.logging_utils import format_table


# --------------------------------------------------------------------------- #
# 3a. A custom source: mirror the entire halo locally (infinite cache).
# --------------------------------------------------------------------------- #
class HaloMirrorSource:
    """Upper bound for any halo caching strategy: everything is resident."""

    name = "halo-mirror"

    def __init__(self, rpc, partition):
        self.rpc = rpc
        self.partition = partition
        self._rows = None

    def initialize(self):
        halo = self.partition.halo_global
        rpc_time = 0.0
        if len(halo):
            owners = self.partition.halo_owner
            self._rows, rpc_time, _ = self.rpc.remote_pull(halo, owners)
        else:
            dim = self.rpc.servers[self.rpc.local_part].feature_dim
            self._rows = np.zeros((0, dim), dtype=np.float32)
        return {"num_prefetched": float(len(halo)), "buffer_capacity": float(len(halo)),
                "rpc_time_s": rpc_time, "num_halo_nodes": float(len(halo)),
                "bytes_fetched": float(self._rows.nbytes), "buffer_nbytes": float(self.nbytes()),
                "scoreboard_nbytes": 0.0}

    def fetch(self, global_ids):
        idx = np.searchsorted(self.partition.halo_global, global_ids)
        rows = self._rows[idx] if len(global_ids) else self._rows[:0]
        return rows, FetchStats(
            source=self.name, num_requested=int(len(global_ids)),
            num_hits=int(len(global_ids)), lookup_nodes=int(len(global_ids)),
        )

    def nbytes(self):
        return int(self._rows.nbytes) if self._rows is not None else 0

    def summary(self):
        return {"buffer_nbytes": float(self.nbytes())}


if "halo-mirror" not in FEATURE_SOURCES:
    FEATURE_SOURCES.register(
        "halo-mirror", lambda ctx: HaloMirrorSource(ctx.rpc, ctx.partition)
    )

if "halo-mirror" not in PIPELINES:
    @PIPELINES.register("halo-mirror")
    def build_halo_mirror_pipeline(trainer, cluster, prefetch_config=None, eviction_policy=None):
        ctx = SourceContext(rpc=trainer.rpc, partition=trainer.partition)
        store = FeatureStore(
            partition=trainer.partition,
            local_source=build_feature_source("local-kvstore", ctx),
            halo_source=build_feature_source("halo-mirror", ctx),
        )
        pipeline = (
            SeedStage(trainer.dataloader.seed_iterator)
            >> SampleStage(trainer.dataloader)
            >> FetchFeatureStage(store)
            >> BatchStage()
        )
        return pipeline.configure(timing=OverlappedTimingPolicy(), name="halo-mirror",
                                  feature_store=store, init_report=store.initialize())


def main() -> None:
    dataset = load_dataset("arxiv", scale=0.5, seed=0)
    cluster = SimCluster(
        dataset,
        ClusterConfig(num_machines=2, trainers_per_machine=2, batch_size=128,
                      fanouts=(5, 10), seed=0),
    )

    # ---- 1. a hand-assembled pipeline for one trainer ---------------------- #
    trainer = cluster.trainers[0]
    store = FeatureStore(
        partition=trainer.partition,
        local_source=LocalKVStoreSource(trainer.rpc),
        halo_source=build_feature_source(
            "buffered",
            SourceContext(rpc=trainer.rpc, partition=trainer.partition,
                          num_global_nodes=dataset.num_nodes,
                          prefetch_config=PrefetchConfig(halo_fraction=0.25, delta=16)),
        ),
    )
    pipeline: MiniBatchPipeline = (
        SeedStage(trainer.dataloader.seed_iterator)
        >> SampleStage(trainer.dataloader)
        >> FetchFeatureStage(store)
        >> BatchStage()
    )
    pipeline.configure(feature_store=store, init_report=store.initialize())
    print(f"pipeline: {pipeline.describe()}")
    batch = next(iter(pipeline.epoch()))
    halo_stats = batch.fetch.source("halo")
    print(f"first batch: {batch.minibatch.num_input_nodes} input nodes, "
          f"halo hit rate {halo_stats.hit_rate:.3f}, "
          f"rpc {halo_stats.rpc_time_s * 1e3:.3f} ms\n")

    # ---- 2 + 3. every registered pipeline through one engine --------------- #
    engine = TrainingEngine(cluster, TrainConfig(epochs=2, hidden_dim=32, seed=0))
    prefetch_config = PrefetchConfig(halo_fraction=0.25, gamma=0.995, delta=16)
    rows = []
    for name in ("baseline", "prefetch", "static-cache", "halo-mirror"):
        report = engine.run_pipeline(name, prefetch_config=prefetch_config)
        rows.append([
            name,
            f"{report.total_simulated_time_s:.4f}",
            f"{report.final_train_accuracy:.3f}",
            f"{report.hit_rate:.3f}" if report.hit_tracker is not None else "-",
            str(report.remote_nodes_fetched()),
        ])
    print(format_table(
        ["pipeline", "simulated time (s)", "train acc", "hit rate", "remote nodes"], rows
    ))
    print("\nThe halo-mirror bound shows what a perfect (infinite) cache would buy;")
    print("the scored prefetch buffer approaches it at a fraction of the memory.")


if __name__ == "__main__":
    main()
