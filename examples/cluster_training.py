#!/usr/bin/env python
"""Cluster simulation: run named scenario workloads through the ClusterEngine.

The paper's deployment is multi-machine — one graph partition per machine,
four trainers per machine, synchronous DDP.  The scenario registry packages
that deployment (and its failure modes) as named workloads; this example runs
each of them at small scale and prints the cluster-level telemetry the
:class:`~repro.training.cluster_engine.ClusterEngine` aggregates from the
per-trainer pipelines: critical-path time, barrier (straggler) wait, load
imbalance, prefetch hit rate, and RPC traffic.

It then drills into the ``straggler-machine`` scenario to show the per-trainer
view: the slow machine's trainers burn more DDP time, and — when the overlap
of Eqs. 3-5 cannot hide all of it — everyone else pays at the allreduce
barrier.

Run with:  python examples/cluster_training.py
"""

from __future__ import annotations

from repro import TrainConfig, available_scenarios, build_scenario
from repro.scenarios import training_scenarios
from repro.utils.logging_utils import format_table


def main() -> None:
    print("Registered cluster scenarios:", ", ".join(available_scenarios()))
    print("(serving scenarios run through `repro serve` — see examples/serving.py)")

    rows = []
    reports = {}
    for name in training_scenarios():
        workload = build_scenario(
            name,
            seed=0,
            scale=0.1,
            train_config=TrainConfig(epochs=2, hidden_dim=32, seed=0),
        )
        report = workload.run()
        reports[name] = report
        summary = report.summary()
        rows.append([
            name,
            int(summary["world_size"]),
            f"{summary['critical_path_time_s']:.4f}",
            f"{summary['total_barrier_wait_s']:.4f}",
            f"{summary['load_imbalance']:.3f}",
            f"{summary.get('mean_hit_rate', 0.0):.3f}",
            f"{summary['total_rpc_bytes'] / 1e6:.2f}",
        ])

    print("\nCluster-level telemetry (2 machines x 2 trainers, 2 epochs):\n")
    print(format_table(
        ["scenario", "trainers", "critical path s", "barrier wait s",
         "imbalance", "hit rate", "RPC MB"],
        rows,
    ))

    print("\nPer-trainer view of 'straggler-machine' (machine 0 is 2.5x slower):\n")
    report = reports["straggler-machine"]
    rows = [
        [t.global_rank, t.machine, f"{t.compute_multiplier:.1f}", t.num_steps,
         f"{t.components.get('ddp', 0.0):.5f}",
         f"{t.simulated_time_s:.4f}", f"{t.barrier_wait_s:.4f}"]
        for t in report.trainer_stats
    ]
    print(format_table(
        ["rank", "machine", "slowdown", "steps", "ddp s", "sim time s", "barrier wait s"],
        rows,
    ))
    print(
        f"\ncritical path: trainer {report.critical_trainer_rank} "
        f"at {report.critical_path_time_s:.4f}s; "
        f"total barrier wait {report.total_barrier_wait_s:.4f}s "
        f"(load imbalance {report.load_imbalance:.3f})"
    )


if __name__ == "__main__":
    main()
