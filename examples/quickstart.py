#!/usr/bin/env python
"""Quickstart: MassiveGNN prefetching vs. the DistDGL-style baseline.

Loads the products analog, builds a 2-machine x 2-trainer simulated cluster,
trains a 2-layer GraphSAGE with both data pipelines, and prints the end-to-end
comparison the paper's Fig. 6 is built from: simulated training time, percent
improvement, hit rate, and the reduction in remote feature fetches.

Both pipelines run through the same engine loop: ``compare_baseline_and_prefetch``
is a thin shim that runs the registered ``"baseline"`` and ``"prefetch"``
minibatch pipelines (see ``examples/feature_store_pipeline.py`` for the
underlying FeatureStore / MiniBatchPipeline API).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ClusterConfig, PrefetchConfig, TrainConfig, load_dataset
from repro.training import compare_baseline_and_prefetch
from repro.utils.logging_utils import format_table


def main() -> None:
    print("Loading the 'products' analog dataset ...")
    dataset = load_dataset("products", scale=0.25, seed=0)
    print(f"  {dataset.num_nodes} nodes, {dataset.num_edges} edges, "
          f"{dataset.feature_dim}-dim features, {dataset.num_classes} classes")

    prefetch_config = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16)
    cluster_config = ClusterConfig(
        num_machines=2,
        trainers_per_machine=2,
        batch_size=128,
        fanouts=(10, 25),     # the paper's GraphSAGE fan-out
        backend="cpu",
        seed=0,
    )
    train_config = TrainConfig(epochs=3, hidden_dim=64, evaluate=True, seed=0)

    print("\nTraining baseline (DistDGL-style) and MassiveGNN (prefetch + eviction) ...")
    baseline, prefetch = compare_baseline_and_prefetch(
        dataset, prefetch_config, cluster_config, train_config
    )

    rows = [
        ["simulated training time (s)",
         f"{baseline.total_simulated_time_s:.4f}", f"{prefetch.total_simulated_time_s:.4f}"],
        ["final train accuracy",
         f"{baseline.final_train_accuracy:.3f}", f"{prefetch.final_train_accuracy:.3f}"],
        ["validation accuracy",
         f"{baseline.val_accuracy:.3f}", f"{prefetch.val_accuracy:.3f}"],
        ["remote nodes fetched",
         str(baseline.remote_nodes_fetched()), str(prefetch.remote_nodes_fetched())],
        ["hit rate", "-", f"{prefetch.hit_rate:.3f}"],
        ["overlap efficiency", "-", f"{prefetch.overlap_efficiency:.3f}"],
    ]
    print("\n" + format_table(["metric", "baseline (DistDGL)", "MassiveGNN"], rows))
    print(
        f"\nEnd-to-end improvement: {prefetch.improvement_percent_vs(baseline):.1f}% "
        f"(speedup {prefetch.speedup_vs(baseline):.2f}x)"
    )
    print("Model accuracy is unchanged because prefetching only reorganizes the data pipeline.")


if __name__ == "__main__":
    main()
