#!/usr/bin/env python
"""Low-level walk-through of the prefetcher on a custom graph.

The other examples drive the high-level training API.  This one uses the
building blocks directly — generate a graph, partition it, build the per-
partition servers, run the neighbor sampler, and step the Prefetcher by hand —
to show exactly what happens inside one trainer: which sampled nodes are halo
nodes, which hit the buffer, what an eviction round replaces, and how the hit
rate evolves.

Run with:  python examples/prefetcher_internals.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PrefetchConfig, Prefetcher
from repro.distributed import CostModel, RPCChannel
from repro.distributed.server import PartitionServer
from repro.graph import build_partitions, make_custom_dataset, metis_partition
from repro.sampling import NeighborSampler, sample_for_partition, split_local_halo


def main() -> None:
    # 1. A custom dataset: 2,000 nodes, 12 communities, 16-dim features.
    dataset = make_custom_dataset(
        num_nodes=2000, avg_degree=20, feature_dim=16, num_classes=12, seed=7, name="demo"
    )
    print(f"Graph: {dataset.num_nodes} nodes, {dataset.num_edges} edges")

    # 2. Partition into 2 machines (METIS-like) and build the halo-aware views.
    result = metis_partition(dataset.graph, 2, seed=7)
    partitions = build_partitions(dataset.graph, result)
    part = partitions[0]
    print(f"Partition 0: {part.num_owned} owned nodes, {part.num_halo} halo nodes "
          f"(edge-cut fraction {result.stats['edge_cut_fraction']:.3f})")

    # 3. One KVStore server per partition plus this trainer's RPC channel.
    servers = {p.part_id: PartitionServer(p, dataset.features).kvstore for p in partitions}
    rpc = RPCChannel(servers, local_part=0, cost_model=CostModel.cpu())

    # 4. The prefetcher: buffer 25% of the halo nodes, gentle decay, evict every 4 steps.
    config = PrefetchConfig(halo_fraction=0.25, gamma=0.9, delta=4)
    prefetcher = Prefetcher(part, config, rpc, num_global_nodes=dataset.num_nodes)
    init = prefetcher.initialize()
    print(f"Prefetch buffer: {init.num_prefetched} nodes "
          f"({init.buffer_nbytes / 1024:.1f} KiB features, "
          f"{init.scoreboard_nbytes / 1024:.1f} KiB scoreboards)")

    # 5. Sample minibatches from the local partition and feed the halo nodes
    #    through the prefetcher, exactly as the training engine does.
    sampler = NeighborSampler(part.local_graph, fanouts=[5, 10], seed=7)
    owned_train = np.arange(part.num_owned)
    rng = np.random.default_rng(7)
    for step in range(12):
        seeds = rng.choice(owned_train, size=64, replace=False)
        minibatch = sample_for_partition(part, sampler, seeds, step=step)
        _, halo_ids, _, _ = split_local_halo(part, minibatch)
        outcome = prefetcher.process_minibatch(halo_ids, step=step)
        marker = "  <- eviction round" if outcome.eviction_round else ""
        print(
            f"step {step:2d}: sampled {minibatch.num_input_nodes:4d} input nodes "
            f"({len(halo_ids):4d} halo) | hits {outcome.num_hits:4d} "
            f"misses {outcome.num_misses:4d} | step hit rate {outcome.hit_rate:.2f} "
            f"| cumulative {prefetcher.hit_rate:.2f}{marker}"
        )
        if outcome.eviction_round and outcome.nodes_evicted:
            print(f"          evicted {outcome.nodes_evicted} cold nodes, "
                  f"fetched {outcome.nodes_replaced} hot replacements")

    summary = prefetcher.summary()
    print("\nPrefetcher summary:")
    for key in ("hit_rate", "remote_nodes_fetched", "remote_nodes_at_init",
                "remote_nodes_for_misses", "remote_nodes_for_replacement", "eviction_rounds"):
        print(f"  {key:30s} {summary[key]:.0f}" if key != "hit_rate" else f"  {key:30s} {summary[key]:.3f}")
    print(f"  total RPC requests             {rpc.stats.requests}")
    print(f"  total bytes over the network   {rpc.stats.bytes_fetched / 1024:.1f} KiB")


if __name__ == "__main__":
    main()
