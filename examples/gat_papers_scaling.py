#!/usr/bin/env python
"""GAT on the papers analog: backend contrast and scaling (paper Fig. 7).

Trains a 2-head GAT on the largest dataset analog with the prefetcher enabled,
on both the CPU and GPU cost-model backends and for two cluster sizes, and
prints the per-component time breakdown that explains where the improvement
comes from (overlap on CPU, RPC reduction on both).

Run with:  python examples/gat_papers_scaling.py
"""

from __future__ import annotations

from repro import ClusterConfig, CostModel, PrefetchConfig, SimCluster, TrainConfig, load_dataset
from repro.training.engine import TrainingEngine
from repro.utils.logging_utils import format_table

COMPONENTS = ("sampling", "lookup", "scoring", "rpc", "copy", "ddp", "allreduce")


def main() -> None:
    dataset = load_dataset("papers", scale=0.1, seed=2)
    print(f"Dataset: papers analog ({dataset.num_nodes} nodes, {dataset.num_edges} edges)")
    prefetch_config = PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16, scoreboard="compact")

    rows = []
    for backend in ("cpu", "gpu"):
        for machines in (2, 4):
            cluster = SimCluster(
                dataset,
                ClusterConfig(
                    num_machines=machines, trainers_per_machine=2, batch_size=64,
                    fanouts=(5, 10), backend=backend, seed=2,
                ),
                cost_model=CostModel.preset(backend),
            )
            engine = TrainingEngine(
                cluster, TrainConfig(epochs=2, arch="gat", hidden_dim=16, num_heads=2, seed=2)
            )
            baseline = engine.run_baseline()
            prefetch = engine.run_prefetch(prefetch_config)
            rows.append(
                [backend, machines * 2,
                 f"{baseline.total_simulated_time_s:.4f}",
                 f"{prefetch.total_simulated_time_s:.4f}",
                 f"{prefetch.improvement_percent_vs(baseline):.1f}",
                 f"{prefetch.hit_rate:.3f}",
                 f"{prefetch.overlap_efficiency:.2f}"]
            )
            breakdown = prefetch.component_breakdown
            total = sum(breakdown.get(c, 0.0) for c in COMPONENTS) or 1.0
            shares = ", ".join(f"{c}={100 * breakdown.get(c, 0.0) / total:.0f}%" for c in COMPONENTS)
            print(f"  [{backend}, {machines} machines] component shares: {shares}")

    print("\n" + format_table(
        ["backend", "#trainers", "baseline s", "MassiveGNN s", "improv %", "hit rate", "overlap"],
        rows,
    ))
    print(
        "\nThe GAT's heavier per-minibatch compute widens the DDP window on the CPU backend "
        "(perfect overlap), while the GPU backend benefits mainly from the reduced RPC volume."
    )


if __name__ == "__main__":
    main()
