#!/usr/bin/env python
"""Online inference serving: an open-loop request stream on the event loop.

A trained GNN does not retire when training ends — it serves. This example
runs the serving subsystem end to end:

1. materialize the ``steady-poisson`` scenario: the training cluster's
   partitions, tiered feature cache, and batched RPC, repurposed as a serving
   fleet (one worker per trainer context, requests routed to the partition
   that owns the requesting user);
2. serve a seeded Poisson request stream — each request samples the user's
   ego-net, fetches features through the cache, and runs a forward-only pass,
   all on the discrete event loop, so queue wait is measured rather than
   assumed;
3. print the latency ledger a serving system is judged by (p50/p95/p99,
   SLO-violation rate, per-tier cache hit rates), then rerun the same stream
   as a flash crowd to watch queueing push the p99 tail out.

Run with:  python examples/serving.py
"""

from __future__ import annotations

from repro.scenarios import SCENARIOS, serving_scenarios
from repro.utils.logging_utils import format_table

SCALE = 0.05
REQUESTS = 192
SEED = 0


def run(name: str, **spec_overrides):
    scenario = SCENARIOS.build(name)
    spec = scenario.serving.with_overrides(num_requests=REQUESTS, **spec_overrides)
    workload = scenario.with_overrides(scale=SCALE, serving=spec).materialize(seed=SEED)
    return workload.run()


def main() -> None:
    print("Serving scenarios:", ", ".join(serving_scenarios()))

    # ---- 1+2: the steady Poisson stream --------------------------------
    report = run("steady-poisson")
    print(f"\n[{report.scenario}] {report.arrival}: served {report.completed} "
          f"requests in {report.duration_s:.4f}s simulated "
          f"(cache warm-up {report.warmup_time_s:.4f}s, off the timeline)")

    rows = [
        [w.global_rank, w.machine, w.requests, f"{w.busy_time_s:.4f}",
         f"{w.hit_rate:.3f}" if w.hit_rate is not None else "-"]
        for w in report.worker_stats
    ]
    print(format_table(["worker", "machine", "requests", "busy s", "hit rate"], rows))

    # ---- 3: the latency ledger -----------------------------------------
    latency = report.latency_ms()
    print(f"\nlatency ms: p50 {latency['p50']:.3f}  p95 {latency['p95']:.3f}  "
          f"p99 {latency['p99']:.3f}  (mean {latency['mean']:.3f})")
    print("where the time goes (p95 per component, ms):")
    for name, summary in report.component_ms().items():
        print(f"  {name:<11s} {summary['p95']:.3f}")
    print(f"SLO {report.slo_ms:g} ms: {report.slo_violations} violations "
          f"({report.slo_violation_rate:.1%})")
    tiers = ", ".join(f"{k} {v:.3f}" for k, v in sorted(report.mean_tier_hit_rates().items()))
    print(f"cache tiers (hit rate): {tiers}")

    # ---- the same load as a flash crowd --------------------------------
    flash = run("flash-crowd-burst")
    steady_p99 = latency["p99"]
    flash_p99 = flash.latency_ms()["p99"]
    print(f"\n[{flash.scenario}] same average rate, 30% of requests in a 5% window:")
    print(f"  p99 {flash_p99:.3f} ms vs steady {steady_p99:.3f} ms "
          f"({flash_p99 / steady_p99:.1f}x), SLO violations "
          f"{flash.slo_violation_rate:.1%} (steady {report.slo_violation_rate:.1%})")
    for phase, summary in flash.phase_latency_ms().items():
        print(f"  {phase:<7s} phase p99 {summary['p99']:.3f} ms")
    print("\nOpen-loop arrivals never wait for completions, so the burst's queue "
          "wait lands in the ledger instead of silently stretching the stream.")


if __name__ == "__main__":
    main()
