#!/usr/bin/env python
"""Parameter tuning: find the best (f_h, gamma, delta) for a workload.

Reproduces the methodology behind the paper's Table IV and Figs. 12-13 at a
small scale: grid-search the prefetch parameters on the reddit analog, report
every point, classify each configuration into its Fig. 5 trade-off quadrant,
and print the time-optimal combination.

Run with:  python examples/parameter_tuning.py
"""

from __future__ import annotations

from repro import ClusterConfig, TrainConfig, load_dataset
from repro.perf.tradeoffs import classify_quadrant
from repro.training.sweep import find_optimal, run_parameter_sweep
from repro.utils.logging_utils import format_table


def main() -> None:
    dataset = load_dataset("reddit", scale=0.25, seed=1)
    print(f"Dataset: reddit analog ({dataset.num_nodes} nodes, {dataset.num_edges} edges)")

    cluster_config = ClusterConfig(
        num_machines=2, trainers_per_machine=2, batch_size=128, fanouts=(5, 10), seed=1
    )
    train_config = TrainConfig(epochs=2, hidden_dim=32, seed=1)

    print("\nRunning the parameter sweep (one baseline + one run per grid point) ...")
    sweep = run_parameter_sweep(
        dataset,
        cluster_config=cluster_config,
        train_config=train_config,
        halo_fractions=(0.15, 0.35, 0.5),
        gammas=(0.95, 0.995),
        deltas=(8, 64),
        include_no_eviction=True,
    )

    rows = []
    for point in sweep.points:
        quadrant = (
            classify_quadrant(point.gamma, point.delta).name
            if point.eviction_enabled
            else "no eviction"
        )
        rows.append(
            [point.halo_fraction, point.gamma, point.delta,
             "yes" if point.eviction_enabled else "no",
             f"{point.total_time_s:.4f}", f"{point.hit_rate:.3f}",
             f"{point.improvement_percent:.1f}", quadrant]
        )
    print("\n" + format_table(
        ["f_h", "gamma", "delta", "evict", "time s", "hit rate", "improv %", "quadrant"], rows
    ))

    best = find_optimal(sweep)
    print(
        f"\nTime-optimal configuration (Table IV rule): f_h={best['halo_fraction']}, "
        f"gamma={best['gamma']}, delta={int(best['delta'])} "
        f"-> {best['improvement_percent']:.1f}% over the baseline, hit rate {best['hit_rate']:.3f}"
    )
    print(
        "Baseline time for reference: "
        f"{sweep.baseline.total_simulated_time_s:.4f}s over {sweep.baseline.epochs} epochs"
    )


if __name__ == "__main__":
    main()
