"""Terminal (ASCII) visualization helpers.

The paper's figures are bar charts (training time + hit rate), line plots
(hit-rate progression, γ/Δ sweeps), and stacked breakdowns (Fig. 9).  This
module renders the same shapes as plain text so that examples and benchmark
harnesses can show results inline without a plotting dependency.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

_SPARK_CHARS = "▁▂▃▄▅▆▇█"
_BAR_CHAR = "█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render *values* as a one-line unicode sparkline.

    ``width`` resamples the series to a fixed number of characters (useful for
    long hit-rate trajectories).
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return ""
    if width is not None and width > 0 and data.size > width:
        # Simple block-mean resampling.
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array([data[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a])
    lo, hi = float(data.min()), float(data.max())
    if hi - lo < 1e-12:
        return _SPARK_CHARS[0] * len(data)
    scaled = (data - lo) / (hi - lo)
    idx = np.minimum((scaled * (len(_SPARK_CHARS) - 1)).round().astype(int), len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[i] for i in idx)


def horizontal_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    sort: bool = False,
) -> str:
    """Render a labelled horizontal bar chart (Fig. 6-style comparison)."""
    if not values:
        return ""
    items: List = list(values.items())
    if sort:
        items.sort(key=lambda kv: kv[1], reverse=True)
    max_value = max(v for _, v in items)
    max_label = max(len(str(k)) for k, _ in items)
    lines = []
    for label, value in items:
        filled = 0 if max_value <= 0 else int(round(width * value / max_value))
        bar = _BAR_CHAR * filled
        lines.append(f"{str(label).ljust(max_label)} | {bar.ljust(width)} {value:.4g}{unit}")
    return "\n".join(lines)


def stacked_breakdown(
    breakdown: Mapping[str, float],
    width: int = 60,
    min_share: float = 0.005,
) -> str:
    """Render a one-line stacked composition bar plus a legend (Fig. 9-style)."""
    total = sum(v for v in breakdown.values() if v > 0)
    if total <= 0:
        return "(empty breakdown)"
    symbols = "#@%*+=-:."
    entries = [(k, v) for k, v in breakdown.items() if v / total >= min_share]
    entries.sort(key=lambda kv: kv[1], reverse=True)
    bar_parts: List[str] = []
    legend_parts: List[str] = []
    for i, (name, value) in enumerate(entries):
        sym = symbols[i % len(symbols)]
        chars = max(1, int(round(width * value / total)))
        bar_parts.append(sym * chars)
        legend_parts.append(f"{sym} {name} {100 * value / total:.1f}%")
    return "[" + "".join(bar_parts)[:width].ljust(width) + "]\n" + "  ".join(legend_parts)


def line_plot(
    series: Mapping[str, Sequence[float]],
    height: int = 10,
    width: int = 60,
    y_label: str = "",
) -> str:
    """Render one or more series as an ASCII line plot (Fig. 10 / 12 / 13 style)."""
    if not series:
        return ""
    markers = "*o+x.#@"
    all_values = np.concatenate([np.asarray(list(v), dtype=np.float64) for v in series.values() if len(v)])
    if all_values.size == 0:
        return ""
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, values) in enumerate(series.items()):
        data = np.asarray(list(values), dtype=np.float64)
        if data.size == 0:
            continue
        xs = np.linspace(0, width - 1, data.size).round().astype(int)
        ys = ((data - lo) / (hi - lo) * (height - 1)).round().astype(int)
        for x, y in zip(xs, ys):
            grid[height - 1 - y][x] = markers[s_idx % len(markers)]
    lines = []
    for row_idx, row in enumerate(grid):
        value = hi - (hi - lo) * row_idx / (height - 1)
        lines.append(f"{value:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    legend = "  ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series.keys())
    )
    header = f"{y_label}\n" if y_label else ""
    return header + "\n".join(lines) + "\n" + legend


def hit_rate_plot(tracker, width: int = 60, height: int = 8) -> str:
    """Plot a :class:`~repro.core.metrics.HitRateTracker`'s cumulative trajectory."""
    running = tracker.running_hit_rate()
    if len(running) == 0:
        return "(no hit-rate history)"
    plot = line_plot({"cumulative hit rate": running}, height=height, width=width)
    marks = ", ".join(str(s) for s in tracker.eviction_steps[:10])
    suffix = f"\neviction points at minibatches: {marks}" if tracker.eviction_steps else ""
    return plot + suffix


def comparison_summary(baseline_report, prefetch_report, width: int = 40) -> str:
    """Side-by-side Fig. 6-style summary of two training reports."""
    chart = horizontal_bar_chart(
        {
            "baseline (DistDGL)": baseline_report.total_simulated_time_s,
            "MassiveGNN": prefetch_report.total_simulated_time_s,
        },
        width=width,
        unit=" s",
    )
    improvement = prefetch_report.improvement_percent_vs(baseline_report)
    lines = [
        chart,
        f"improvement: {improvement:.1f}%   speedup: {prefetch_report.speedup_vs(baseline_report):.2f}x",
        f"hit rate: {prefetch_report.hit_rate:.3f}   overlap efficiency: {prefetch_report.overlap_efficiency:.3f}",
        f"remote nodes fetched: {baseline_report.remote_nodes_fetched()} -> {prefetch_report.remote_nodes_fetched()}",
    ]
    return "\n".join(lines)
