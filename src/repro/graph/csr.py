"""Compressed sparse row (CSR) graph container.

This is the in-memory graph representation used throughout the library.  It is
deliberately minimal — an ``indptr`` / ``indices`` pair plus helpers — because
the distributed-training substrate only needs fast neighborhood lookups,
degree queries, and induced-subgraph extraction.  All node identifiers are
``int64``; features and labels live outside the structure (see
:mod:`repro.graph.datasets`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.utils.validation import check_1d_int_array


@dataclass(frozen=True)
class SharedCSRHandle:
    """Pickle-safe pointer to a CSR graph exported as memory-mapped ``.npy`` files.

    The handle carries only paths and the node count, never live arrays, so it
    can cross a process boundary under any multiprocessing start method.
    """

    indptr_path: str
    indices_path: str
    num_nodes: int


@dataclass
class CSRGraph:
    """A directed graph in CSR format.

    Attributes
    ----------
    indptr:
        ``int64`` array of shape ``(num_nodes + 1,)``; row pointer.
    indices:
        ``int64`` array of shape ``(num_edges,)``; column indices (out-neighbors).
    num_nodes:
        Number of nodes.  Node ids are ``0 .. num_nodes - 1``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_nodes: int

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if len(self.indptr) != self.num_nodes + 1:
            raise ValueError(
                f"indptr length {len(self.indptr)} does not match num_nodes={self.num_nodes}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= self.num_nodes):
            raise ValueError("indices contain out-of-range node ids")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: Optional[int] = None,
        *,
        symmetrize: bool = False,
        remove_self_loops: bool = False,
        deduplicate: bool = True,
    ) -> "CSRGraph":
        """Build a CSR graph from an edge list.

        Parameters
        ----------
        src, dst:
            Endpoint arrays of equal length.
        num_nodes:
            Total node count; inferred from the maximum endpoint if omitted.
        symmetrize:
            Add the reverse of every edge (used for undirected graphs such as
            the OGB-style datasets in this reproduction).
        remove_self_loops:
            Drop ``u -> u`` edges.
        deduplicate:
            Collapse parallel edges.
        """
        src = check_1d_int_array(src, "src")
        dst = check_1d_int_array(dst, "dst")
        if len(src) != len(dst):
            raise ValueError("src and dst must have equal length")
        if num_nodes is None:
            num_nodes = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        if symmetrize:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if remove_self_loops and len(src):
            keep = src != dst
            src, dst = src[keep], dst[keep]
        if deduplicate and len(src):
            key = src.astype(np.int64) * np.int64(num_nodes) + dst
            _, unique_idx = np.unique(key, return_index=True)
            src, dst = src[unique_idx], dst[unique_idx]
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        counts = np.bincount(src, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr=indptr, indices=dst.astype(np.int64), num_nodes=int(num_nodes))

    @classmethod
    def empty(cls, num_nodes: int) -> "CSRGraph":
        """Graph with *num_nodes* nodes and no edges."""
        return cls(
            indptr=np.zeros(num_nodes + 1, dtype=np.int64),
            indices=np.zeros(0, dtype=np.int64),
            num_nodes=num_nodes,
        )

    # ------------------------------------------------------------------ #
    # Shared-memory export
    # ------------------------------------------------------------------ #
    def to_shared(self, directory: str, prefix: str = "graph") -> SharedCSRHandle:
        """Export the CSR arrays as ``.npy`` files for zero-copy worker access.

        Worker processes re-open the files with :meth:`from_shared`; the OS
        page cache backs all mappings with the same physical pages, so the
        graph is shared rather than duplicated per process.
        """
        os.makedirs(directory, exist_ok=True)
        indptr_path = os.path.join(directory, f"{prefix}_indptr.npy")
        indices_path = os.path.join(directory, f"{prefix}_indices.npy")
        np.save(indptr_path, np.ascontiguousarray(self.indptr))
        np.save(indices_path, np.ascontiguousarray(self.indices))
        return SharedCSRHandle(
            indptr_path=indptr_path,
            indices_path=indices_path,
            num_nodes=self.num_nodes,
        )

    @classmethod
    def from_shared(cls, handle: SharedCSRHandle) -> "CSRGraph":
        """Re-open a :meth:`to_shared` export as a read-only memory-mapped graph.

        The returned graph's arrays are ``mmap_mode="r"`` memmaps: reads are
        zero-copy (``__post_init__``'s ``asarray`` passes ``int64`` memmaps
        through untouched) and any write attempt raises ``ValueError``.
        """
        return cls(
            indptr=np.load(handle.indptr_path, mmap_mode="r"),
            indices=np.load(handle.indices_path, mmap_mode="r"),
            num_nodes=handle.num_nodes,
        )

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of (directed) edges stored."""
        return int(len(self.indices))

    def out_degree(self, nodes: Optional[np.ndarray] = None) -> np.ndarray:
        """Out-degree of *nodes* (all nodes when omitted)."""
        degs = np.diff(self.indptr)
        if nodes is None:
            return degs
        nodes = check_1d_int_array(nodes, "nodes", max_value=self.num_nodes)
        return degs[nodes]

    def in_degree(self) -> np.ndarray:
        """In-degree of every node (computed on demand)."""
        return np.bincount(self.indices, minlength=self.num_nodes).astype(np.int64)

    def degree(self, nodes: Optional[np.ndarray] = None) -> np.ndarray:
        """Alias of :meth:`out_degree`; symmetric graphs use it as total degree."""
        return self.out_degree(nodes)

    def neighbors(self, node: int) -> np.ndarray:
        """Out-neighbors of a single node (a view into ``indices``)."""
        if node < 0 or node >= self.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.num_nodes})")
        return self.indices[self.indptr[node]: self.indptr[node + 1]]

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` edge arrays."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), np.diff(self.indptr))
        return src, self.indices.copy()

    def has_edge(self, u: int, v: int) -> bool:
        """True if the directed edge ``u -> v`` exists."""
        neigh = self.neighbors(u)
        idx = np.searchsorted(neigh, v)
        return bool(idx < len(neigh) and neigh[idx] == v)

    def is_symmetric(self) -> bool:
        """True if for every edge ``u -> v`` the reverse edge exists."""
        src, dst = self.edges()
        fwd = set(zip(src.tolist(), dst.tolist()))
        return all((v, u) in fwd for (u, v) in fwd)

    def nbytes(self) -> int:
        """Memory footprint of the CSR arrays in bytes."""
        return int(self.indptr.nbytes + self.indices.nbytes)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def reverse(self) -> "CSRGraph":
        """Graph with all edges reversed."""
        src, dst = self.edges()
        return CSRGraph.from_edges(dst, src, num_nodes=self.num_nodes, deduplicate=False)

    def induced_subgraph(self, nodes: np.ndarray) -> Tuple["CSRGraph", np.ndarray]:
        """Induced subgraph on *nodes*.

        Returns
        -------
        (subgraph, node_map):
            ``subgraph`` uses local ids ``0..len(nodes)-1`` in the order given;
            ``node_map`` maps local id -> original global id.
        """
        nodes = check_1d_int_array(nodes, "nodes", max_value=self.num_nodes)
        if len(np.unique(nodes)) != len(nodes):
            raise ValueError("nodes must be unique")
        mask = np.full(self.num_nodes, -1, dtype=np.int64)
        mask[nodes] = np.arange(len(nodes), dtype=np.int64)
        src, dst = self.edges()
        keep = (mask[src] >= 0) & (mask[dst] >= 0)
        sub = CSRGraph.from_edges(
            mask[src[keep]], mask[dst[keep]], num_nodes=len(nodes), deduplicate=False
        )
        return sub, nodes.copy()

    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (for tests and small examples)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_nodes))
        src, dst = self.edges()
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
        return g

    def connected_components(self) -> np.ndarray:
        """Weakly connected component label per node (union-find)."""
        parent = np.arange(self.num_nodes, dtype=np.int64)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        src, dst = self.edges()
        for u, v in zip(src.tolist(), dst.tolist()):
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[ru] = rv
        labels = np.array([find(i) for i in range(self.num_nodes)], dtype=np.int64)
        _, relabeled = np.unique(labels, return_inverse=True)
        return relabeled.astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"


def validate_graph(graph: CSRGraph) -> None:
    """Run the CSR invariants explicitly (useful in property tests)."""
    CSRGraph(indptr=graph.indptr, indices=graph.indices, num_nodes=graph.num_nodes)


def merge_graphs(graphs: Iterable[CSRGraph]) -> CSRGraph:
    """Disjoint union of several graphs, relabelling nodes consecutively."""
    srcs, dsts, offset = [], [], 0
    total = 0
    for g in graphs:
        s, d = g.edges()
        srcs.append(s + offset)
        dsts.append(d + offset)
        offset += g.num_nodes
        total += g.num_nodes
    if not srcs:
        return CSRGraph.empty(0)
    return CSRGraph.from_edges(
        np.concatenate(srcs), np.concatenate(dsts), num_nodes=total, deduplicate=False
    )
