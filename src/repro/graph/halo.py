"""Per-partition local graph construction with halo nodes.

DistDGL's first level of partitioning stores, for every partition *p*, an
induced subgraph over the nodes owned by *p* **plus** the one-hop "halo"
(remotely owned) neighbors of those nodes.  Halo nodes appear in the local
structure so that samplers can walk one hop off-partition, but their features
live on the remote owner's KVStore — fetching them is exactly the RPC traffic
MassiveGNN's prefetcher eliminates.

:class:`GraphPartition` packages the local CSR structure, the owned/halo node
lists (in global ids), and the local<->global translation used by samplers,
the KVStore, and the prefetcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import PartitionResult
from repro.graph.partition_book import PartitionBook
from repro.utils.validation import check_1d_int_array


@dataclass
class GraphPartition:
    """Local view of one partition (owned nodes + halo)."""

    part_id: int
    owned_global: np.ndarray          # global ids owned here, ascending
    halo_global: np.ndarray           # global ids of halo (remote) nodes, ascending
    halo_owner: np.ndarray            # owning partition of each halo node
    local_graph: CSRGraph             # CSR over local ids [owned ... halo]
    local_to_global: np.ndarray       # local id -> global id
    global_degrees: np.ndarray        # global degree of every local node (owned+halo)
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def num_owned(self) -> int:
        return int(len(self.owned_global))

    @property
    def num_halo(self) -> int:
        return int(len(self.halo_global))

    @property
    def num_local(self) -> int:
        return self.num_owned + self.num_halo

    def is_halo_local_id(self, local_ids: np.ndarray) -> np.ndarray:
        """Mask of local ids that refer to halo nodes."""
        local_ids = np.asarray(local_ids, dtype=np.int64)
        return local_ids >= self.num_owned

    def global_ids(self, local_ids: np.ndarray) -> np.ndarray:
        """Translate local ids to global ids."""
        local_ids = check_1d_int_array(local_ids, "local_ids", max_value=self.num_local)
        return self.local_to_global[local_ids]

    def local_ids(self, global_ids: np.ndarray) -> np.ndarray:
        """Translate global ids to local ids; raises if a node is not present."""
        global_ids = check_1d_int_array(global_ids, "global_ids")
        idx = np.searchsorted(self._sorted_global, global_ids)
        bad = (idx >= len(self._sorted_global)) | (self._sorted_global[np.minimum(idx, len(self._sorted_global) - 1)] != global_ids)
        if np.any(bad):
            missing = global_ids[bad][:5]
            raise KeyError(f"nodes {missing.tolist()} are not present in partition {self.part_id}")
        return self._sorted_to_local[idx]

    def contains(self, global_ids: np.ndarray) -> np.ndarray:
        """Mask of which global ids exist in this partition (owned or halo)."""
        global_ids = check_1d_int_array(global_ids, "global_ids")
        idx = np.searchsorted(self._sorted_global, global_ids)
        idx = np.minimum(idx, len(self._sorted_global) - 1)
        return self._sorted_global[idx] == global_ids if len(self._sorted_global) else np.zeros(len(global_ids), dtype=bool)

    def halo_degrees(self) -> np.ndarray:
        """Global degrees of the halo nodes (used for degree-based prefetching)."""
        return self.global_degrees[self.num_owned:]

    def halo_owners_of(self, global_ids: np.ndarray) -> np.ndarray:
        """Owning partition of each halo id, validating membership.

        Ids that are not halo neighbors of this partition have no entry in the
        halo tables; a blind ``searchsorted`` would silently route them to a
        wrong owner (whose KVStore would then reject or — worse — a clipped
        lookup would serve the wrong row), so they raise ``KeyError`` instead.
        """
        global_ids = check_1d_int_array(global_ids, "global_ids")
        if len(global_ids) == 0:
            return np.zeros(0, dtype=np.int64)
        idx = np.searchsorted(self.halo_global, global_ids)
        in_range = idx < len(self.halo_global)
        valid = in_range.copy()
        valid[in_range] = self.halo_global[idx[in_range]] == global_ids[in_range]
        if not np.all(valid):
            missing = global_ids[~valid][:5]
            raise KeyError(
                f"nodes {missing.tolist()} are not halo neighbors of partition "
                f"{self.part_id}; cannot resolve their owners"
            )
        return self.halo_owner[idx]

    def __post_init__(self) -> None:
        self.owned_global = np.asarray(self.owned_global, dtype=np.int64)
        self.halo_global = np.asarray(self.halo_global, dtype=np.int64)
        self.halo_owner = np.asarray(self.halo_owner, dtype=np.int64)
        self.local_to_global = np.asarray(self.local_to_global, dtype=np.int64)
        # Sorted lookup table for local_ids()/contains().
        order = np.argsort(self.local_to_global)
        self._sorted_global = self.local_to_global[order]
        self._sorted_to_local = order.astype(np.int64)


def build_partitions(
    graph: CSRGraph,
    result: PartitionResult,
    book: Optional[PartitionBook] = None,
) -> List[GraphPartition]:
    """Materialize :class:`GraphPartition` objects for every partition.

    The local graph of partition *p* contains every edge whose **source** is
    owned by *p*; destinations may be owned or halo.  Halo nodes have no
    outgoing edges in the local structure (their neighborhoods live on the
    owning partition), matching DistDGL's local sampling behaviour.
    """
    if book is None:
        book = PartitionBook.from_result(result)
    parts = result.parts
    global_degrees = graph.out_degree()
    src_all, dst_all = graph.edges()
    partitions: List[GraphPartition] = []

    for p in range(result.num_parts):
        owned = book.partition_nodes(p)
        owned_mask = parts == p
        edge_mask = owned_mask[src_all]
        src, dst = src_all[edge_mask], dst_all[edge_mask]
        halo = np.unique(dst[~owned_mask[dst]])
        local_order = np.concatenate([owned, halo])
        global_to_local = np.full(graph.num_nodes, -1, dtype=np.int64)
        global_to_local[local_order] = np.arange(len(local_order), dtype=np.int64)
        local_graph = CSRGraph.from_edges(
            global_to_local[src],
            global_to_local[dst],
            num_nodes=len(local_order),
            deduplicate=False,
        )
        partition = GraphPartition(
            part_id=p,
            owned_global=owned,
            halo_global=halo,
            halo_owner=parts[halo] if len(halo) else np.zeros(0, dtype=np.int64),
            local_graph=local_graph,
            local_to_global=local_order,
            global_degrees=global_degrees[local_order],
            metadata={
                "edge_cut_fraction": result.stats.get("edge_cut_fraction", 0.0),
                "halo_fraction": float(len(halo)) / max(1, len(local_order)),
            },
        )
        partitions.append(partition)
    return partitions


def halo_statistics(partitions: List[GraphPartition]) -> Dict[str, float]:
    """Aggregate halo statistics across partitions (Table III style)."""
    halos = np.array([p.num_halo for p in partitions], dtype=np.float64)
    owned = np.array([p.num_owned for p in partitions], dtype=np.float64)
    return {
        "mean_halo": float(halos.mean()) if len(halos) else 0.0,
        "max_halo": float(halos.max()) if len(halos) else 0.0,
        "mean_owned": float(owned.mean()) if len(owned) else 0.0,
        "mean_halo_fraction": float((halos / np.maximum(owned + halos, 1)).mean()) if len(halos) else 0.0,
    }
