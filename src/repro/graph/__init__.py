"""Graph substrate: CSR container, generators, datasets, partitioning, halos."""

from repro.graph.csr import CSRGraph, merge_graphs, validate_graph
from repro.graph.datasets import (
    DATASET_SPECS,
    DatasetSpec,
    GraphDataset,
    available_datasets,
    load_dataset,
    make_custom_dataset,
)
from repro.graph.generators import (
    chung_lu_edges,
    class_informative_features,
    planted_partition_graph,
    powerlaw_degree_sequence,
    rmat_edges,
    rmat_graph,
    train_val_test_split,
)
from repro.graph.halo import GraphPartition, build_partitions, halo_statistics
from repro.graph.partition import (
    PartitionResult,
    balance,
    edge_cut,
    edge_cut_fraction,
    hash_partition,
    metis_partition,
    partition_graph,
    random_partition,
    skewed_partition,
)
from repro.graph.partition_book import PartitionBook

__all__ = [
    "CSRGraph",
    "merge_graphs",
    "validate_graph",
    "DATASET_SPECS",
    "DatasetSpec",
    "GraphDataset",
    "available_datasets",
    "load_dataset",
    "make_custom_dataset",
    "chung_lu_edges",
    "class_informative_features",
    "planted_partition_graph",
    "powerlaw_degree_sequence",
    "rmat_edges",
    "rmat_graph",
    "train_val_test_split",
    "GraphPartition",
    "build_partitions",
    "halo_statistics",
    "PartitionResult",
    "balance",
    "edge_cut",
    "edge_cut_fraction",
    "hash_partition",
    "metis_partition",
    "partition_graph",
    "random_partition",
    "skewed_partition",
    "PartitionBook",
]
