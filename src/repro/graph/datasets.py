"""Synthetic OGB-style dataset registry.

Each dataset mirrors one of the paper's inputs (Table II): the relative node
counts, average degrees, and — exactly — the feature dimensions are preserved,
while absolute sizes are scaled down so experiments complete on a single
machine.  The ``scale`` argument lets tests shrink datasets further and lets
benchmark runs grow them.

=============  ===========  ===========  ============  ===========
paper dataset  paper |V|    paper |E|    feature dim   analog |V| (scale=1)
=============  ===========  ===========  ============  ===========
arxiv          0.16M        1.16M        128           4,096
products       2.4M         61.85M       100           16,384
reddit         0.23M        114.61M      602           6,144
papers         111M         1.6B         128           32,768
=============  ===========  ===========  ============  ===========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph import generators as gen
from repro.utils.rng import SeedLike, derive_seed, ensure_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a synthetic dataset analog."""

    name: str
    base_num_nodes: int
    avg_degree: float
    feature_dim: int
    num_classes: int
    generator: str  # "rmat" or "planted"
    intra_fraction: float = 0.8
    degree_exponent: float = 2.3
    paper_num_nodes: str = ""
    paper_num_edges: str = ""

    def scaled_nodes(self, scale: float) -> int:
        """Node count after applying a scale multiplier (minimum 256 nodes)."""
        return max(256, int(round(self.base_num_nodes * scale)))


@dataclass
class GraphDataset:
    """A fully materialized dataset: graph + features + labels + splits."""

    name: str
    graph: CSRGraph
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    num_classes: int
    spec: Optional[DatasetSpec] = None
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def feature_dim(self) -> int:
        return int(self.features.shape[1])

    def train_nids(self) -> np.ndarray:
        """Global ids of training nodes."""
        return np.nonzero(self.train_mask)[0].astype(np.int64)

    def val_nids(self) -> np.ndarray:
        return np.nonzero(self.val_mask)[0].astype(np.int64)

    def test_nids(self) -> np.ndarray:
        return np.nonzero(self.test_mask)[0].astype(np.int64)

    def feature_nbytes(self) -> int:
        return int(self.features.nbytes)

    def summary(self) -> Dict[str, float]:
        """Table-II style statistics."""
        degs = self.graph.out_degree()
        return {
            "num_nodes": float(self.num_nodes),
            "num_edges": float(self.num_edges),
            "feature_dim": float(self.feature_dim),
            "num_classes": float(self.num_classes),
            "avg_degree": float(degs.mean()) if len(degs) else 0.0,
            "max_degree": float(degs.max()) if len(degs) else 0.0,
        }


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "arxiv": DatasetSpec(
        name="arxiv",
        base_num_nodes=4096,
        avg_degree=14.0,
        feature_dim=128,
        num_classes=40,
        generator="rmat",
        paper_num_nodes="0.16M",
        paper_num_edges="1.16M",
    ),
    "products": DatasetSpec(
        name="products",
        base_num_nodes=16384,
        avg_degree=50.0,
        feature_dim=100,
        num_classes=47,
        generator="planted",
        intra_fraction=0.75,
        paper_num_nodes="2.4M",
        paper_num_edges="61.85M",
    ),
    "reddit": DatasetSpec(
        name="reddit",
        base_num_nodes=6144,
        avg_degree=96.0,
        feature_dim=602,
        num_classes=41,
        generator="planted",
        intra_fraction=0.7,
        degree_exponent=2.1,
        paper_num_nodes="0.23M",
        paper_num_edges="114.61M",
    ),
    "papers": DatasetSpec(
        name="papers",
        base_num_nodes=32768,
        avg_degree=30.0,
        feature_dim=128,
        num_classes=172,
        generator="rmat",
        paper_num_nodes="111M",
        paper_num_edges="1.6B",
    ),
}


def available_datasets() -> list:
    """Names of the registered dataset analogs."""
    return sorted(DATASET_SPECS)


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: SeedLike = 0,
    feature_noise: float = 1.0,
    homophily_rounds: int = 1,
) -> GraphDataset:
    """Materialize a synthetic analog of one of the paper's datasets.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (``arxiv``, ``products``, ``reddit``,
        ``papers``).
    scale:
        Multiplier on the base node count (``0.1`` for quick tests, ``>1`` for
        larger benchmark runs).
    seed:
        Seed controlling graph topology, features, labels, and splits.
    feature_noise:
        Standard deviation of the non-informative feature noise.
    homophily_rounds:
        Rounds of neighbor-majority label smoothing (0 disables).
    """
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    check_positive(scale, "scale")
    spec = DATASET_SPECS[name]
    num_nodes = spec.scaled_nodes(scale)
    rng = ensure_rng(seed)

    if spec.generator == "rmat":
        # Pick the nearest power-of-two scale for RMAT, then trim.
        rmat_scale = max(8, int(np.ceil(np.log2(num_nodes))))
        edge_factor = max(1, int(round(spec.avg_degree / 2)))
        graph_full = gen.rmat_graph(
            rmat_scale, edge_factor, seed=derive_seed(seed, 1)
        )
        keep = np.arange(num_nodes, dtype=np.int64)
        graph, _ = graph_full.induced_subgraph(keep)
        labels = _degree_band_labels(graph, spec.num_classes, rng)
    elif spec.generator == "planted":
        graph, labels = gen.planted_partition_graph(
            num_nodes,
            spec.num_classes,
            spec.avg_degree,
            intra_fraction=spec.intra_fraction,
            degree_exponent=spec.degree_exponent,
            seed=derive_seed(seed, 2),
        )
    else:  # pragma: no cover - registry is static
        raise ValueError(f"unknown generator kind {spec.generator!r}")

    if homophily_rounds:
        labels = gen.smooth_labels_by_propagation(
            graph, labels, rounds=homophily_rounds, seed=derive_seed(seed, 3)
        )
    labels = np.clip(labels, 0, spec.num_classes - 1)
    features = gen.class_informative_features(
        labels, spec.feature_dim, noise=feature_noise, seed=derive_seed(seed, 4)
    )
    train_mask, val_mask, test_mask = gen.train_val_test_split(
        graph.num_nodes, seed=derive_seed(seed, 5)
    )
    return GraphDataset(
        name=name,
        graph=graph,
        features=features,
        labels=labels,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        num_classes=spec.num_classes,
        spec=spec,
        metadata={"scale": float(scale)},
    )


def make_custom_dataset(
    num_nodes: int,
    avg_degree: float,
    feature_dim: int,
    num_classes: int,
    generator: str = "planted",
    seed: SeedLike = 0,
    name: str = "custom",
) -> GraphDataset:
    """Build a dataset outside the registry (used by examples and tests)."""
    spec = DatasetSpec(
        name=name,
        base_num_nodes=num_nodes,
        avg_degree=avg_degree,
        feature_dim=feature_dim,
        num_classes=num_classes,
        generator=generator,
    )
    original = DATASET_SPECS.get(name)
    DATASET_SPECS[name] = spec
    try:
        return load_dataset(name, scale=1.0, seed=seed)
    finally:
        if original is None:
            DATASET_SPECS.pop(name, None)
        else:
            DATASET_SPECS[name] = original


def _degree_band_labels(
    graph: CSRGraph, num_classes: int, rng: np.random.Generator
) -> np.ndarray:
    """Labels correlated with graph structure (degree bands + noise).

    Used for RMAT graphs, which do not carry planted communities; a structural
    label keeps the classification task learnable from topology + features.
    """
    degs = graph.out_degree().astype(np.float64)
    ranks = np.argsort(np.argsort(degs))
    bands = (ranks * num_classes // max(1, graph.num_nodes)).astype(np.int64)
    noise = rng.integers(0, num_classes, size=graph.num_nodes)
    take_noise = rng.random(graph.num_nodes) < 0.15
    return np.where(take_noise, noise, bands).astype(np.int64)
