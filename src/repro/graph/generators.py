"""Synthetic graph generators.

The paper evaluates on four OGB datasets (arxiv, products, reddit, papers100M).
Those graphs are not redistributable inside this offline environment, so this
module provides scaled-down synthetic analogs with the structural properties
the prefetcher is sensitive to:

* heavy-tailed (power-law) degree distributions — the degree-based buffer
  initialization exploits skew, and sampling hot nodes repeatedly is what makes
  caching effective;
* community structure — METIS-style partitioning produces realistic halo-node
  populations only when the graph has locality to exploit;
* class-correlated node features — so that GraphSAGE/GAT training is a real
  learning problem and the "accuracy is unchanged" claim can be checked.

Two families are provided: an R-MAT / Kronecker-style generator (skewed,
weak community structure — resembles citation/product graphs) and a planted
partition (stochastic block model) generator with configurable power-law
degrees (strong communities — resembles reddit).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction, check_positive


# --------------------------------------------------------------------------- #
# Degree sequences
# --------------------------------------------------------------------------- #
def powerlaw_degree_sequence(
    num_nodes: int,
    avg_degree: float,
    exponent: float = 2.2,
    min_degree: int = 1,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample a power-law degree sequence rescaled to a target average degree.

    The returned sequence always sums to an even number so it can be realized
    by an (approximate) configuration model.
    """
    check_positive(num_nodes, "num_nodes")
    check_positive(avg_degree, "avg_degree")
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    rng = ensure_rng(seed)
    # Draw from a Pareto distribution and rescale to the requested mean.
    raw = (rng.pareto(exponent - 1.0, size=num_nodes) + 1.0) * min_degree
    raw *= avg_degree / raw.mean()
    degrees = np.maximum(min_degree, np.round(raw)).astype(np.int64)
    # Cap the maximum degree to avoid a single node owning most of the edges.
    cap = max(min_degree + 1, int(10 * avg_degree * np.sqrt(num_nodes) / 10))
    degrees = np.minimum(degrees, cap)
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(num_nodes))] += 1
    return degrees


def chung_lu_edges(
    degrees: np.ndarray, seed: SeedLike = None, max_attempts_factor: int = 4
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate edges under the Chung-Lu model for a given expected degree sequence.

    Endpoints are drawn proportionally to their target degree; duplicates and
    self loops are filtered afterwards, which slightly lowers realized degrees
    for very skewed sequences but preserves the heavy tail.
    """
    rng = ensure_rng(seed)
    degrees = np.asarray(degrees, dtype=np.float64)
    num_edges = int(degrees.sum() // 2)
    if num_edges == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    prob = degrees / degrees.sum()
    # Oversample, then trim duplicates/self-loops.
    n_draw = int(max_attempts_factor * num_edges)
    src = rng.choice(len(degrees), size=n_draw, p=prob)
    dst = rng.choice(len(degrees), size=n_draw, p=prob)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    key = lo.astype(np.int64) * np.int64(len(degrees)) + hi
    _, first = np.unique(key, return_index=True)
    first = first[: num_edges]
    return lo[first].astype(np.int64), hi[first].astype(np.int64)


# --------------------------------------------------------------------------- #
# R-MAT (Kronecker) generator
# --------------------------------------------------------------------------- #
def rmat_edges(
    scale: int,
    edge_factor: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: SeedLike = None,
    noise: float = 0.05,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate R-MAT edges over ``2**scale`` nodes with ``edge_factor`` edges/node.

    ``a, b, c`` are the standard R-MAT quadrant probabilities (``d`` is the
    remainder); Graph500 defaults are used.  A small multiplicative *noise*
    term decorrelates successive bits so the degree distribution is smoother.
    """
    check_positive(scale, "scale")
    check_positive(edge_factor, "edge_factor")
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must not exceed 1")
    rng = ensure_rng(seed)
    num_nodes = 1 << scale
    num_edges = num_nodes * edge_factor
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    ab, abc = a + b, a + b + c
    for bit in range(scale):
        # Per-bit jitter (kept identical across all edges of the bit level for speed).
        jitter = 1.0 + noise * (rng.random() - 0.5)
        r1 = rng.random(num_edges)
        r2 = rng.random(num_edges)
        go_right = r1 >= (ab * jitter)
        go_down = np.where(
            go_right,
            r2 >= (c / max(c + d, 1e-12)),
            r2 >= (a / max(a + b, 1e-12)),
        )
        src |= (go_right.astype(np.int64) << bit)
        dst |= (go_down.astype(np.int64) << bit)
    # Random vertex permutation removes the correlation between id and degree.
    perm = rng.permutation(num_nodes)
    return perm[src], perm[dst]


def rmat_graph(
    scale: int,
    edge_factor: int,
    seed: SeedLike = None,
    **kwargs,
) -> CSRGraph:
    """Symmetrized, deduplicated R-MAT graph (see :func:`rmat_edges`)."""
    src, dst = rmat_edges(scale, edge_factor, seed=seed, **kwargs)
    return CSRGraph.from_edges(
        src, dst, num_nodes=1 << scale, symmetrize=True, remove_self_loops=True
    )


# --------------------------------------------------------------------------- #
# Planted-partition (SBM-like) generator with skewed degrees
# --------------------------------------------------------------------------- #
def planted_partition_graph(
    num_nodes: int,
    num_communities: int,
    avg_degree: float,
    intra_fraction: float = 0.8,
    degree_exponent: float = 2.3,
    seed: SeedLike = None,
) -> Tuple[CSRGraph, np.ndarray]:
    """Graph with planted communities and power-law degrees.

    Returns the graph together with the community assignment (used as
    classification labels by the dataset loaders).

    ``intra_fraction`` is the probability that an edge stays inside its source
    node's community; the remainder is wired uniformly across the graph, which
    creates the cross-partition "halo" edges that the prefetcher targets.
    """
    check_positive(num_nodes, "num_nodes")
    check_positive(num_communities, "num_communities")
    check_fraction(intra_fraction, "intra_fraction")
    rng = ensure_rng(seed)
    communities = rng.integers(0, num_communities, size=num_nodes)
    degrees = powerlaw_degree_sequence(
        num_nodes, avg_degree, exponent=degree_exponent, seed=rng
    )
    # Bucket nodes by community for fast intra-community endpoint draws.
    order = np.argsort(communities, kind="stable")
    sorted_comms = communities[order]
    boundaries = np.searchsorted(sorted_comms, np.arange(num_communities + 1))

    total_stubs = int(degrees.sum())
    src = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
    rng.shuffle(src)
    src = src[: total_stubs // 2]
    dst = np.empty_like(src)

    intra = rng.random(len(src)) < intra_fraction
    # Intra-community endpoints: uniform within the community of the source.
    comm_of_src = communities[src]
    lo = boundaries[comm_of_src]
    hi = boundaries[comm_of_src + 1]
    span = np.maximum(hi - lo, 1)
    intra_pick = lo + (rng.random(len(src)) * span).astype(np.int64)
    intra_dst = order[np.minimum(intra_pick, hi - 1)]
    # Inter-community endpoints: degree-proportional over the whole graph, so
    # hubs attract cross-partition edges (this is what makes degree-based
    # prefetch initialization effective, mirroring real OGB graphs).
    prob = degrees / degrees.sum()
    inter_dst = rng.choice(num_nodes, size=len(src), p=prob)
    dst = np.where(intra, intra_dst, inter_dst)

    graph = CSRGraph.from_edges(
        src, dst, num_nodes=num_nodes, symmetrize=True, remove_self_loops=True
    )
    return graph, communities.astype(np.int64)


# --------------------------------------------------------------------------- #
# Features and labels
# --------------------------------------------------------------------------- #
def class_informative_features(
    labels: np.ndarray,
    feature_dim: int,
    noise: float = 1.0,
    informative_fraction: float = 0.5,
    seed: SeedLike = None,
) -> np.ndarray:
    """Gaussian features whose means depend on the node label.

    A fraction of the dimensions carry class signal (per-class mean vectors);
    the rest are pure noise.  This yields a learnable but non-trivial node
    classification task for the GNN models.
    """
    check_positive(feature_dim, "feature_dim")
    check_fraction(informative_fraction, "informative_fraction")
    rng = ensure_rng(seed)
    labels = np.asarray(labels, dtype=np.int64)
    num_classes = int(labels.max()) + 1 if labels.size else 1
    num_informative = max(1, int(feature_dim * informative_fraction))
    class_means = rng.normal(0.0, 1.0, size=(num_classes, num_informative)).astype(np.float32)
    feats = rng.normal(0.0, noise, size=(len(labels), feature_dim)).astype(np.float32)
    feats[:, :num_informative] += class_means[labels]
    return feats


def train_val_test_split(
    num_nodes: int,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random boolean masks for train/val/test node sets."""
    check_fraction(train_fraction, "train_fraction")
    check_fraction(val_fraction, "val_fraction")
    if train_fraction + val_fraction > 1.0:
        raise ValueError("train_fraction + val_fraction must not exceed 1")
    rng = ensure_rng(seed)
    perm = rng.permutation(num_nodes)
    n_train = int(round(train_fraction * num_nodes))
    n_val = int(round(val_fraction * num_nodes))
    train_mask = np.zeros(num_nodes, dtype=bool)
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)
    train_mask[perm[:n_train]] = True
    val_mask[perm[n_train: n_train + n_val]] = True
    test_mask[perm[n_train + n_val:]] = True
    return train_mask, val_mask, test_mask


def smooth_labels_by_propagation(
    graph: CSRGraph, labels: np.ndarray, rounds: int = 1, seed: SeedLike = None
) -> np.ndarray:
    """Optionally smooth labels by majority vote over neighbors.

    Increases homophily so that message passing genuinely helps classification
    (mirrors the homophilous OGB benchmarks).
    """
    rng = ensure_rng(seed)
    labels = np.asarray(labels, dtype=np.int64).copy()
    num_classes = int(labels.max()) + 1 if labels.size else 1
    for _ in range(max(0, rounds)):
        src, dst = graph.edges()
        counts = np.zeros((graph.num_nodes, num_classes), dtype=np.int64)
        np.add.at(counts, (dst, labels[src]), 1)
        has_neighbors = counts.sum(axis=1) > 0
        majority = counts.argmax(axis=1)
        # Break ties / keep isolated nodes at their original label.
        labels = np.where(has_neighbors, majority, labels)
        # Perturb a small fraction to keep the task from becoming trivial.
        flip = rng.random(graph.num_nodes) < 0.02
        labels[flip] = rng.integers(0, num_classes, size=int(flip.sum()))
    return labels
