"""Graph partitioning.

DistDGL partitions the input graph offline with METIS before training.  METIS
itself is not available here, so this module implements a multilevel k-way
partitioner with the same three classic phases:

1. **Coarsening** — heavy-edge matching repeatedly contracts matched node
   pairs until the graph is small;
2. **Initial partitioning** — greedy region growing on the coarsest graph,
   balancing partition weights;
3. **Uncoarsening + refinement** — partitions are projected back and boundary
   nodes are moved greedily (Fiduccia–Mattheyses style single-node moves) to
   reduce edge cut while respecting a balance constraint.

Random and hash partitioners are provided as baselines; both produce far more
halo nodes than the multilevel partitioner, which is useful in ablation
benchmarks for showing how partition quality interacts with prefetching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive


@dataclass
class PartitionResult:
    """Assignment of every node to one of ``num_parts`` partitions."""

    parts: np.ndarray
    num_parts: int
    method: str = "metis"
    stats: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.parts = np.asarray(self.parts, dtype=np.int64)
        if self.parts.ndim != 1:
            raise ValueError("parts must be a 1-D array")
        if self.parts.size and (self.parts.min() < 0 or self.parts.max() >= self.num_parts):
            raise ValueError("parts contains out-of-range partition ids")

    def partition_nodes(self, part: int) -> np.ndarray:
        """Global node ids owned by partition *part*."""
        return np.nonzero(self.parts == part)[0].astype(np.int64)

    def sizes(self) -> np.ndarray:
        """Number of nodes per partition."""
        return np.bincount(self.parts, minlength=self.num_parts).astype(np.int64)


# --------------------------------------------------------------------------- #
# Quality metrics
# --------------------------------------------------------------------------- #
def edge_cut(graph: CSRGraph, parts: np.ndarray) -> int:
    """Number of edges whose endpoints live in different partitions."""
    src, dst = graph.edges()
    return int(np.count_nonzero(parts[src] != parts[dst]))


def edge_cut_fraction(graph: CSRGraph, parts: np.ndarray) -> float:
    """Edge cut normalized by total edge count."""
    if graph.num_edges == 0:
        return 0.0
    return edge_cut(graph, parts) / graph.num_edges


def balance(parts: np.ndarray, num_parts: int) -> float:
    """Load imbalance: max partition size divided by the ideal size."""
    sizes = np.bincount(parts, minlength=num_parts)
    ideal = len(parts) / num_parts
    return float(sizes.max() / ideal) if ideal > 0 else 1.0


# --------------------------------------------------------------------------- #
# Baseline partitioners
# --------------------------------------------------------------------------- #
def random_partition(graph: CSRGraph, num_parts: int, seed: SeedLike = None) -> PartitionResult:
    """Uniform random assignment with exact balance (block-shuffled)."""
    check_positive(num_parts, "num_parts")
    rng = ensure_rng(seed)
    parts = np.arange(graph.num_nodes, dtype=np.int64) % num_parts
    rng.shuffle(parts)
    result = PartitionResult(parts=parts, num_parts=num_parts, method="random")
    result.stats = _partition_stats(graph, result)
    return result


def hash_partition(graph: CSRGraph, num_parts: int, seed: SeedLike = None) -> PartitionResult:
    """Deterministic hash (modulo) assignment of node id to partition."""
    check_positive(num_parts, "num_parts")
    salt = 0 if seed is None else (seed if isinstance(seed, int) else 0)
    ids = np.arange(graph.num_nodes, dtype=np.uint64)
    hashed = (ids * np.uint64(2654435761) + np.uint64(salt)) % np.uint64(num_parts)
    result = PartitionResult(parts=hashed.astype(np.int64), num_parts=num_parts, method="hash")
    result.stats = _partition_stats(graph, result)
    return result


def skewed_partition(
    graph: CSRGraph, num_parts: int, seed: SeedLike = None, skew: float = 0.6
) -> PartitionResult:
    """Deliberately imbalanced assignment with geometric partition sizes.

    Partition *p* receives a node share proportional to ``skew**p`` (so with
    the default ``skew=0.6`` and 4 parts the shares are roughly 46/28/17/10%).
    Real deployments hit this when METIS balances by node weight but training
    nodes cluster unevenly; the ``skewed-partitions`` scenario uses it to
    expose straggler epochs — trainers on the big partition process more
    minibatches, and everyone else waits at the allreduce barrier.
    """
    check_positive(num_parts, "num_parts")
    if not (0.0 < skew <= 1.0):
        raise ValueError(f"skew must be in (0, 1], got {skew}")
    rng = ensure_rng(seed)
    shares = np.power(skew, np.arange(num_parts, dtype=np.float64))
    shares /= shares.sum()
    counts = np.floor(shares * graph.num_nodes).astype(np.int64)
    counts[0] += graph.num_nodes - counts.sum()  # remainder to the biggest part
    if np.any(counts <= 0):
        raise ValueError(
            f"cannot split {graph.num_nodes} nodes into {num_parts} partitions "
            f"with skew {skew} (some partition would be empty)"
        )
    order = rng.permutation(graph.num_nodes).astype(np.int64)
    parts = np.empty(graph.num_nodes, dtype=np.int64)
    start = 0
    for p, count in enumerate(counts):
        parts[order[start: start + count]] = p
        start += count
    result = PartitionResult(parts=parts, num_parts=num_parts, method="skewed")
    result.stats = _partition_stats(graph, result)
    return result


# --------------------------------------------------------------------------- #
# Multilevel (METIS-like) partitioner
# --------------------------------------------------------------------------- #
@dataclass
class _Level:
    """One level of the coarsening hierarchy."""

    indptr: np.ndarray
    indices: np.ndarray
    edge_weights: np.ndarray
    node_weights: np.ndarray
    fine_to_coarse: Optional[np.ndarray] = None  # map from the finer level


def metis_partition(
    graph: CSRGraph,
    num_parts: int,
    seed: SeedLike = None,
    *,
    coarsen_until: int = 256,
    max_levels: int = 20,
    refine_passes: int = 4,
    imbalance_tolerance: float = 1.05,
) -> PartitionResult:
    """Multilevel k-way partitioning (METIS-style).

    Parameters
    ----------
    coarsen_until:
        Stop coarsening when the graph has at most this many nodes (scaled up
        to ``8 * num_parts`` when more partitions are requested).
    refine_passes:
        Boundary refinement passes per uncoarsening level.
    imbalance_tolerance:
        Maximum allowed ratio of a partition's weight to the ideal weight
        during refinement moves.
    """
    check_positive(num_parts, "num_parts")
    if num_parts == 1:
        result = PartitionResult(
            parts=np.zeros(graph.num_nodes, dtype=np.int64), num_parts=1, method="metis"
        )
        result.stats = _partition_stats(graph, result)
        return result
    if num_parts > graph.num_nodes:
        raise ValueError(
            f"cannot split {graph.num_nodes} nodes into {num_parts} partitions"
        )
    rng = ensure_rng(seed)
    target_size = max(coarsen_until, 8 * num_parts)

    # ---------------- Coarsening ----------------
    levels: List[_Level] = [
        _Level(
            indptr=graph.indptr.copy(),
            indices=graph.indices.copy(),
            edge_weights=np.ones(graph.num_edges, dtype=np.int64),
            node_weights=np.ones(graph.num_nodes, dtype=np.int64),
        )
    ]
    while len(levels) < max_levels:
        current = levels[-1]
        n = len(current.node_weights)
        if n <= target_size:
            break
        matching = _heavy_edge_matching(current, rng)
        coarse, fine_to_coarse = _contract(current, matching)
        if len(coarse.node_weights) >= 0.95 * n:
            # Matching stalled (e.g. star graphs); stop coarsening.
            break
        coarse.fine_to_coarse = fine_to_coarse
        levels.append(coarse)

    # ---------------- Initial partitioning ----------------
    coarsest = levels[-1]
    parts = _greedy_region_growing(coarsest, num_parts, rng)

    # ---------------- Uncoarsening + refinement ----------------
    for level_idx in range(len(levels) - 1, -1, -1):
        level = levels[level_idx]
        parts = _refine(
            level, parts, num_parts, refine_passes, imbalance_tolerance, rng
        )
        if level_idx > 0:
            mapping = levels[level_idx].fine_to_coarse
            parts = parts[mapping]

    result = PartitionResult(parts=parts.astype(np.int64), num_parts=num_parts, method="metis")
    result.stats = _partition_stats(graph, result)
    return result


def partition_graph(
    graph: CSRGraph, num_parts: int, method: str = "metis", seed: SeedLike = None
) -> PartitionResult:
    """Dispatch to a partitioner by name (``metis``, ``random``, ``hash``, ``skewed``)."""
    if method == "metis":
        return metis_partition(graph, num_parts, seed=seed)
    if method == "random":
        return random_partition(graph, num_parts, seed=seed)
    if method == "hash":
        return hash_partition(graph, num_parts, seed=seed)
    if method == "skewed":
        return skewed_partition(graph, num_parts, seed=seed)
    raise ValueError(f"unknown partition method {method!r}")


# --------------------------------------------------------------------------- #
# Internals
# --------------------------------------------------------------------------- #
def _partition_stats(graph: CSRGraph, result: PartitionResult) -> Dict[str, float]:
    return {
        "edge_cut": float(edge_cut(graph, result.parts)),
        "edge_cut_fraction": edge_cut_fraction(graph, result.parts),
        "balance": balance(result.parts, result.num_parts),
    }


def _heavy_edge_matching(level: _Level, rng: np.random.Generator) -> np.ndarray:
    """Greedy heavy-edge matching; returns match[i] = partner (or i itself)."""
    n = len(level.node_weights)
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    indptr, indices, eweights = level.indptr, level.indices, level.edge_weights
    for u in order:
        if match[u] != -1:
            continue
        start, end = indptr[u], indptr[u + 1]
        best, best_w = -1, -1
        for idx in range(start, end):
            v = indices[idx]
            if v == u or match[v] != -1:
                continue
            w = eweights[idx]
            if w > best_w:
                best, best_w = v, w
        if best >= 0:
            match[u], match[best] = best, u
        else:
            match[u] = u
    unmatched = match == -1
    match[unmatched] = np.nonzero(unmatched)[0]
    return match


def _contract(level: _Level, match: np.ndarray) -> Tuple[_Level, np.ndarray]:
    """Contract matched pairs into coarse nodes; aggregate edge/node weights."""
    n = len(level.node_weights)
    rep = np.minimum(np.arange(n, dtype=np.int64), match)
    unique_reps, fine_to_coarse = np.unique(rep, return_inverse=True)
    nc = len(unique_reps)
    node_weights = np.zeros(nc, dtype=np.int64)
    np.add.at(node_weights, fine_to_coarse, level.node_weights)

    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(level.indptr))
    dst = level.indices
    csrc, cdst = fine_to_coarse[src], fine_to_coarse[dst]
    keep = csrc != cdst
    csrc, cdst, w = csrc[keep], cdst[keep], level.edge_weights[keep]
    if len(csrc):
        key = csrc * np.int64(nc) + cdst
        order = np.argsort(key, kind="stable")
        key, csrc, cdst, w = key[order], csrc[order], cdst[order], w[order]
        unique_key, start_idx = np.unique(key, return_index=True)
        agg_w = np.add.reduceat(w, start_idx)
        csrc, cdst = csrc[start_idx], cdst[start_idx]
        counts = np.bincount(csrc, minlength=nc)
        indptr = np.zeros(nc + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        coarse = _Level(
            indptr=indptr,
            indices=cdst.astype(np.int64),
            edge_weights=agg_w.astype(np.int64),
            node_weights=node_weights,
        )
    else:
        coarse = _Level(
            indptr=np.zeros(nc + 1, dtype=np.int64),
            indices=np.zeros(0, dtype=np.int64),
            edge_weights=np.zeros(0, dtype=np.int64),
            node_weights=node_weights,
        )
    return coarse, fine_to_coarse.astype(np.int64)


def _greedy_region_growing(
    level: _Level, num_parts: int, rng: np.random.Generator
) -> np.ndarray:
    """BFS-style region growing producing a balanced initial partition."""
    n = len(level.node_weights)
    total_weight = int(level.node_weights.sum())
    target = total_weight / num_parts
    parts = np.full(n, -1, dtype=np.int64)
    indptr, indices = level.indptr, level.indices
    degrees = np.diff(indptr)
    order = np.argsort(-degrees)  # grow from hubs outward
    unassigned = set(range(n))

    for p in range(num_parts):
        weight = 0
        # Seed: highest-degree unassigned node.
        seed_node = next((int(u) for u in order if parts[u] == -1), None)
        if seed_node is None:
            break
        frontier = [seed_node]
        while frontier and weight < target:
            u = frontier.pop()
            if parts[u] != -1:
                continue
            parts[u] = p
            unassigned.discard(u)
            weight += int(level.node_weights[u])
            for v in indices[indptr[u]: indptr[u + 1]]:
                if parts[v] == -1:
                    frontier.append(int(v))
    # Any leftovers go to the lightest partition.
    if unassigned:
        weights = np.zeros(num_parts, dtype=np.int64)
        assigned_mask = parts >= 0
        np.add.at(weights, parts[assigned_mask], level.node_weights[assigned_mask])
        for u in sorted(unassigned):
            p = int(np.argmin(weights))
            parts[u] = p
            weights[p] += int(level.node_weights[u])
    return parts


def _refine(
    level: _Level,
    parts: np.ndarray,
    num_parts: int,
    passes: int,
    imbalance_tolerance: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy boundary refinement (FM-style single-node moves)."""
    parts = parts.copy()
    n = len(level.node_weights)
    indptr, indices, eweights = level.indptr, level.indices, level.edge_weights
    weights = np.zeros(num_parts, dtype=np.int64)
    np.add.at(weights, parts, level.node_weights)
    max_weight = imbalance_tolerance * level.node_weights.sum() / num_parts

    for _ in range(max(0, passes)):
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        boundary = np.unique(src[parts[src] != parts[indices]])
        if len(boundary) == 0:
            break
        rng.shuffle(boundary)
        moved = 0
        for u in boundary:
            current = parts[u]
            start, end = indptr[u], indptr[u + 1]
            neigh, w = indices[start:end], eweights[start:end]
            gains = np.zeros(num_parts, dtype=np.int64)
            np.add.at(gains, parts[neigh], w)
            internal = gains[current]
            gains[current] = -1  # never "move" to the same partition
            best = int(np.argmax(gains))
            gain = int(gains[best]) - int(internal)
            if gain > 0 and weights[best] + level.node_weights[u] <= max_weight:
                weights[current] -= level.node_weights[u]
                weights[best] += level.node_weights[u]
                parts[u] = best
                moved += 1
        if moved == 0:
            break
    return parts
