"""Partition book: the global id <-> (owner, local id) mapping.

DistDGL keeps a ``GraphPartitionBook`` on every trainer so that, given the
global node ids returned by the sampler, it can decide which KVStore server
owns each node's features.  This class provides the same queries:

* :meth:`owner` — owning partition of each global id;
* :meth:`to_local` / :meth:`to_global` — translate between the global id space
  and a partition's dense local id space (owned nodes are numbered
  ``0..num_owned-1`` in ascending global-id order).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.partition import PartitionResult
from repro.utils.validation import check_1d_int_array


class PartitionBook:
    """Global-to-partition lookup tables built from a :class:`PartitionResult`."""

    def __init__(self, parts: np.ndarray, num_parts: int):
        parts = check_1d_int_array(parts, "parts")
        if parts.size and parts.max() >= num_parts:
            raise ValueError("partition id out of range")
        self._parts = parts
        self._num_parts = int(num_parts)
        self._num_nodes = len(parts)
        # Owned nodes per partition, ascending global id.
        self._owned: List[np.ndarray] = [
            np.nonzero(parts == p)[0].astype(np.int64) for p in range(num_parts)
        ]
        # Global id -> local id within its owner.
        self._global_to_local = np.full(self._num_nodes, -1, dtype=np.int64)
        for p in range(num_parts):
            self._global_to_local[self._owned[p]] = np.arange(
                len(self._owned[p]), dtype=np.int64
            )

    @classmethod
    def from_result(cls, result: PartitionResult) -> "PartitionBook":
        return cls(result.parts, result.num_parts)

    # ------------------------------------------------------------------ #
    @property
    def num_parts(self) -> int:
        return self._num_parts

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def owner(self, global_ids: np.ndarray) -> np.ndarray:
        """Owning partition of each global node id."""
        global_ids = check_1d_int_array(global_ids, "global_ids", max_value=self._num_nodes)
        return self._parts[global_ids]

    def partition_nodes(self, part: int) -> np.ndarray:
        """Global ids owned by *part*, ascending."""
        self._check_part(part)
        return self._owned[part]

    def partition_size(self, part: int) -> int:
        self._check_part(part)
        return int(len(self._owned[part]))

    def to_local(self, global_ids: np.ndarray, part: int) -> np.ndarray:
        """Local ids (within *part*) of *global_ids*; all must be owned by *part*."""
        self._check_part(part)
        global_ids = check_1d_int_array(global_ids, "global_ids", max_value=self._num_nodes)
        owners = self._parts[global_ids]
        if np.any(owners != part):
            bad = global_ids[owners != part][:5]
            raise ValueError(f"nodes {bad.tolist()} are not owned by partition {part}")
        return self._global_to_local[global_ids]

    def to_global(self, local_ids: np.ndarray, part: int) -> np.ndarray:
        """Global ids of *local_ids* within partition *part*."""
        self._check_part(part)
        local_ids = check_1d_int_array(
            local_ids, "local_ids", max_value=self.partition_size(part)
        )
        return self._owned[part][local_ids]

    def is_owned(self, global_ids: np.ndarray, part: int) -> np.ndarray:
        """Boolean mask: which of *global_ids* are owned by *part*."""
        return self.owner(global_ids) == part

    def group_by_owner(self, global_ids: np.ndarray) -> List[np.ndarray]:
        """Split *global_ids* into per-owner lists (index = partition id)."""
        owners = self.owner(global_ids)
        return [global_ids[owners == p] for p in range(self._num_parts)]

    def _check_part(self, part: int) -> None:
        if part < 0 or part >= self._num_parts:
            raise IndexError(f"partition {part} out of range [0, {self._num_parts})")
