"""Picklable per-trainer run artifacts: the engine/report data boundary.

Report assembly used to read live objects — trainer clocks, RPC channels,
pipeline feature stores — directly.  With the process-pool execution backend
those objects live in worker processes, so the boundary is now a
:class:`TrainerArtifacts` snapshot: everything report assembly needs from one
trainer, as plain data.  The inline backend snapshots its live objects through
the same :func:`collect_trainer_artifacts`, so both backends feed one
arithmetic implementation and the differential tests can pin them
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.metrics import HitRateTracker
from repro.distributed.cluster import SimCluster, TrainerContext
from repro.distributed.rpc import RPCStats
from repro.sampling.pipeline import MiniBatchPipeline
from repro.training.telemetry import ComponentAccumulator


@dataclass
class TrainerArtifacts:
    """One trainer's end-of-run telemetry as pickle-safe plain data."""

    global_rank: int
    machine: int
    local_rank: int
    clock_time: float
    clock_breakdown: Dict[str, float]
    rpc_stats: RPCStats
    accumulator: ComponentAccumulator
    overlaps_preparation: bool = False
    hit_rate: Optional[float] = None
    hit_tracker: Optional[HitRateTracker] = None
    # None when the trainer's pipeline has no prefetcher / feature store, so
    # report extras stay gated exactly as with live objects.
    prefetcher_buffer_nbytes: Optional[float] = None
    prefetcher_scoreboard_nbytes: Optional[float] = None
    prefetcher_remote_nodes_fetched: Optional[float] = None
    feature_store_nbytes: Optional[float] = None
    store_summary: Optional[Dict[str, float]] = None
    cache_summary: Dict[str, float] = field(default_factory=dict)


def trainer_artifacts(
    trainer: TrainerContext,
    pipeline: MiniBatchPipeline,
    accumulator: ComponentAccumulator,
) -> TrainerArtifacts:
    """Snapshot one trainer's live objects into a :class:`TrainerArtifacts`."""
    pl = pipeline
    prefetcher = pl.prefetcher
    store = pl.feature_store
    return TrainerArtifacts(
        global_rank=trainer.global_rank,
        machine=trainer.machine,
        local_rank=trainer.local_rank,
        clock_time=trainer.clock.time,
        clock_breakdown=trainer.clock.breakdown(),
        rpc_stats=trainer.rpc.stats,
        accumulator=accumulator,
        overlaps_preparation=(
            pl.timing is not None and getattr(pl.timing, "overlaps_preparation", False)
        ),
        hit_rate=pl.hit_rate,
        hit_tracker=pl.hit_tracker,
        prefetcher_buffer_nbytes=(
            float(prefetcher.buffer_nbytes()) if prefetcher is not None else None
        ),
        prefetcher_scoreboard_nbytes=(
            float(prefetcher.scoreboard_nbytes()) if prefetcher is not None else None
        ),
        prefetcher_remote_nodes_fetched=(
            float(prefetcher.counters.remote_nodes_fetched)
            if prefetcher is not None
            else None
        ),
        feature_store_nbytes=float(store.nbytes()) if store is not None else None,
        store_summary=store.summary() if store is not None else None,
        cache_summary=(
            store.cache_summary()
            if store is not None and hasattr(store, "cache_summary")
            else {}
        ),
    )


def collect_trainer_artifacts(
    cluster: SimCluster,
    pipelines: List[MiniBatchPipeline],
    accumulators: List[ComponentAccumulator],
) -> List[TrainerArtifacts]:
    """Snapshot every trainer of *cluster*, in global-rank order."""
    return [
        trainer_artifacts(trainer, pl, acc)
        for trainer, pl, acc in zip(cluster.trainers, pipelines, accumulators)
    ]
