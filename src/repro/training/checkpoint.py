"""Checkpoint/restore for the event-driven cluster engine.

The elastic/failure machinery needs a notion of "last consensus state": the
model and optimizer as of the most recent applied synchronization round.  The
async engine captures a :class:`ClusterCheckpoint` into a
:class:`CheckpointStore` every time averaged gradients are applied; a trainer
recovering from an outage restores from the store — resuming from the last
consensus step instead of step 0 — and the restore transfer is charged
through the cost model as ``migration`` time.

Because the simulated trainers share one model replica, a restore between
two sync rounds is numerically a no-op (the replica *is* the consensus
state); the value of the layer is the provenance it pins — ``step`` > 0 at
restore, asserted by the acceptance tests — and the per-trainer
:class:`TrainerCheckpoint`, which snapshots the private per-rank state
(simulated clock, sampler RNG stream, seed iterator cursor) that a real
deployment would have to ship to a replacement process.

All artifacts pickle cleanly (audited in ``tests/test_pickle_audit.py``) so
the process-pool backend can move them across workers, and compare equal
after a round trip via numpy-aware ``__eq__``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np


def _state_equal(a: Any, b: Any) -> bool:
    """Recursive equality over nested dicts of arrays/scalars."""
    if isinstance(a, dict) and isinstance(b, dict):
        if set(a) != set(b):
            return False
        return all(_state_equal(a[k], b[k]) for k in a)
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and a.shape == b.shape
            and bool(np.array_equal(a, b))
        )
    return bool(a == b)


@dataclass(eq=False)
class ClusterCheckpoint:
    """One consensus snapshot: model + optimizer state at a sync round.

    ``step`` is the number of applied synchronization rounds at capture time
    and ``time_s`` the latest trainer clock then; both feed the recovery
    provenance (``restored_from_step``) the tests assert on.
    """

    step: int
    time_s: float
    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def capture(cls, model, optimizer, step: int, time_s: float) -> "ClusterCheckpoint":
        return cls(
            step=int(step),
            time_s=float(time_s),
            model_state=model.state_dict(),
            optimizer_state=optimizer.state_dict(),
        )

    def restore_into(self, model, optimizer) -> None:
        model.load_state_dict(self.model_state)
        optimizer.load_state_dict(self.optimizer_state)

    def nbytes(self) -> int:
        """Payload size of the model state (the restore transfer the cost
        model charges); optimizer buffers ride along for free in-process."""
        return int(sum(v.nbytes for v in self.model_state.values()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusterCheckpoint):
            return NotImplemented
        return (
            self.step == other.step
            and self.time_s == other.time_s
            and _state_equal(self.model_state, other.model_state)
            and _state_equal(self.optimizer_state, other.optimizer_state)
        )


@dataclass(eq=False)
class TrainerCheckpoint:
    """Per-rank private state: simulated clock + data-loader streams.

    Captures exactly what a replacement trainer process would need to resume
    the rank's schedule mid-epoch: the clock's time/ledger, the sampler RNG
    stream, the loader step counter, and the seed iterator's in-flight epoch
    (shuffled order + cursor).  Round-trips through
    :meth:`~repro.sampling.dataloader.DistDataLoader.restore` bit-identically
    (pinned by ``tests/test_checkpoint.py``).
    """

    rank: int
    clock_state: Dict[str, Any]
    loader_state: Dict[str, Any]

    @classmethod
    def capture(cls, trainer) -> "TrainerCheckpoint":
        return cls(
            rank=int(trainer.global_rank),
            clock_state=trainer.clock.snapshot(),
            loader_state=trainer.dataloader.snapshot(),
        )

    def restore_into(self, trainer) -> None:
        if int(trainer.global_rank) != self.rank:
            raise ValueError(
                f"checkpoint belongs to rank {self.rank}, "
                f"got trainer rank {trainer.global_rank}"
            )
        trainer.clock.restore(self.clock_state)
        trainer.dataloader.restore(self.loader_state)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrainerCheckpoint):
            return NotImplemented
        return (
            self.rank == other.rank
            and _state_equal(self.clock_state, other.clock_state)
            and _state_equal(self.loader_state, other.loader_state)
        )


class CheckpointStore:
    """Holds the latest consensus checkpoint plus capture/restore counters.

    One store per run; the engine calls :meth:`update` after every applied
    sync round and :meth:`restore` when a failed trainer recovers.  The
    counters feed the run telemetry (``restores`` per rank rides in
    ``sync_extras``).
    """

    def __init__(self) -> None:
        self.latest: Optional[ClusterCheckpoint] = None
        self.updates = 0
        self.restores = 0

    @property
    def last_step(self) -> int:
        """Consensus step of the latest checkpoint (0 before any capture)."""
        return self.latest.step if self.latest is not None else 0

    def update(self, model, optimizer, step: int, time_s: float) -> ClusterCheckpoint:
        self.latest = ClusterCheckpoint.capture(model, optimizer, step, time_s)
        self.updates += 1
        return self.latest

    def restore(self, model, optimizer) -> ClusterCheckpoint:
        """Load the latest checkpoint into *model*/*optimizer*.

        Raises ``RuntimeError`` when no checkpoint exists yet (a recovery
        before the first sync round resumes from step 0 by definition, and
        the engine skips the restore path).
        """
        if self.latest is None:
            raise RuntimeError("no checkpoint captured yet")
        self.latest.restore_into(model, optimizer)
        self.restores += 1
        return self.latest
