"""Named pipeline configurations and their simulated-time accounting.

The engine runs whatever :class:`~repro.sampling.pipeline.MiniBatchPipeline`
it is given; *this* module decides what the named pipelines are made of:

* ``baseline`` — DistDGL data path: halo features over plain RPC, accounted
  serially (Eq. 2, with communication stall per Eq. 9);
* ``prefetch`` — MassiveGNN data path: halo features through the scored
  prefetch buffer (Algorithms 1–2), with minibatch preparation overlapping
  DDP training (Eqs. 3–5);
* ``static-cache`` — ablation: a degree-ranked cache populated once, same
  overlap accounting as ``prefetch`` but no scoreboards or eviction;
* ``tiered-cache`` — the policy-pluggable tier stack (``repro.cache``): a
  per-trainer hot tier plus an optional machine-shared tier in front of RPC,
  with admission/eviction selected by a
  :class:`~repro.cache.config.CacheConfig` (defaults reproduce
  ``static-cache`` bit-for-bit).

Each builder assembles, per trainer, a
:class:`~repro.features.store.FeatureStore` (sources resolved by name through
:data:`repro.features.FEATURE_SOURCES`), the four chained stages, and a
*timing policy* (:data:`TIMING_POLICIES`) mapping component costs onto the
trainer's simulated clock.  Pipelines are registered in :data:`PIPELINES`,
so new strategies plug in without touching any engine — the same builders
serve the single-run :class:`~repro.training.engine.TrainingEngine`, the
lockstep :class:`~repro.training.cluster_engine.ClusterEngine`, and the
event-driven :class:`~repro.training.async_engine.AsyncClusterEngine`
(selected from :data:`~repro.training.engines.ENGINES`), which is what keeps
their numerics differentially testable against each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cache.config import CacheConfig
from repro.core.config import PrefetchConfig
from repro.core.eviction import EvictionPolicy
from repro.features.sources import SourceContext, build_feature_source
from repro.features.store import FeatureStore
from repro.sampling.pipeline import (
    BatchStage,
    FetchFeatureStage,
    MiniBatchPipeline,
    SampleStage,
    SeedStage,
)
from repro.training.telemetry import StepTiming
from repro.utils.registry import Registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.distributed.clock import SimClock
    from repro.distributed.cluster import SimCluster, TrainerContext


# --------------------------------------------------------------------------- #
# Timing policies: component times -> critical path and clock advances
# --------------------------------------------------------------------------- #
class SerialTimingPolicy:
    """Eq. 2: sample, fetch, then train — nothing overlaps.

    The RPC time beyond the local copy is the communication stall (Eq. 9).
    """

    name = "serial"
    overlaps_preparation = False

    def account(self, timing: StepTiming, trainer_step: int, clock: "SimClock") -> None:
        critical = timing.sampling + max(timing.rpc, timing.copy) + timing.ddp
        clock.advance(timing.sampling, "sampling")
        clock.advance(timing.copy, "copy")
        clock.advance(max(0.0, timing.rpc - timing.copy), "rpc")
        clock.advance(timing.ddp, "ddp")
        timing.prepare = 0.0
        timing.hidden = 0.0
        timing.critical_path = critical


class OverlappedTimingPolicy:
    """Eqs. 3–5: preparation of the next minibatch overlaps DDP training.

    Scoreboard maintenance overlaps the RPC fetch of missed nodes (Eq. 3);
    the very first minibatch cannot reuse a prefetched batch (Eq. 4); in
    steady state only the un-hidden part of preparation stalls the trainer
    (Eq. 5).
    """

    name = "overlapped"
    overlaps_preparation = True

    def account(self, timing: StepTiming, trainer_step: int, clock: "SimClock") -> None:
        prepare = (
            timing.sampling
            + timing.lookup
            + max(timing.scoring + timing.eviction, max(timing.rpc, timing.copy))
        )
        timing.prepare = prepare
        if trainer_step == 0:
            critical = prepare + max(prepare, timing.ddp)
        else:
            critical = max(prepare, timing.ddp)
        timing.hidden = min(prepare, timing.ddp)
        clock.advance(timing.ddp, "ddp")
        clock.advance(max(0.0, critical - timing.ddp), "stall")
        timing.critical_path = critical


TIMING_POLICIES = Registry("timing policy")
TIMING_POLICIES.register("serial", SerialTimingPolicy, aliases=("eq2", "baseline"))
TIMING_POLICIES.register("overlapped", OverlappedTimingPolicy, aliases=("eq3-5", "prefetch"))


# --------------------------------------------------------------------------- #
# Pipeline builders
# --------------------------------------------------------------------------- #
PIPELINES = Registry("pipeline")


def _assemble(
    trainer: "TrainerContext",
    store: FeatureStore,
    timing: str,
    name: str,
) -> MiniBatchPipeline:
    """The canonical four-stage chain over one trainer's loader and store.

    ``timing`` is a :data:`TIMING_POLICIES` name, so custom pipelines select
    their accounting model the same way they select feature sources.
    """
    pipeline = (
        SeedStage(trainer.dataloader.seed_iterator)
        >> SampleStage(trainer.dataloader)
        >> FetchFeatureStage(store)
        >> BatchStage()
    )
    return pipeline.configure(
        timing=TIMING_POLICIES.build(timing),
        name=name,
        feature_store=store,
        init_report=store.initialize(),
    )


def _source_context(
    trainer: "TrainerContext",
    cluster: "SimCluster",
    prefetch_config: Optional[PrefetchConfig],
    eviction_policy: Optional[EvictionPolicy],
    cache_config: Optional[CacheConfig] = None,
) -> SourceContext:
    shared_tier = None
    if cache_config is not None and cache_config.tiers >= 2:
        # One shared tier per machine, owned by the cluster so every trainer
        # on the machine composes the same instance behind its hot tier.
        shared_tier = cluster.shared_cache_tier(trainer.machine, cache_config)
    return SourceContext(
        rpc=trainer.rpc,
        partition=trainer.partition,
        num_global_nodes=cluster.dataset.num_nodes,
        book=cluster.book,
        prefetch_config=prefetch_config,
        eviction_policy=eviction_policy,
        seed=cluster.config.seed,
        cache_config=cache_config,
        shared_tier=shared_tier,
    )


@PIPELINES.register("baseline", aliases=("distdgl",))
def build_baseline_pipeline(
    trainer: "TrainerContext",
    cluster: "SimCluster",
    prefetch_config: Optional[PrefetchConfig] = None,
    eviction_policy: Optional[EvictionPolicy] = None,
    cache_config: Optional[CacheConfig] = None,
) -> MiniBatchPipeline:
    ctx = _source_context(trainer, cluster, prefetch_config, eviction_policy)
    store = FeatureStore(
        partition=trainer.partition,
        local_source=build_feature_source("local-kvstore", ctx),
        halo_source=build_feature_source("remote-rpc", ctx),
    )
    return _assemble(trainer, store, "serial", "baseline")


@PIPELINES.register("prefetch", aliases=("massivegnn",))
def build_prefetch_pipeline(
    trainer: "TrainerContext",
    cluster: "SimCluster",
    prefetch_config: Optional[PrefetchConfig] = None,
    eviction_policy: Optional[EvictionPolicy] = None,
    cache_config: Optional[CacheConfig] = None,
) -> MiniBatchPipeline:
    if prefetch_config is None:
        raise ValueError("the 'prefetch' pipeline requires a PrefetchConfig")
    ctx = _source_context(trainer, cluster, prefetch_config, eviction_policy, cache_config)
    store = FeatureStore(
        partition=trainer.partition,
        local_source=build_feature_source("local-kvstore", ctx),
        halo_source=build_feature_source(prefetch_config.halo_source, ctx),
    )
    return _assemble(trainer, store, "overlapped", "prefetch")


@PIPELINES.register("static-cache", aliases=("static",))
def build_static_cache_pipeline(
    trainer: "TrainerContext",
    cluster: "SimCluster",
    prefetch_config: Optional[PrefetchConfig] = None,
    eviction_policy: Optional[EvictionPolicy] = None,
    cache_config: Optional[CacheConfig] = None,
) -> MiniBatchPipeline:
    if prefetch_config is None:
        raise ValueError("the 'static-cache' pipeline requires a PrefetchConfig "
                         "(its halo_fraction sets the cache capacity)")
    ctx = _source_context(trainer, cluster, prefetch_config, eviction_policy)
    store = FeatureStore(
        partition=trainer.partition,
        local_source=build_feature_source("local-kvstore", ctx),
        halo_source=build_feature_source("static-cache", ctx),
    )
    return _assemble(trainer, store, "overlapped", "static-cache")


@PIPELINES.register("tiered-cache", aliases=("tiered",))
def build_tiered_cache_pipeline(
    trainer: "TrainerContext",
    cluster: "SimCluster",
    prefetch_config: Optional[PrefetchConfig] = None,
    eviction_policy: Optional[EvictionPolicy] = None,
    cache_config: Optional[CacheConfig] = None,
) -> MiniBatchPipeline:
    """Halo features through the tiered cache stack (see ``repro.cache``).

    ``prefetch_config.halo_fraction`` still sets the trainer's row budget (so
    tiered runs are memory-comparable with ``prefetch``/``static-cache``);
    the :class:`CacheConfig` decides how that budget is split across tiers
    and which admission/eviction policies govern them.
    """
    if prefetch_config is None:
        raise ValueError("the 'tiered-cache' pipeline requires a PrefetchConfig "
                         "(its halo_fraction sets the cache budget)")
    ctx = _source_context(trainer, cluster, prefetch_config, eviction_policy, cache_config)
    store = FeatureStore(
        partition=trainer.partition,
        local_source=build_feature_source("local-kvstore", ctx),
        halo_source=build_feature_source("tiered-cache", ctx),
    )
    return _assemble(trainer, store, "overlapped", "tiered-cache")


def build_pipeline(
    name: str,
    trainer: "TrainerContext",
    cluster: "SimCluster",
    prefetch_config: Optional[PrefetchConfig] = None,
    eviction_policy: Optional[EvictionPolicy] = None,
    cache_config: Optional[CacheConfig] = None,
) -> MiniBatchPipeline:
    """Build the named pipeline for one trainer (see :data:`PIPELINES`)."""
    return PIPELINES.build(
        name,
        trainer,
        cluster,
        prefetch_config=prefetch_config,
        eviction_policy=eviction_policy,
        cache_config=cache_config,
    )
