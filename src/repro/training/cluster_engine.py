"""Cluster-scale pipeline execution: every trainer runs its own pipeline.

:class:`ClusterEngine` is the multi-machine counterpart of
:class:`~repro.training.engine.TrainingEngine`: it instantiates one registered
:class:`~repro.sampling.pipeline.MiniBatchPipeline` per
:class:`~repro.distributed.cluster.TrainerContext` — each trainer with its own
:class:`~repro.features.store.FeatureStore`, RNG streams, and
:class:`~repro.distributed.clock.SimClock` — and steps them epoch-by-epoch
with synchronous :func:`~repro.distributed.ddp.allreduce_gradients` barriers.
Allreduce cost and straggler wait both go through the cost model, so
per-trainer and critical-path simulated times come out of the same Eq. 2 /
Eqs. 3–5 timing policies the single-run engine uses.

What it adds over ``TrainingEngine``:

* **heterogeneity** — each machine charges compute through its own cost model
  (:meth:`SimCluster.cost_model_for_machine`), so ``compute_multipliers`` in
  the :class:`~repro.distributed.cluster.ClusterConfig` simulate straggler
  machines;
* **barrier telemetry** — the wait each trainer spends at every allreduce
  barrier is measured separately from pipeline stalls, giving per-trainer
  straggler-wait totals and cluster load imbalance;
* **cluster-level aggregation** — per-trainer ``FetchStats``/buffer/RPC
  telemetry is rolled up into a :class:`ClusterReport` (critical path, hit
  rates, RPC bytes) consumed by ``bench_cluster_scaling`` and the CLI's
  ``run --cluster`` command.

The loop is deliberately an independent implementation of the engine's epoch
semantics (sharing only :func:`~repro.training.engine.train_step` and the
report assembly): the differential tests in ``tests/test_cluster_engine.py``
prove that on a homogeneous cluster it reproduces ``run_pipeline`` numerics
bit-for-bit, which is what makes the scenario extensions trustworthy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.cache.config import CacheConfig
from repro.core.config import PrefetchConfig
from repro.core.eviction import EvictionPolicy
from repro.distributed.cluster import SimCluster
from repro.distributed.ddp import allreduce_gradients
from repro.features.store import merge_store_summaries
from repro.nn import build_model, build_optimizer
from repro.sampling.pipeline import MiniBatchPipeline
from repro.training.artifacts import TrainerArtifacts
from repro.training.config import TrainConfig
from repro.training.engine import (
    PipelineBuilder,
    assemble_training_report,
)
from repro.training.pipelines import PIPELINES
from repro.training.telemetry import (
    ComponentAccumulator,
    EpochRecord,
    TrainingReport,
    percentile_summary,
)
from repro.utils.rng import derive_seed


@dataclass
class TrainerRunStats:
    """One trainer's cluster-run summary (telemetry, not numerics)."""

    global_rank: int
    machine: int
    local_rank: int
    simulated_time_s: float
    barrier_wait_s: float
    num_steps: int
    compute_multiplier: float = 1.0
    hit_rate: Optional[float] = None
    rpc_stats: Dict[str, float] = field(default_factory=dict)
    components: Dict[str, float] = field(default_factory=dict)
    store_summary: Dict[str, float] = field(default_factory=dict)
    # Per-tier cache counters ("{role}.tier.{tier}.{counter}"); empty for
    # tier-less runs, and then omitted from as_dict so the golden fixture
    # schema is untouched unless cache tiers are actually in play.
    cache_stats: Dict[str, float] = field(default_factory=dict)
    # Async-engine extras (hidden sync time, staleness waits, failure
    # downtime, model averages); empty — and omitted from as_dict — on
    # lockstep runs, same golden-schema discipline as cache_stats.
    sync_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def busy_time_s(self) -> float:
        """Simulated time spent off the barrier (pipeline + compute + stalls)."""
        return self.simulated_time_s - self.barrier_wait_s

    def as_dict(self) -> Dict[str, object]:
        out = {
            "global_rank": self.global_rank,
            "machine": self.machine,
            "local_rank": self.local_rank,
            "simulated_time_s": self.simulated_time_s,
            "barrier_wait_s": self.barrier_wait_s,
            "busy_time_s": self.busy_time_s,
            "num_steps": self.num_steps,
            "compute_multiplier": self.compute_multiplier,
            "hit_rate": self.hit_rate,
            "rpc_stats": dict(self.rpc_stats),
            "components": dict(self.components),
            "store_summary": dict(self.store_summary),
        }
        if self.cache_stats:
            out["cache_stats"] = dict(self.cache_stats)
        if self.sync_stats:
            out["sync_stats"] = dict(self.sync_stats)
        return out


@dataclass
class ClusterReport:
    """A :class:`TrainingReport` plus the cluster-level telemetry roll-up."""

    report: TrainingReport
    trainer_stats: List[TrainerRunStats] = field(default_factory=list)
    scenario: Optional[str] = None
    store_summary: Dict[str, float] = field(default_factory=dict)
    # Execution-backend provenance: set by the async engine ("async" plus the
    # sync-policy description); None on lockstep runs, and then omitted from
    # as_dict/summary so the golden fixture schema is untouched.
    engine: Optional[str] = None
    sync: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Cluster aggregates
    # ------------------------------------------------------------------ #
    @property
    def critical_path_time_s(self) -> float:
        """The cluster finishes when its slowest trainer does."""
        if not self.trainer_stats:
            return self.report.total_simulated_time_s
        return max(t.simulated_time_s for t in self.trainer_stats)

    @property
    def critical_trainer_rank(self) -> int:
        """Global rank of the trainer defining the critical path."""
        if not self.trainer_stats:
            return 0
        return max(self.trainer_stats, key=lambda t: t.simulated_time_s).global_rank

    @property
    def total_barrier_wait_s(self) -> float:
        return float(sum(t.barrier_wait_s for t in self.trainer_stats))

    @property
    def load_imbalance(self) -> float:
        """Max over mean per-trainer busy time (1.0 = perfectly balanced)."""
        busy = [t.busy_time_s for t in self.trainer_stats]
        mean = float(np.mean(busy)) if busy else 0.0
        return float(max(busy) / mean) if mean > 0 else 1.0

    @property
    def mean_hit_rate(self) -> Optional[float]:
        rates = [t.hit_rate for t in self.trainer_stats if t.hit_rate is not None]
        return float(np.mean(rates)) if rates else None

    def mean_tier_hit_rates(self) -> Dict[str, float]:
        """Mean per-tier hit rate across trainers that report the tier.

        Keys are the ``{role}.tier.{tier}`` prefixes of the trainers'
        ``cache_stats``; empty for tier-less runs.
        """
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for t in self.trainer_stats:
            for key, value in t.cache_stats.items():
                if key.endswith(".hit_rate"):
                    prefix = key[: -len(".hit_rate")]
                    sums[prefix] = sums.get(prefix, 0.0) + float(value)
                    counts[prefix] = counts.get(prefix, 0) + 1
        return {k: sums[k] / counts[k] for k in sums}

    @property
    def total_tier_evictions(self) -> int:
        """Cluster-wide tier evictions.

        Per-trainer tiers sum across trainers; the machine-shared tier is one
        object reported identically by every trainer on the machine, so its
        cumulative counter is counted once per machine, not once per trainer.
        """
        total = 0.0
        shared: Dict[tuple, float] = {}
        for t in self.trainer_stats:
            for key, value in t.cache_stats.items():
                if not key.endswith(".evictions"):
                    continue
                if ".tier.shared." in key:
                    shared[(t.machine, key)] = float(value)
                else:
                    total += float(value)
        return int(total + sum(shared.values()))

    @property
    def total_rpc_bytes(self) -> int:
        return int(sum(t.rpc_stats.get("bytes_fetched", 0.0) for t in self.trainer_stats))

    @property
    def total_rpc_requests(self) -> int:
        return int(sum(t.rpc_stats.get("requests", 0.0) for t in self.trainer_stats))

    def machine_times(self) -> Dict[int, float]:
        """Per-machine simulated time (max over the machine's trainers)."""
        out: Dict[int, float] = {}
        for t in self.trainer_stats:
            out[t.machine] = max(out.get(t.machine, 0.0), t.simulated_time_s)
        return out

    def busy_time_percentiles(self) -> Dict[str, float]:
        """Spread of per-trainer busy time (p50/p95/p99/mean/max seconds).

        Shares :func:`~repro.training.telemetry.percentile_summary` with the
        serving report, so training-side straggler spreads and serving-side
        latency tails are computed by the same quantile rule.
        """
        return percentile_summary(t.busy_time_s for t in self.trainer_stats)

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """Flat cluster-level metrics (benchmarks and the CLI table).

        Values are floats except ``mode`` and ``scenario``, which are strings.
        """
        out = {
            "mode": self.report.mode,
            "scenario": self.scenario or "",
            "num_machines": float(self.report.num_machines),
            "world_size": float(self.report.world_size),
            "epochs": float(self.report.epochs),
            "critical_path_time_s": self.critical_path_time_s,
            "critical_trainer_rank": float(self.critical_trainer_rank),
            "total_barrier_wait_s": self.total_barrier_wait_s,
            "load_imbalance": self.load_imbalance,
            "total_rpc_bytes": float(self.total_rpc_bytes),
            "total_rpc_requests": float(self.total_rpc_requests),
            "final_train_accuracy": self.report.final_train_accuracy,
            "num_minibatches": float(self.report.num_minibatches),
        }
        for key, value in sorted(self.busy_time_percentiles().items()):
            out[f"busy_time.{key}"] = value
        if self.engine is not None:
            out["engine"] = self.engine
            out["sync"] = self.sync or ""
        if self.mean_hit_rate is not None:
            out["mean_hit_rate"] = self.mean_hit_rate
        tier_rates = self.mean_tier_hit_rates()
        if tier_rates:
            for prefix, rate in sorted(tier_rates.items()):
                out[f"cache.{prefix}.hit_rate"] = rate
            out["cache.total_tier_evictions"] = float(self.total_tier_evictions)
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable dump (golden-number fixtures, trace files)."""
        out = {
            "scenario": self.scenario,
            "mode": self.report.mode,
            "dataset": self.report.dataset,
            "num_machines": self.report.num_machines,
            "trainers_per_machine": self.report.trainers_per_machine,
            "epochs": self.report.epochs,
            "total_simulated_time_s": self.report.total_simulated_time_s,
            "critical_path_time_s": self.critical_path_time_s,
            "total_barrier_wait_s": self.total_barrier_wait_s,
            "load_imbalance": self.load_imbalance,
            "num_minibatches": self.report.num_minibatches,
            "losses": [r.loss for r in self.report.epoch_records],
            "epoch_times_s": [r.simulated_time_s for r in self.report.epoch_records],
            "train_accuracies": [r.train_accuracy for r in self.report.epoch_records],
            "hit_rate": self.report.hit_rate if self.report.hit_tracker else None,
            "total_rpc_bytes": self.total_rpc_bytes,
            "total_rpc_requests": self.total_rpc_requests,
            "trainers": [t.as_dict() for t in self.trainer_stats],
        }
        if self.engine is not None:
            out["engine"] = self.engine
            out["sync"] = self.sync
        return out


# --------------------------------------------------------------------------- #
# Shared run machinery
#
# The lockstep ClusterEngine and the event-driven AsyncClusterEngine
# (repro.training.async_engine) build identical run state and collect
# identical per-trainer telemetry; keeping the code here as module-level
# helpers is what lets the async engine's allreduce-barrier mode stay
# bit-identical to the lockstep loop (tests/test_async_engine.py).
# --------------------------------------------------------------------------- #
@dataclass
class ClusterRunSetup:
    """Everything both cluster engines build before their first step/event."""

    model: object
    optimizer: object
    num_params: int
    cost_models: List[object]
    pipelines: List[MiniBatchPipeline]
    mode: str
    init_reports: List[Dict[str, float]]
    accumulators: List[ComponentAccumulator]
    wall_start: float


def prepare_cluster_run(
    cluster: SimCluster,
    config: TrainConfig,
    pipeline: Union[str, PipelineBuilder],
    prefetch_config: Optional[PrefetchConfig],
    eviction_policy: Optional[EvictionPolicy],
    cache_config: Optional[CacheConfig],
) -> ClusterRunSetup:
    """Reset the cluster and build model/optimizer/pipelines for one run.

    Mirrors the single-run engine's setup exactly (same derive_seed salts,
    same init-cost charging order), which is what the differential tests on
    both cluster engines rely on.
    """
    if isinstance(pipeline, str):
        name: Optional[str] = PIPELINES.resolve(pipeline)
        builder: PipelineBuilder = PIPELINES.get(pipeline)
    else:
        name = None
        builder = pipeline

    wall_start = time.perf_counter()
    cluster.reset()

    model = build_model(
        config.arch,
        in_dim=cluster.dataset.feature_dim,
        hidden_dim=config.hidden_dim,
        num_classes=cluster.dataset.num_classes,
        num_layers=config.num_layers,
        num_heads=config.num_heads,
        seed=derive_seed(config.seed, 401),
    )
    optimizer = build_optimizer(
        config.optimizer, lr=config.learning_rate, weight_decay=config.weight_decay
    )
    trainers = cluster.trainers
    # Heterogeneity: compute is charged through the owning machine's cost
    # model; with all multipliers at 1.0 these are value-identical to the
    # shared model, which is what keeps the differential tests exact.
    cost_models = [cluster.cost_model_for_machine(t.machine) for t in trainers]

    builder_kwargs = {
        "prefetch_config": prefetch_config,
        "eviction_policy": eviction_policy,
    }
    if cache_config is not None:
        builder_kwargs["cache_config"] = cache_config
    pipelines: List[MiniBatchPipeline] = [
        builder(trainer, cluster, **builder_kwargs) for trainer in trainers
    ]
    mode = name or (pipelines[0].name if pipelines else "pipeline")
    init_reports: List[Dict[str, float]] = []
    for trainer, pl in zip(trainers, pipelines):
        if pl.init_report is not None:
            trainer.clock.advance(pl.init_time_s, "init")
            init_reports.append(dict(pl.init_report))

    return ClusterRunSetup(
        model=model,
        optimizer=optimizer,
        num_params=model.num_parameters(),
        cost_models=cost_models,
        pipelines=pipelines,
        mode=mode,
        init_reports=init_reports,
        accumulators=[ComponentAccumulator() for _ in trainers],
        wall_start=wall_start,
    )


def collect_trainer_stats(
    cluster: SimCluster,
    artifacts: List[TrainerArtifacts],
    trainer_steps: List[int],
    barrier_waits: List[float],
    sync_extras: Optional[List[Dict[str, float]]] = None,
) -> List[TrainerRunStats]:
    """Per-trainer telemetry roll-up shared by both cluster engines.

    Consumes :class:`~repro.training.artifacts.TrainerArtifacts` snapshots so
    the roll-up is identical whether trainers ran inline or in worker
    processes (the snapshots are the execution-backend boundary).
    """
    stats: List[TrainerRunStats] = []
    for i, art in enumerate(artifacts):
        stats.append(
            TrainerRunStats(
                global_rank=art.global_rank,
                machine=art.machine,
                local_rank=art.local_rank,
                simulated_time_s=art.clock_time,
                barrier_wait_s=barrier_waits[i],
                num_steps=trainer_steps[i],
                compute_multiplier=cluster.config.compute_multiplier(art.machine),
                hit_rate=art.hit_rate,
                rpc_stats=art.rpc_stats.as_dict(),
                components=dict(art.clock_breakdown),
                store_summary=(
                    dict(art.store_summary) if art.store_summary is not None else {}
                ),
                cache_stats=dict(art.cache_summary),
                sync_stats=(
                    dict(sync_extras[i]) if sync_extras is not None else {}
                ),
            )
        )
    return stats


def merged_store_summary(pipelines: List[MiniBatchPipeline]) -> Dict[str, float]:
    """Cluster-wide feature-store summary over every pipeline that has a store."""
    return merge_store_summaries(
        pl.feature_store.summary() for pl in pipelines if pl.feature_store is not None
    )


def merged_store_summary_from_artifacts(
    artifacts: List[TrainerArtifacts],
) -> Dict[str, float]:
    """Cluster-wide feature-store summary from per-trainer artifact snapshots."""
    return merge_store_summaries(
        art.store_summary for art in artifacts if art.store_summary is not None
    )


class ClusterEngine:
    """Run one minibatch pipeline per trainer across a simulated cluster.

    ``execution_backend`` selects where trainer steps run
    (:data:`~repro.training.backends.EXECUTION_BACKENDS`): ``inline`` keeps
    the historical in-process loop, ``process-pool`` fans machines out to
    ``workers`` parallel processes with bit-identical reports.
    """

    def __init__(
        self,
        cluster: SimCluster,
        train_config: TrainConfig,
        scenario: Optional[str] = None,
        execution_backend: str = "inline",
        workers: Optional[int] = None,
    ):
        from repro.training.backends import EXECUTION_BACKENDS

        self.cluster = cluster
        self.config = train_config
        self.cost_model = cluster.cost_model
        self.dataset = cluster.dataset
        self.scenario = scenario
        self.execution_backend = EXECUTION_BACKENDS.resolve(execution_backend)
        self.workers = workers
        cluster.validate_seed_coverage()

    # ------------------------------------------------------------------ #
    def run(
        self,
        pipeline: Union[str, PipelineBuilder] = "baseline",
        prefetch_config: Optional[PrefetchConfig] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        cache_config: Optional[CacheConfig] = None,
    ) -> ClusterReport:
        """Train the cluster with one *pipeline* instance per trainer.

        Same contract as :meth:`TrainingEngine.run_pipeline`, but returns a
        :class:`ClusterReport` whose embedded :class:`TrainingReport` is
        bit-identical to the single-run engine's on a homogeneous cluster.
        ``cache_config`` parameterizes the tiered cache sources and is only
        forwarded when set, so custom builders with the historical signature
        keep working.
        """
        from repro.training.backends import EXECUTION_BACKENDS, StepOutcome

        cluster, config = self.cluster, self.config
        backend = EXECUTION_BACKENDS.build(
            self.execution_backend, cluster, config, workers=self.workers
        )
        try:
            setup = backend.prepare(pipeline, prefetch_config, eviction_policy, cache_config)
            model = setup.model
            num_params = setup.num_params
            mode = setup.mode
            trainers = cluster.trainers
            world = len(trainers)

            accumulators = setup.accumulators
            trainer_steps = [0] * world
            barrier_waits = [0.0] * world
            total_minibatches = 0
            global_step = 0  # monotone step id driving RPC coalescing windows
            epoch_records: List[EpochRecord] = []
            previous_epoch_end = max(t.clock.time for t in trainers) if trainers else 0.0

            for epoch in range(config.epochs):
                backend.begin_epoch()
                active = [True] * world
                losses: List[float] = []
                correct = 0
                seen = 0
                steps_this_epoch = 0

                while any(active):
                    if (
                        config.max_steps_per_epoch is not None
                        and steps_this_epoch >= config.max_steps_per_epoch
                    ):
                        break
                    requests = [(i, global_step) for i in range(world) if active[i]]
                    step_grads: List[Dict[str, np.ndarray]] = []
                    participated: List[int] = []

                    def on_outcome(out: StepOutcome) -> None:
                        nonlocal total_minibatches, correct, seen
                        trainer_steps[out.rank] += 1
                        total_minibatches += 1
                        losses.append(out.loss)
                        correct += out.n_correct
                        seen += out.n_seen
                        step_grads.append(out.grads)
                        participated.append(out.rank)

                    def on_exhausted(rank: int) -> None:
                        active[rank] = False

                    # One fused round: every trainer's RPC coalescing window
                    # opens for the step (no-op on per-call channels), then
                    # the active trainers step in rank order.
                    backend.run_steps(
                        requests,
                        begin_step_all=global_step,
                        on_outcome=on_outcome,
                        on_exhausted=on_exhausted,
                    )
                    global_step += 1

                    if not step_grads:
                        break
                    averaged = allreduce_gradients(step_grads)
                    self._allreduce_barrier(
                        participated, accumulators, barrier_waits, num_params
                    )
                    backend.apply_update(averaged)
                    steps_this_epoch += 1

                epoch_end = max(t.clock.time for t in trainers) if trainers else 0.0
                hit_rates = [h for h in backend.epoch_hit_rates() if h is not None]
                epoch_records.append(
                    EpochRecord(
                        epoch=epoch,
                        simulated_time_s=epoch_end - previous_epoch_end,
                        loss=float(np.mean(losses)) if losses else 0.0,
                        train_accuracy=correct / seen if seen else 0.0,
                        hit_rate=float(np.mean(hit_rates)) if hit_rates else None,
                    )
                )
                previous_epoch_end = epoch_end
                backend.end_epoch()

            artifacts = backend.collect_artifacts()
            report = assemble_training_report(
                mode=mode,
                cluster=cluster,
                train_config=config,
                artifacts=artifacts,
                epoch_records=epoch_records,
                init_reports=setup.init_reports,
                total_minibatches=total_minibatches,
                wall_clock_s=time.perf_counter() - setup.wall_start,
                model=model,
                prefetch_config=prefetch_config,
            )
        finally:
            backend.close()
        self._final_model = model
        return ClusterReport(
            report=report,
            trainer_stats=collect_trainer_stats(
                cluster, artifacts, trainer_steps, barrier_waits
            ),
            scenario=self.scenario,
            store_summary=merged_store_summary_from_artifacts(artifacts),
        )

    # ------------------------------------------------------------------ #
    def _allreduce_barrier(
        self,
        participated: List[int],
        accumulators: List[ComponentAccumulator],
        barrier_waits: List[float],
        num_params: int,
    ) -> None:
        """Charge allreduce cost, then hold every trainer at the barrier.

        The wait each trainer spends for the step's straggler is measured
        *before* the clocks are advanced, so barrier wait is separable from
        the pipeline's own stalls while the clock totals stay identical to
        :class:`TrainingEngine`'s accounting.
        """
        trainers = self.cluster.trainers
        allreduce_t = self.cost_model.time_allreduce(num_params, len(trainers))
        for i in participated:
            trainers[i].clock.advance(allreduce_t, "allreduce")
            accumulators[i].totals["allreduce"] += allreduce_t
        latest = max(t.clock.time for t in trainers)
        for i, trainer in enumerate(trainers):
            wait = latest - trainer.clock.time
            if wait > 0:
                barrier_waits[i] += wait
                trainer.clock.advance(wait, "stall")

    # ------------------------------------------------------------------ #
    @property
    def final_model(self):
        """The trained model from the most recent run."""
        model = getattr(self, "_final_model", None)
        if model is None:
            raise RuntimeError("no cluster run has completed yet")
        return model
