"""Run traces: serialize training reports to JSON and index experiments.

Two purposes:

* **Provenance** — benchmark harnesses and examples can persist a
  :class:`~repro.training.telemetry.TrainingReport` (plus the configs that
  produced it) as a JSON trace, reload it later, and diff two runs without
  rerunning anything.
* **Experiment registry** — the mapping from the paper's table/figure numbers
  to the benchmark target and the modules that implement it (DESIGN.md's
  per-experiment index) is available programmatically, so tooling (the CLI's
  ``experiments`` command, docs generators) cannot drift from the code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.training.telemetry import TrainingReport


# --------------------------------------------------------------------------- #
# Experiment registry (DESIGN.md per-experiment index, as data)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExperimentSpec:
    """One paper table/figure and how this repository regenerates it."""

    experiment_id: str
    paper_reference: str
    description: str
    bench_target: str
    modules: tuple
    workload: str


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in [
        ExperimentSpec(
            "table2", "Table II", "Dataset statistics of the OGB analogs",
            "benchmarks/bench_table2_datasets.py",
            ("repro.graph.datasets", "repro.graph.generators"),
            "all four dataset analogs",
        ),
        ExperimentSpec(
            "table3", "Table III", "Average remote nodes and minibatches per trainer",
            "benchmarks/bench_table3_remote_nodes.py",
            ("repro.graph.partition", "repro.distributed.cluster"),
            "4-16 trainers, constant batch size",
        ),
        ExperimentSpec(
            "table4", "Table IV", "Optimal (f_h, gamma, delta) per dataset/backend",
            "benchmarks/bench_table4_optimal_params.py",
            ("repro.training.sweep",),
            "reduced parameter grid, CPU and GPU backends",
        ),
        ExperimentSpec(
            "fig5", "Fig. 5", "Decay/interval trade-off quadrants",
            "benchmarks/bench_fig5_quadrants.py",
            ("repro.perf.tradeoffs", "repro.training.engine"),
            "one configuration per quadrant on products",
        ),
        ExperimentSpec(
            "fig6", "Fig. 6", "End-to-end GraphSAGE training time, CPU and GPU",
            "benchmarks/bench_fig6_training_time.py",
            ("repro.training.engine", "repro.core.prefetcher"),
            "4 datasets x 2 backends x 2 cluster sizes",
        ),
        ExperimentSpec(
            "fig7", "Fig. 7", "GAT on the papers analog",
            "benchmarks/bench_fig7_gat.py",
            ("repro.nn.gat", "repro.training.engine"),
            "2-head GAT, CPU and GPU backends",
        ),
        ExperimentSpec(
            "fig8", "Fig. 8", "Prefetcher initialization cost",
            "benchmarks/bench_fig8_init_cost.py",
            ("repro.core.prefetcher",),
            "products and papers analogs",
        ),
        ExperimentSpec(
            "fig9", "Fig. 9", "Component-wise time breakdown and overlap efficiency",
            "benchmarks/bench_fig9_breakdown.py",
            ("repro.training.telemetry", "repro.distributed.cost_model"),
            "products and papers, CPU and GPU",
        ),
        ExperimentSpec(
            "fig10", "Fig. 10", "Hit-rate progression across minibatches",
            "benchmarks/bench_fig10_hitrate_progression.py",
            ("repro.core.metrics",),
            "longer products training with eviction",
        ),
        ExperimentSpec(
            "fig11", "Fig. 11", "Remote-node and communication-time reduction",
            "benchmarks/bench_fig11_rpc_reduction.py",
            ("repro.distributed.rpc", "repro.perf.model"),
            "products and papers, CPU backend",
        ),
        ExperimentSpec(
            "fig12", "Fig. 12", "Eviction interval sweep per decay factor",
            "benchmarks/bench_fig12_delta_sweep.py",
            ("repro.training.sweep",),
            "delta sweep on products",
        ),
        ExperimentSpec(
            "fig13", "Fig. 13", "Decay factor sweep",
            "benchmarks/bench_fig13_gamma_sweep.py",
            ("repro.training.sweep",),
            "gamma sweep on products",
        ),
        ExperimentSpec(
            "fig14", "Fig. 14", "Peak memory, baseline vs prefetch",
            "benchmarks/bench_fig14_memory.py",
            ("repro.training.memory",),
            "papers analog, extreme configuration",
        ),
        ExperimentSpec(
            "perfmodel", "Eqs. 2-7", "Analytical performance model validation",
            "benchmarks/bench_perfmodel.py",
            ("repro.perf.model",),
            "model prediction vs simulated execution",
        ),
        ExperimentSpec(
            "ablations", "(extension)", "Eviction-policy and partition-quality ablations",
            "benchmarks/bench_ablations.py",
            ("repro.core.eviction", "repro.graph.partition"),
            "products analog",
        ),
    ]
}


def list_experiments() -> List[ExperimentSpec]:
    """All registered experiments in a stable order."""
    return [EXPERIMENTS[k] for k in sorted(EXPERIMENTS)]


def get_experiment(experiment_id: str) -> ExperimentSpec:
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]


# --------------------------------------------------------------------------- #
# Report (de)serialization
# --------------------------------------------------------------------------- #
def report_to_dict(report: TrainingReport) -> Dict:
    """Flatten a :class:`TrainingReport` into JSON-serializable primitives."""
    return {
        "mode": report.mode,
        "backend": report.backend,
        "dataset": report.dataset,
        "arch": report.arch,
        "num_machines": report.num_machines,
        "trainers_per_machine": report.trainers_per_machine,
        "epochs": report.epochs,
        "total_simulated_time_s": report.total_simulated_time_s,
        "wall_clock_s": report.wall_clock_s,
        "final_train_accuracy": report.final_train_accuracy,
        "val_accuracy": report.val_accuracy,
        "test_accuracy": report.test_accuracy,
        "hit_rate": report.hit_rate,
        "overlap_efficiency": report.overlap_efficiency,
        "num_minibatches": report.num_minibatches,
        "remote_nodes_fetched": report.remote_nodes_fetched(),
        "config_description": report.config_description,
        "component_breakdown": dict(report.component_breakdown),
        "epoch_loss": [r.loss for r in report.epoch_records],
        "epoch_time_s": [r.simulated_time_s for r in report.epoch_records],
        "epoch_train_accuracy": [r.train_accuracy for r in report.epoch_records],
        "extras": dict(report.extras),
    }


def save_trace(
    report: TrainingReport,
    path: Union[str, Path],
    metadata: Optional[Dict] = None,
) -> Path:
    """Write a JSON trace of *report* (plus optional metadata) to *path*."""
    path = Path(path)
    payload = {"report": report_to_dict(report), "metadata": metadata or {}}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_trace(path: Union[str, Path]) -> Dict:
    """Load a JSON trace written by :func:`save_trace`."""
    payload = json.loads(Path(path).read_text())
    if "report" not in payload:
        raise ValueError(f"{path} is not a repro trace (missing 'report')")
    return payload


def compare_traces(baseline: Dict, other: Dict) -> Dict[str, float]:
    """Compare two loaded traces; positive improvement means *other* is faster."""
    base_report, other_report = baseline["report"], other["report"]
    base_time = base_report["total_simulated_time_s"]
    other_time = other_report["total_simulated_time_s"]
    improvement = 100.0 * (base_time - other_time) / base_time if base_time > 0 else 0.0
    return {
        "baseline_time_s": base_time,
        "other_time_s": other_time,
        "improvement_percent": improvement,
        "speedup": base_time / other_time if other_time > 0 else float("inf"),
        "baseline_hit_rate": base_report.get("hit_rate", 0.0),
        "other_hit_rate": other_report.get("hit_rate", 0.0),
        "remote_nodes_delta": other_report.get("remote_nodes_fetched", 0)
        - base_report.get("remote_nodes_fetched", 0),
        "accuracy_delta": other_report.get("final_train_accuracy", 0.0)
        - base_report.get("final_train_accuracy", 0.0),
    }
