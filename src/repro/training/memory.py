"""Peak-memory measurement of the two pipelines (Fig. 14).

The paper measures allocations with :mod:`tracemalloc` during initialization
and training, in a deliberately memory-hostile configuration (``f_h = 0.5``
and eviction on every minibatch, ``Δ = 1``): the prefetcher's buffer and
scoreboards add ~500 MB/trainer at initialization on papers100M but only
~10% extra peak during training.  The same methodology is used here — the
absolute numbers are smaller because the datasets are scaled down, but the
ratio between the baseline and the prefetch pipelines is preserved.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import PrefetchConfig
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.cost_model import CostModel
from repro.graph.datasets import GraphDataset
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine


@dataclass
class MemoryProfile:
    """Peak allocations (bytes) of one pipeline, split by phase."""

    mode: str
    init_peak_bytes: int
    train_peak_bytes: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "mode": self.mode,
            "init_peak_mb": self.init_peak_bytes / 1e6,
            "train_peak_mb": self.train_peak_bytes / 1e6,
        }


def _measure(fn) -> int:
    """Peak traced allocation (bytes) while running *fn*."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def profile_memory(
    dataset: GraphDataset,
    mode: str,
    prefetch_config: Optional[PrefetchConfig] = None,
    cluster_config: Optional[ClusterConfig] = None,
    train_config: Optional[TrainConfig] = None,
    cost_model: Optional[CostModel] = None,
) -> MemoryProfile:
    """Measure peak allocations of cluster construction/prefetcher init vs. training."""
    if mode not in ("baseline", "prefetch"):
        raise ValueError("mode must be 'baseline' or 'prefetch'")
    cluster_config = cluster_config or ClusterConfig()
    train_config = train_config or TrainConfig(epochs=2)
    if mode == "prefetch" and prefetch_config is None:
        # Paper's extreme configuration: half the halo nodes buffered and an
        # eviction round on every minibatch.
        prefetch_config = PrefetchConfig(halo_fraction=0.5, delta=1, gamma=0.95)

    state: Dict[str, object] = {}

    def init_phase() -> None:
        state["cluster"] = SimCluster(dataset, cluster_config, cost_model=cost_model)
        state["engine"] = TrainingEngine(state["cluster"], train_config)

    init_peak = _measure(init_phase)

    def train_phase() -> None:
        engine: TrainingEngine = state["engine"]  # type: ignore[assignment]
        if mode == "baseline":
            engine.run_baseline()
        else:
            engine.run_prefetch(prefetch_config)

    train_peak = _measure(train_phase)
    return MemoryProfile(mode=mode, init_peak_bytes=init_peak, train_peak_bytes=train_peak)


def compare_memory(
    dataset: GraphDataset,
    prefetch_config: Optional[PrefetchConfig] = None,
    cluster_config: Optional[ClusterConfig] = None,
    train_config: Optional[TrainConfig] = None,
    cost_model: Optional[CostModel] = None,
) -> Dict[str, MemoryProfile]:
    """Fig. 14: baseline vs. prefetch peak memory under the extreme configuration."""
    baseline = profile_memory(
        dataset, "baseline", cluster_config=cluster_config,
        train_config=train_config, cost_model=cost_model,
    )
    prefetch = profile_memory(
        dataset, "prefetch", prefetch_config=prefetch_config,
        cluster_config=cluster_config, train_config=train_config, cost_model=cost_model,
    )
    return {"baseline": baseline, "prefetch": prefetch}
