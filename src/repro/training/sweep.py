"""Parameter sweeps over (f_h, γ, Δ) — the machinery behind Table IV and Figs. 12–13.

The paper tests f_h ∈ {15, 25, 35, 50}%, Δ ∈ {16 … 1024}, γ ∈ {0.95, 0.995,
0.9995} per dataset/backend and reports the combination that minimizes
end-to-end training time (time is prioritized over hit rate when they
disagree, Section V-A4).  :func:`run_parameter_sweep` executes an arbitrary
grid on a shared cluster and :func:`find_optimal` reproduces that selection
rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import (
    PAPER_DELTAS,
    PAPER_GAMMAS,
    PAPER_HALO_FRACTIONS,
    PrefetchConfig,
)
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.cost_model import CostModel
from repro.graph.datasets import GraphDataset
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine
from repro.training.telemetry import TrainingReport


@dataclass
class SweepPoint:
    """One evaluated configuration in a sweep."""

    halo_fraction: float
    gamma: float
    delta: int
    eviction_enabled: bool
    total_time_s: float
    hit_rate: float
    improvement_percent: float
    report: Optional[TrainingReport] = field(default=None, repr=False)

    def key(self) -> Tuple[float, float, int]:
        return (self.halo_fraction, self.gamma, self.delta)


@dataclass
class SweepResult:
    """All points of a sweep plus the shared baseline run."""

    baseline: TrainingReport
    points: List[SweepPoint]

    def best(self, by: str = "time") -> SweepPoint:
        """Best point: minimum time (default) or maximum hit rate."""
        if not self.points:
            raise ValueError("sweep produced no points")
        if by == "time":
            return min(self.points, key=lambda p: p.total_time_s)
        if by == "hit_rate":
            return max(self.points, key=lambda p: p.hit_rate)
        raise ValueError(f"unknown criterion {by!r}")

    def as_rows(self) -> List[List[object]]:
        """Rows for the benchmark tables: (f_h, γ, Δ, time, hit rate, improvement %)."""
        return [
            [p.halo_fraction, p.gamma, p.delta, p.total_time_s, p.hit_rate, p.improvement_percent]
            for p in self.points
        ]


def run_parameter_sweep(
    dataset: GraphDataset,
    cluster_config: Optional[ClusterConfig] = None,
    train_config: Optional[TrainConfig] = None,
    halo_fractions: Sequence[float] = (0.25,),
    gammas: Sequence[float] = (0.995,),
    deltas: Sequence[int] = (64,),
    include_no_eviction: bool = False,
    cost_model: Optional[CostModel] = None,
    keep_reports: bool = False,
) -> SweepResult:
    """Run the baseline once plus one prefetch run per grid point on a shared cluster."""
    cluster_config = cluster_config or ClusterConfig()
    train_config = train_config or TrainConfig()
    cluster = SimCluster(dataset, cluster_config, cost_model=cost_model)
    engine = TrainingEngine(cluster, train_config)
    baseline = engine.run_baseline()

    points: List[SweepPoint] = []
    for f_h in halo_fractions:
        configs: List[PrefetchConfig] = []
        if include_no_eviction:
            configs.append(PrefetchConfig(halo_fraction=f_h, eviction_enabled=False))
        for gamma in gammas:
            for delta in deltas:
                configs.append(PrefetchConfig(halo_fraction=f_h, gamma=gamma, delta=delta))
        for config in configs:
            report = engine.run_prefetch(config)
            points.append(
                SweepPoint(
                    halo_fraction=config.halo_fraction,
                    gamma=config.gamma,
                    delta=config.delta,
                    eviction_enabled=config.eviction_enabled,
                    total_time_s=report.total_simulated_time_s,
                    hit_rate=report.hit_rate,
                    improvement_percent=report.improvement_percent_vs(baseline),
                    report=report if keep_reports else None,
                )
            )
    return SweepResult(baseline=baseline, points=points)


def find_optimal(
    sweep: SweepResult, prioritize: str = "time"
) -> Dict[str, float]:
    """Table IV selection rule: the (f_h, γ, Δ) minimizing end-to-end time."""
    best = sweep.best(by=prioritize)
    return {
        "halo_fraction": best.halo_fraction,
        "gamma": best.gamma,
        "delta": best.delta,
        "total_time_s": best.total_time_s,
        "hit_rate": best.hit_rate,
        "improvement_percent": best.improvement_percent,
    }


def paper_grid(reduced: bool = True) -> Dict[str, Sequence[float]]:
    """The parameter grid the paper explores (optionally reduced for quick runs)."""
    if reduced:
        return {
            "halo_fractions": (0.25, 0.50),
            "gammas": (0.95, 0.995),
            "deltas": (16, 128),
        }
    return {
        "halo_fractions": PAPER_HALO_FRACTIONS,
        "gammas": PAPER_GAMMAS,
        "deltas": PAPER_DELTAS,
    }


def delta_sweep(
    dataset: GraphDataset,
    gamma_values: Iterable[float],
    delta_values: Iterable[int],
    halo_fraction: float = 0.25,
    cluster_config: Optional[ClusterConfig] = None,
    train_config: Optional[TrainConfig] = None,
    cost_model: Optional[CostModel] = None,
) -> Dict[float, List[SweepPoint]]:
    """Fig. 12 data: for each γ, sweep the eviction interval Δ."""
    out: Dict[float, List[SweepPoint]] = {}
    for gamma in gamma_values:
        sweep = run_parameter_sweep(
            dataset,
            cluster_config=cluster_config,
            train_config=train_config,
            halo_fractions=(halo_fraction,),
            gammas=(gamma,),
            deltas=tuple(delta_values),
            cost_model=cost_model,
        )
        out[float(gamma)] = sweep.points
    return out


def gamma_sweep(
    dataset: GraphDataset,
    gamma_values: Iterable[float],
    delta_values: Iterable[int],
    halo_fraction: float = 0.25,
    cluster_config: Optional[ClusterConfig] = None,
    train_config: Optional[TrainConfig] = None,
    cost_model: Optional[CostModel] = None,
) -> Dict[float, Dict[str, float]]:
    """Fig. 13 data: per γ, the mean/min/max time and hit rate across Δ values."""
    results: Dict[float, Dict[str, float]] = {}
    for gamma in gamma_values:
        sweep = run_parameter_sweep(
            dataset,
            cluster_config=cluster_config,
            train_config=train_config,
            halo_fractions=(halo_fraction,),
            gammas=(gamma,),
            deltas=tuple(delta_values),
            cost_model=cost_model,
        )
        times = np.array([p.total_time_s for p in sweep.points])
        hits = np.array([p.hit_rate for p in sweep.points])
        results[float(gamma)] = {
            "mean_time_s": float(times.mean()),
            "min_time_s": float(times.min()),
            "max_time_s": float(times.max()),
            "mean_hit_rate": float(hits.mean()),
            "min_hit_rate": float(hits.min()),
            "max_hit_rate": float(hits.max()),
        }
    return results
