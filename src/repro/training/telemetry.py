"""Training telemetry: per-step timings, per-epoch records, and run reports.

Two ledgers are kept for every trainer:

* the **critical-path clock** (:class:`~repro.distributed.clock.SimClock`)
  advances only by time that is actually on the simulated critical path — with
  prefetching, the preparation of the next minibatch is charged only for the
  part that fails to hide behind DDP training;
* the **raw component accumulator** (:class:`ComponentAccumulator`) sums every
  component's cost regardless of overlap, which is what the Fig. 9 component
  breakdowns and the overlap-efficiency metric are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.metrics import HitRateTracker, merge_hit_trackers
from repro.distributed.rpc import RPCStats


def percentile_summary(
    values, percentiles=(50.0, 95.0, 99.0)
) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ..., "mean": ..., "max": ...}`` of *values*.

    The one quantile implementation shared by every report class —
    :class:`~repro.training.cluster_engine.ClusterReport` per-trainer spreads
    and the serving engine's :class:`~repro.serving.report.ServingReport`
    latency ledger — so the interpolation rule (numpy's default linear) can
    never drift between the training and serving halves of a benchmark.
    Empty input yields all zeros, keeping report schemas stable.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    keys = [f"p{p:g}" for p in percentiles]
    if arr.size == 0:
        out = {k: 0.0 for k in keys}
        out["mean"] = 0.0
        out["max"] = 0.0
        return out
    quantiles = np.percentile(arr, list(percentiles))
    out = {k: float(q) for k, q in zip(keys, quantiles)}
    out["mean"] = float(arr.mean())
    out["max"] = float(arr.max())
    return out


@dataclass
class StepTiming:
    """Component times (seconds) of one minibatch step for one trainer."""

    sampling: float = 0.0
    lookup: float = 0.0
    scoring: float = 0.0
    eviction: float = 0.0
    rpc: float = 0.0
    copy: float = 0.0
    ddp: float = 0.0
    allreduce: float = 0.0
    prepare: float = 0.0          # Eq. 3 preparation time (prefetch pipeline only)
    critical_path: float = 0.0    # what this step added to the trainer's clock
    hidden: float = 0.0           # preparation time hidden behind DDP training

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


class ComponentAccumulator:
    """Sums raw component times across steps for one trainer."""

    FIELDS = (
        "sampling",
        "lookup",
        "scoring",
        "eviction",
        "rpc",
        "copy",
        "ddp",
        "allreduce",
        "prepare",
        "critical_path",
        "hidden",
    )

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {f: 0.0 for f in self.FIELDS}
        self.num_steps = 0

    def add(self, timing: StepTiming) -> None:
        for f in self.FIELDS:
            self.totals[f] += getattr(timing, f)
        self.num_steps += 1

    def mean(self) -> Dict[str, float]:
        if self.num_steps == 0:
            return {f: 0.0 for f in self.FIELDS}
        return {f: v / self.num_steps for f, v in self.totals.items()}

    def overlap_efficiency(self) -> float:
        """Fraction of preparation time hidden behind training (Section V-B2)."""
        prepare = self.totals["prepare"]
        if prepare <= 0:
            return 1.0
        return min(1.0, self.totals["hidden"] / prepare)


@dataclass
class EpochRecord:
    """Summary of one training epoch (cluster-wide)."""

    epoch: int
    simulated_time_s: float
    loss: float
    train_accuracy: float
    hit_rate: Optional[float] = None


@dataclass
class TrainingReport:
    """Everything a training run produces (consumed by benchmarks and tests)."""

    mode: str                                   # "baseline" or "prefetch"
    backend: str
    dataset: str
    arch: str
    num_machines: int
    trainers_per_machine: int
    epochs: int
    total_simulated_time_s: float = 0.0
    wall_clock_s: float = 0.0
    epoch_records: List[EpochRecord] = field(default_factory=list)
    component_breakdown: Dict[str, float] = field(default_factory=dict)
    per_trainer_breakdown: List[Dict[str, float]] = field(default_factory=list)
    rpc_stats: Optional[RPCStats] = None
    hit_tracker: Optional[HitRateTracker] = None
    per_trainer_hit_trackers: List[HitRateTracker] = field(default_factory=list)
    prefetch_init: List[Dict[str, float]] = field(default_factory=list)
    overlap_efficiency: float = 1.0
    final_train_accuracy: float = 0.0
    val_accuracy: Optional[float] = None
    test_accuracy: Optional[float] = None
    num_minibatches: int = 0
    config_description: str = ""
    extras: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def world_size(self) -> int:
        return self.num_machines * self.trainers_per_machine

    @property
    def hit_rate(self) -> float:
        if self.hit_tracker is None:
            return 0.0
        return self.hit_tracker.cumulative_hit_rate

    @property
    def loss_history(self) -> List[float]:
        return [r.loss for r in self.epoch_records]

    def epoch_times(self) -> np.ndarray:
        return np.array([r.simulated_time_s for r in self.epoch_records], dtype=np.float64)

    def speedup_vs(self, baseline: "TrainingReport") -> float:
        """``T_baseline / T_this`` (greater than 1 means this run is faster)."""
        if self.total_simulated_time_s <= 0:
            return float("inf")
        return baseline.total_simulated_time_s / self.total_simulated_time_s

    def improvement_percent_vs(self, baseline: "TrainingReport") -> float:
        """Percent reduction in end-to-end time relative to *baseline* (paper's Fig. 6 annotation)."""
        if baseline.total_simulated_time_s <= 0:
            return 0.0
        return 100.0 * (
            (baseline.total_simulated_time_s - self.total_simulated_time_s)
            / baseline.total_simulated_time_s
        )

    def remote_nodes_fetched(self) -> int:
        return int(self.rpc_stats.nodes_fetched) if self.rpc_stats else 0

    def summary(self) -> Dict[str, float]:
        return {
            "mode": self.mode,
            "backend": self.backend,
            "dataset": self.dataset,
            "arch": self.arch,
            "world_size": float(self.world_size),
            "epochs": float(self.epochs),
            "total_simulated_time_s": self.total_simulated_time_s,
            "final_train_accuracy": self.final_train_accuracy,
            "val_accuracy": self.val_accuracy if self.val_accuracy is not None else float("nan"),
            "hit_rate": self.hit_rate,
            "overlap_efficiency": self.overlap_efficiency,
            "remote_nodes_fetched": float(self.remote_nodes_fetched()),
            "num_minibatches": float(self.num_minibatches),
        }


def merge_trainer_hit_trackers(trackers: List[HitRateTracker]) -> HitRateTracker:
    """Aggregate per-trainer trackers into a single run-level trajectory."""
    return merge_hit_trackers(trackers)
