"""Model evaluation with sampled inference on the full (unpartitioned) graph.

The paper reports that prefetching leaves model accuracy unchanged because it
only reorganizes the data pipeline.  Evaluation here runs single-process
sampled inference over the full graph — the distributed data path is not
involved — so the same function scores models trained by either pipeline.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.datasets import GraphDataset
from repro.nn.loss import accuracy
from repro.sampling.neighbor_sampler import NeighborSampler
from repro.utils.rng import SeedLike
from repro.utils.validation import check_1d_int_array, check_positive


def evaluate_accuracy(
    model,
    dataset: GraphDataset,
    node_ids: np.ndarray,
    fanouts: Sequence[int] = (10, 25),
    batch_size: int = 512,
    seed: SeedLike = 0,
    max_batches: Optional[int] = None,
) -> float:
    """Sampled-inference accuracy of *model* on *node_ids* of *dataset*."""
    check_positive(batch_size, "batch_size")
    node_ids = check_1d_int_array(node_ids, "node_ids", max_value=dataset.num_nodes)
    if len(node_ids) == 0:
        return 0.0
    sampler = NeighborSampler(dataset.graph, fanouts, seed=seed)
    correct = 0
    total = 0
    num_batches = int(np.ceil(len(node_ids) / batch_size))
    if max_batches is not None:
        num_batches = min(num_batches, max_batches)
    for b in range(num_batches):
        batch = node_ids[b * batch_size: (b + 1) * batch_size]
        minibatch = sampler.sample(batch, labels=dataset.labels)
        feats = dataset.features[minibatch.input_global]
        logits = model.forward(minibatch.blocks, feats)
        preds = np.argmax(logits, axis=1)
        correct += int(np.sum(preds == minibatch.labels))
        total += len(minibatch.labels)
    return correct / total if total else 0.0


def evaluate_loss(
    model,
    dataset: GraphDataset,
    node_ids: np.ndarray,
    fanouts: Sequence[int] = (10, 25),
    batch_size: int = 512,
    seed: SeedLike = 0,
) -> float:
    """Mean cross-entropy of *model* on *node_ids* (sampled inference)."""
    from repro.nn.loss import cross_entropy

    node_ids = check_1d_int_array(node_ids, "node_ids", max_value=dataset.num_nodes)
    if len(node_ids) == 0:
        return 0.0
    sampler = NeighborSampler(dataset.graph, fanouts, seed=seed)
    losses = []
    for b in range(int(np.ceil(len(node_ids) / batch_size))):
        batch = node_ids[b * batch_size: (b + 1) * batch_size]
        minibatch = sampler.sample(batch, labels=dataset.labels)
        feats = dataset.features[minibatch.input_global]
        logits = model.forward(minibatch.blocks, feats)
        loss, _ = cross_entropy(logits, minibatch.labels)
        losses.append(loss)
    return float(np.mean(losses)) if losses else 0.0


def majority_class_accuracy(dataset: GraphDataset, node_ids: np.ndarray) -> float:
    """Accuracy of always predicting the most frequent class (a learning floor)."""
    node_ids = check_1d_int_array(node_ids, "node_ids", max_value=dataset.num_nodes)
    if len(node_ids) == 0:
        return 0.0
    labels = dataset.labels[node_ids]
    counts = np.bincount(labels, minlength=dataset.num_classes)
    majority = int(np.argmax(counts))
    return accuracy(np.full(len(labels), majority), labels)
