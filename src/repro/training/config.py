"""Run configuration for the training engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.validation import check_positive


@dataclass
class TrainConfig:
    """Hyperparameters of a training run (shared by both pipelines)."""

    epochs: int = 5
    arch: str = "sage"
    hidden_dim: int = 64
    num_layers: int = 2
    num_heads: int = 2            # GAT only; the paper uses 2 heads
    optimizer: str = "adam"
    learning_rate: float = 5e-3
    weight_decay: float = 0.0
    seed: int = 0
    evaluate: bool = False        # run sampled validation/test accuracy at the end
    eval_batch_size: int = 512
    max_steps_per_epoch: Optional[int] = None  # cap steps for quick tests/benchmarks

    def __post_init__(self) -> None:
        check_positive(self.epochs, "epochs")
        check_positive(self.hidden_dim, "hidden_dim")
        check_positive(self.num_layers, "num_layers")
        check_positive(self.num_heads, "num_heads")
        check_positive(self.learning_rate, "learning_rate")
        check_positive(self.eval_batch_size, "eval_batch_size")
        if self.arch not in ("sage", "graphsage", "gat"):
            raise ValueError(f"arch must be 'sage' or 'gat', got {self.arch!r}")
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError(f"optimizer must be 'sgd' or 'adam', got {self.optimizer!r}")
        if self.max_steps_per_epoch is not None:
            check_positive(self.max_steps_per_epoch, "max_steps_per_epoch")
