"""The distributed training engine.

The engine runs *pipelines*: every trainer gets a
:class:`~repro.sampling.pipeline.MiniBatchPipeline` (seed → sample →
fetch-feature → batch) and the engine's single loop consumes whatever the
pipelines yield.  The two data paths the paper compares are just two named
pipeline configurations (see :mod:`repro.training.pipelines`):

* **baseline** — the DistDGL path: halo features pulled over RPC every
  minibatch, accounted serially (Eq. 2);
* **prefetch** — the MassiveGNN path (Algorithm 1): halo features served by a
  per-trainer scored prefetch buffer, with preparation of the next minibatch
  overlapping DDP training on the current one (Eqs. 3–5).

Numerically, training is identical across pipelines — the same minibatches,
the same feature values, the same gradient averaging — so model accuracy is
unaffected by the data path (the paper's claim in Section V).  What differs
is the *simulated time* each pipeline's timing policy puts on the trainer
clocks, which is what the benchmark harnesses report.

The engine keeps a single model replica shared by all simulated trainers.
Under synchronous DDP every replica receives the same averaged gradient and
applies the same deterministic update, so one shared replica is numerically
equivalent to ``world_size`` identical replicas (the property is asserted in
the integration tests via :func:`repro.distributed.ddp.check_replicas_consistent`).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.config import PrefetchConfig
from repro.core.eviction import EvictionPolicy
from repro.distributed.clock import synchronize
from repro.distributed.cluster import SimCluster, TrainerContext
from repro.distributed.ddp import allreduce_gradients
from repro.distributed.rpc import merge_rpc_stats
from repro.nn import build_model, build_optimizer, cross_entropy
from repro.sampling.pipeline import MiniBatchPipeline, PipelineBatch
from repro.training.artifacts import TrainerArtifacts, collect_trainer_artifacts
from repro.training.config import TrainConfig
from repro.training.evaluate import evaluate_accuracy
from repro.training.pipelines import PIPELINES
from repro.training.telemetry import (
    ComponentAccumulator,
    EpochRecord,
    StepTiming,
    TrainingReport,
    merge_trainer_hit_trackers,
)
from repro.utils.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.cache.config import CacheConfig

PipelineBuilder = Callable[..., MiniBatchPipeline]


# --------------------------------------------------------------------------- #
# Shared step / update / report machinery
#
# The single-run :class:`TrainingEngine` and the scenario-driven
# :class:`~repro.training.cluster_engine.ClusterEngine` execute the same
# per-trainer step and produce the same :class:`TrainingReport`; keeping these
# as module functions is what lets the differential tests pin the two loops to
# bit-identical numerics.
# --------------------------------------------------------------------------- #
def train_step(
    cost_model,
    trainer: TrainerContext,
    batch: PipelineBatch,
    model,
    timing_policy,
    trainer_step: int,
) -> Tuple[StepTiming, float, int, int, Dict[str, np.ndarray]]:
    """One trainer's minibatch step: compute, gradients, and time accounting.

    ``cost_model`` is passed explicitly so heterogeneous clusters can charge
    different machines at different rates (straggler simulation) while the
    numerics stay identical.
    """
    cost = cost_model
    minibatch = batch.minibatch
    fetch = batch.fetch.merged

    timing = StepTiming(
        sampling=cost.time_sampling(minibatch.total_edges()),
        copy=fetch.copy_time_s,
        rpc=fetch.rpc_time_s,
        lookup=cost.time_lookup(fetch.lookup_nodes),
        scoring=cost.time_scoring(fetch.scoring_nodes),
        eviction=(
            cost.time_eviction(fetch.buffer_capacity, fetch.nodes_replaced)
            if fetch.eviction_round
            else 0.0
        ),
    )

    # ---------------- model compute ----------------
    logits = model.forward(minibatch.blocks, batch.features)
    loss, grad_logits = cross_entropy(logits, minibatch.labels)
    model.backward(grad_logits)
    grads = {name: grad.copy() for name, grad in model.gradients().items()}
    model.zero_grad()
    preds = np.argmax(logits, axis=1)
    n_correct = int(np.sum(preds == minibatch.labels))
    n_seen = int(len(minibatch.labels))
    timing.ddp = cost.time_compute(model.flops(minibatch))

    # ---------------- simulated time accounting ----------------
    # The pipeline's timing policy decides what is on the critical path
    # (Eq. 2 for the serial baseline; Eqs. 3–5 when preparation overlaps
    # training) — the engine itself has no notion of "modes".
    timing_policy.account(timing, trainer_step, trainer.clock)
    return timing, loss, n_correct, n_seen, grads


def apply_averaged_gradients(optimizer, model, averaged: Dict[str, np.ndarray]) -> bool:
    """Apply one synchronized DDP update; no-op when nobody contributed.

    When every trainer passed an empty gradient dict to
    :func:`~repro.distributed.ddp.allreduce_gradients` (all replicas joined
    with uneven inputs exhausted), the averaged dict is empty and the step
    must be skipped entirely — calling ``optimizer.step`` with it would raise
    a key-mismatch instead of honoring DDP's join semantics.
    """
    if not averaged:
        return False
    optimizer.step(model.parameters(), averaged)
    model.zero_grad()
    return True


def assemble_training_report(
    *,
    mode: str,
    cluster: SimCluster,
    train_config: TrainConfig,
    artifacts: List["TrainerArtifacts"],
    epoch_records: List[EpochRecord],
    init_reports: List[Dict[str, float]],
    total_minibatches: int,
    wall_clock_s: float,
    model,
    prefetch_config: Optional[PrefetchConfig],
) -> TrainingReport:
    """Assemble the :class:`TrainingReport` for one completed run.

    Shared by :class:`TrainingEngine` and the cluster engines so both produce
    reports with identical numerics from identical run state.  Per-trainer
    state arrives as :class:`~repro.training.artifacts.TrainerArtifacts`
    snapshots (in global-rank order) — plain data rather than live objects, so
    the process-pool execution backend can ship the same inputs across a
    process boundary and land on the same floats.
    """
    config = train_config
    cost_model = cluster.cost_model
    dataset = cluster.dataset
    num_params = model.num_parameters()
    accumulators = [a.accumulator for a in artifacts]
    total_time = max(a.clock_time for a in artifacts) if artifacts else 0.0
    breakdown_means = [acc.mean() for acc in accumulators]
    mean_breakdown: Dict[str, float] = {}
    for key in ComponentAccumulator.FIELDS:
        totals = [acc.totals[key] for acc in accumulators]
        mean_breakdown[key] = float(np.mean(totals)) if totals else 0.0
    overlapped = any(a.overlaps_preparation for a in artifacts)
    overlap = (
        float(np.mean([acc.overlap_efficiency() for acc in accumulators]))
        if overlapped and accumulators
        else 1.0
    )
    trackers = [a.hit_tracker for a in artifacts if a.hit_tracker is not None]
    buffer_nbytes = [
        a.prefetcher_buffer_nbytes
        for a in artifacts
        if a.prefetcher_buffer_nbytes is not None
    ]

    report = TrainingReport(
        mode=mode,
        backend=cost_model.backend,
        dataset=dataset.name,
        arch=config.arch,
        num_machines=cluster.config.num_machines,
        trainers_per_machine=cluster.config.trainers_per_machine,
        epochs=config.epochs,
        total_simulated_time_s=total_time,
        wall_clock_s=wall_clock_s,
        epoch_records=epoch_records,
        component_breakdown=mean_breakdown,
        per_trainer_breakdown=breakdown_means,
        rpc_stats=merge_rpc_stats([a.rpc_stats for a in artifacts]),
        hit_tracker=merge_trainer_hit_trackers(trackers) if trackers else None,
        per_trainer_hit_trackers=trackers,
        prefetch_init=init_reports,
        overlap_efficiency=overlap,
        final_train_accuracy=epoch_records[-1].train_accuracy if epoch_records else 0.0,
        num_minibatches=total_minibatches,
        config_description=prefetch_config.describe() if prefetch_config else mode,
    )
    if buffer_nbytes:
        report.extras["mean_buffer_nbytes"] = float(np.mean(buffer_nbytes))
        report.extras["mean_scoreboard_nbytes"] = float(
            np.mean(
                [
                    a.prefetcher_scoreboard_nbytes
                    for a in artifacts
                    if a.prefetcher_scoreboard_nbytes is not None
                ]
            )
        )
        report.extras["remote_nodes_fetched_prefetch"] = float(
            np.sum(
                [
                    a.prefetcher_remote_nodes_fetched
                    for a in artifacts
                    if a.prefetcher_remote_nodes_fetched is not None
                ]
            )
        )
    store_nbytes = [
        a.feature_store_nbytes for a in artifacts if a.feature_store_nbytes is not None
    ]
    if store_nbytes:
        report.extras["mean_feature_store_nbytes"] = float(np.mean(store_nbytes))

    if config.evaluate:
        report.val_accuracy = evaluate_accuracy(
            model,
            dataset,
            dataset.val_nids(),
            fanouts=cluster.config.fanouts,
            batch_size=config.eval_batch_size,
            seed=derive_seed(config.seed, 997),
        )
        report.test_accuracy = evaluate_accuracy(
            model,
            dataset,
            dataset.test_nids(),
            fanouts=cluster.config.fanouts,
            batch_size=config.eval_batch_size,
            seed=derive_seed(config.seed, 998),
        )
    report.extras["model_num_parameters"] = float(num_params)
    return report


class TrainingEngine:
    """Runs any registered minibatch pipeline on a :class:`SimCluster`."""

    def __init__(self, cluster: SimCluster, train_config: TrainConfig):
        self.cluster = cluster
        self.config = train_config
        self.cost_model = cluster.cost_model
        self.dataset = cluster.dataset

    # ------------------------------------------------------------------ #
    # Public entry points
    # ------------------------------------------------------------------ #
    def run_baseline(self) -> TrainingReport:
        """Train with the DistDGL-style data path (no prefetching)."""
        return self.run_pipeline("baseline")

    def run_prefetch(
        self,
        prefetch_config: PrefetchConfig,
        eviction_policy: Optional[EvictionPolicy] = None,
    ) -> TrainingReport:
        """Train with the MassiveGNN prefetch-and-eviction data path."""
        if prefetch_config is None:
            raise ValueError("prefetch mode requires a PrefetchConfig")
        return self.run_pipeline(
            "prefetch", prefetch_config=prefetch_config, eviction_policy=eviction_policy
        )

    def run_pipeline(
        self,
        pipeline: Union[str, PipelineBuilder] = "baseline",
        prefetch_config: Optional[PrefetchConfig] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        cache_config: Optional["CacheConfig"] = None,
    ) -> TrainingReport:
        """Train with a named (or custom-built) minibatch pipeline.

        ``pipeline`` is either a name registered in
        :data:`repro.training.pipelines.PIPELINES` or a builder callable with
        the same ``(trainer, cluster, prefetch_config=..., eviction_policy=...)``
        signature returning one :class:`MiniBatchPipeline` per trainer.
        ``cache_config`` parameterizes the tiered cache sources and is only
        forwarded when set, so custom builders with the historical signature
        keep working.
        """
        if isinstance(pipeline, str):
            name: Optional[str] = PIPELINES.resolve(pipeline)
            builder: PipelineBuilder = PIPELINES.get(pipeline)
        else:
            name = None
            builder = pipeline
        return self._run(
            builder=builder,
            pipeline_name=name,
            prefetch_config=prefetch_config,
            eviction_policy=eviction_policy,
            cache_config=cache_config,
        )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def _run(
        self,
        builder: PipelineBuilder,
        pipeline_name: Optional[str],
        prefetch_config: Optional[PrefetchConfig],
        eviction_policy: Optional[EvictionPolicy] = None,
        cache_config: Optional["CacheConfig"] = None,
    ) -> TrainingReport:
        wall_start = time.perf_counter()
        cluster, config = self.cluster, self.config
        cluster.reset()

        model = build_model(
            config.arch,
            in_dim=self.dataset.feature_dim,
            hidden_dim=config.hidden_dim,
            num_classes=self.dataset.num_classes,
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            seed=derive_seed(config.seed, 401),
        )
        optimizer = build_optimizer(
            config.optimizer, lr=config.learning_rate, weight_decay=config.weight_decay
        )
        num_params = model.num_parameters()
        trainers = cluster.trainers
        world = len(trainers)

        # Build one pipeline per trainer; sources that prefetch at init (the
        # one-time RPC of Algorithm 1) charge that cost to the trainer clock
        # before the first minibatch.  cache_config is only forwarded when
        # set so custom builders with the historical signature keep working.
        builder_kwargs = {
            "prefetch_config": prefetch_config,
            "eviction_policy": eviction_policy,
        }
        if cache_config is not None:
            builder_kwargs["cache_config"] = cache_config
        pipelines: List[MiniBatchPipeline] = [
            builder(trainer, cluster, **builder_kwargs) for trainer in trainers
        ]
        mode = pipeline_name or (pipelines[0].name if pipelines else "pipeline")
        init_reports: List[Dict[str, float]] = []
        for trainer, pl in zip(trainers, pipelines):
            if pl.init_report is not None:
                trainer.clock.advance(pl.init_time_s, "init")
                init_reports.append(dict(pl.init_report))

        accumulators = [ComponentAccumulator() for _ in range(world)]
        trainer_steps = [0] * world      # lifetime step counter per trainer (drives Δ and Eq. 4)
        total_minibatches = 0
        global_step = 0                  # monotone step id driving RPC coalescing windows
        epoch_records: List[EpochRecord] = []
        previous_epoch_end = max(t.clock.time for t in trainers) if trainers else 0.0

        for epoch in range(config.epochs):
            iterators = [iter(pl.epoch()) for pl in pipelines]
            active = [True] * world
            losses: List[float] = []
            correct = 0
            seen = 0
            steps_this_epoch = 0

            while any(active):
                if (
                    config.max_steps_per_epoch is not None
                    and steps_this_epoch >= config.max_steps_per_epoch
                ):
                    break
                # Open this step's RPC coalescing window (no-op on per-call
                # channels); every trainer's fetches below share it.
                for trainer in trainers:
                    trainer.rpc.begin_step(global_step)
                global_step += 1
                step_grads: List[Dict[str, np.ndarray]] = []
                participated: List[int] = []
                for i, trainer in enumerate(trainers):
                    if not active[i]:
                        continue
                    try:
                        batch = next(iterators[i])
                    except StopIteration:
                        active[i] = False
                        continue
                    timing, loss, n_correct, n_seen, grads = self._train_step(
                        trainer=trainer,
                        batch=batch,
                        model=model,
                        timing_policy=pipelines[i].timing,
                        trainer_step=trainer_steps[i],
                    )
                    trainer_steps[i] += 1
                    total_minibatches += 1
                    accumulators[i].add(timing)
                    losses.append(loss)
                    correct += n_correct
                    seen += n_seen
                    step_grads.append(grads)
                    participated.append(i)

                if not step_grads:
                    break
                averaged = allreduce_gradients(step_grads)
                allreduce_t = self.cost_model.time_allreduce(num_params, world)
                for i in participated:
                    trainers[i].clock.advance(allreduce_t, "allreduce")
                    accumulators[i].totals["allreduce"] += allreduce_t
                synchronize([t.clock for t in trainers])
                apply_averaged_gradients(optimizer, model, averaged)
                steps_this_epoch += 1

            epoch_end = max(t.clock.time for t in trainers) if trainers else 0.0
            hit_rates = [pl.hit_rate for pl in pipelines if pl.hit_rate is not None]
            epoch_records.append(
                EpochRecord(
                    epoch=epoch,
                    simulated_time_s=epoch_end - previous_epoch_end,
                    loss=float(np.mean(losses)) if losses else 0.0,
                    train_accuracy=correct / seen if seen else 0.0,
                    hit_rate=float(np.mean(hit_rates)) if hit_rates else None,
                )
            )
            previous_epoch_end = epoch_end
            for pl in pipelines:
                if pl.feature_store is not None:
                    pl.feature_store.end_epoch()

        report = assemble_training_report(
            mode=mode,
            cluster=cluster,
            train_config=config,
            artifacts=collect_trainer_artifacts(cluster, pipelines, accumulators),
            epoch_records=epoch_records,
            init_reports=init_reports,
            total_minibatches=total_minibatches,
            wall_clock_s=time.perf_counter() - wall_start,
            model=model,
            prefetch_config=prefetch_config,
        )
        self._final_model = model
        return report

    # ------------------------------------------------------------------ #
    # Per-trainer step
    # ------------------------------------------------------------------ #
    def _train_step(
        self,
        trainer: TrainerContext,
        batch: PipelineBatch,
        model,
        timing_policy,
        trainer_step: int,
    ) -> Tuple[StepTiming, float, int, int, Dict[str, np.ndarray]]:
        return train_step(self.cost_model, trainer, batch, model, timing_policy, trainer_step)

    # ------------------------------------------------------------------ #
    @property
    def final_model(self):
        """The trained model from the most recent run (for evaluation/examples)."""
        model = getattr(self, "_final_model", None)
        if model is None:
            raise RuntimeError("no training run has completed yet")
        return model
