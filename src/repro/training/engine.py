"""The distributed training engine.

This module runs both pipelines the paper compares:

* **baseline** — the DistDGL data path: every minibatch samples neighbors,
  pulls locally owned features from the co-located KVStore, pulls every halo
  node's features over RPC, and only then trains (Eq. 2);
* **prefetch** — the MassiveGNN data path (Algorithm 1): a per-trainer
  :class:`~repro.core.prefetcher.Prefetcher` serves halo nodes from its buffer,
  fetches only the misses over RPC, maintains the scoreboards, and the whole
  preparation of the next minibatch overlaps with DDP training on the current
  one (Eqs. 3–5).

Numerically, training is identical in both modes — the same minibatches, the
same feature values, the same gradient averaging — so model accuracy is
unaffected by prefetching (the paper's claim in Section V).  What differs is
the *simulated time* accounted on each trainer's clock, which is what the
benchmark harnesses report.

The engine keeps a single model replica shared by all simulated trainers.
Under synchronous DDP every replica receives the same averaged gradient and
applies the same deterministic update, so one shared replica is numerically
equivalent to ``world_size`` identical replicas (the property is asserted in
the integration tests via :func:`repro.distributed.ddp.check_replicas_consistent`).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import PrefetchConfig
from repro.core.eviction import EvictionPolicy
from repro.core.prefetcher import Prefetcher
from repro.distributed.clock import synchronize
from repro.distributed.cluster import SimCluster, TrainerContext
from repro.distributed.ddp import allreduce_gradients, gradient_num_elements
from repro.distributed.rpc import aggregate_rpc_stats
from repro.nn import build_model, build_optimizer, cross_entropy
from repro.sampling.block import MiniBatch
from repro.sampling.neighbor_sampler import split_local_halo
from repro.training.config import TrainConfig
from repro.training.evaluate import evaluate_accuracy
from repro.training.telemetry import (
    ComponentAccumulator,
    EpochRecord,
    StepTiming,
    TrainingReport,
    merge_trainer_hit_trackers,
)
from repro.utils.rng import derive_seed


class TrainingEngine:
    """Runs baseline or prefetch-enabled training on a :class:`SimCluster`."""

    def __init__(self, cluster: SimCluster, train_config: TrainConfig):
        self.cluster = cluster
        self.config = train_config
        self.cost_model = cluster.cost_model
        self.dataset = cluster.dataset

    # ------------------------------------------------------------------ #
    # Public entry points
    # ------------------------------------------------------------------ #
    def run_baseline(self) -> TrainingReport:
        """Train with the DistDGL-style data path (no prefetching)."""
        return self._run(mode="baseline", prefetch_config=None)

    def run_prefetch(
        self,
        prefetch_config: PrefetchConfig,
        eviction_policy: Optional[EvictionPolicy] = None,
    ) -> TrainingReport:
        """Train with the MassiveGNN prefetch-and-eviction data path."""
        return self._run(
            mode="prefetch", prefetch_config=prefetch_config, eviction_policy=eviction_policy
        )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def _run(
        self,
        mode: str,
        prefetch_config: Optional[PrefetchConfig],
        eviction_policy: Optional[EvictionPolicy] = None,
    ) -> TrainingReport:
        wall_start = time.perf_counter()
        cluster, config = self.cluster, self.config
        cluster.reset()

        model = build_model(
            config.arch,
            in_dim=self.dataset.feature_dim,
            hidden_dim=config.hidden_dim,
            num_classes=self.dataset.num_classes,
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            seed=derive_seed(config.seed, 401),
        )
        optimizer = build_optimizer(
            config.optimizer, lr=config.learning_rate, weight_decay=config.weight_decay
        )
        num_params = model.num_parameters()
        trainers = cluster.trainers
        world = len(trainers)

        prefetchers: List[Optional[Prefetcher]] = [None] * world
        init_reports: List[Dict[str, float]] = []
        if mode == "prefetch":
            if prefetch_config is None:
                raise ValueError("prefetch mode requires a PrefetchConfig")
            for i, trainer in enumerate(trainers):
                prefetcher = Prefetcher(
                    partition=trainer.partition,
                    config=prefetch_config,
                    rpc=trainer.rpc,
                    num_global_nodes=self.dataset.num_nodes,
                    eviction_policy=eviction_policy,
                )
                report = prefetcher.initialize()
                trainer.clock.advance(report.rpc_time_s, "init")
                prefetchers[i] = prefetcher
                init_reports.append(report.as_dict())

        accumulators = [ComponentAccumulator() for _ in range(world)]
        trainer_steps = [0] * world      # lifetime step counter per trainer (drives Δ and Eq. 4)
        total_minibatches = 0
        epoch_records: List[EpochRecord] = []
        previous_epoch_end = max(t.clock.time for t in trainers) if trainers else 0.0

        for epoch in range(config.epochs):
            iterators = [iter(t.dataloader.epoch()) for t in trainers]
            active = [True] * world
            losses: List[float] = []
            correct = 0
            seen = 0
            steps_this_epoch = 0

            while any(active):
                if (
                    config.max_steps_per_epoch is not None
                    and steps_this_epoch >= config.max_steps_per_epoch
                ):
                    break
                step_grads: List[Dict[str, np.ndarray]] = []
                participated: List[int] = []
                for i, trainer in enumerate(trainers):
                    if not active[i]:
                        continue
                    try:
                        minibatch = next(iterators[i])
                    except StopIteration:
                        active[i] = False
                        continue
                    timing, loss, n_correct, n_seen, grads = self._train_step(
                        trainer=trainer,
                        minibatch=minibatch,
                        model=model,
                        mode=mode,
                        prefetcher=prefetchers[i],
                        trainer_step=trainer_steps[i],
                    )
                    trainer_steps[i] += 1
                    total_minibatches += 1
                    accumulators[i].add(timing)
                    losses.append(loss)
                    correct += n_correct
                    seen += n_seen
                    step_grads.append(grads)
                    participated.append(i)

                if not step_grads:
                    break
                averaged = allreduce_gradients(step_grads)
                allreduce_t = self.cost_model.time_allreduce(num_params, world)
                for i in participated:
                    trainers[i].clock.advance(allreduce_t, "allreduce")
                    accumulators[i].totals["allreduce"] += allreduce_t
                synchronize([t.clock for t in trainers])
                optimizer.step(model.parameters(), averaged)
                model.zero_grad()
                steps_this_epoch += 1

            epoch_end = max(t.clock.time for t in trainers) if trainers else 0.0
            epoch_records.append(
                EpochRecord(
                    epoch=epoch,
                    simulated_time_s=epoch_end - previous_epoch_end,
                    loss=float(np.mean(losses)) if losses else 0.0,
                    train_accuracy=correct / seen if seen else 0.0,
                    hit_rate=(
                        float(
                            np.mean(
                                [p.hit_rate for p in prefetchers if p is not None]
                            )
                        )
                        if mode == "prefetch"
                        else None
                    ),
                )
            )
            previous_epoch_end = epoch_end

        # ------------------------------------------------------------------ #
        # Assemble the report
        # ------------------------------------------------------------------ #
        total_time = max(t.clock.time for t in trainers) if trainers else 0.0
        breakdown_means = [acc.mean() for acc in accumulators]
        mean_breakdown: Dict[str, float] = {}
        for key in ComponentAccumulator.FIELDS:
            totals = [acc.totals[key] for acc in accumulators]
            mean_breakdown[key] = float(np.mean(totals)) if totals else 0.0
        overlap = (
            float(np.mean([acc.overlap_efficiency() for acc in accumulators]))
            if mode == "prefetch" and accumulators
            else 1.0
        )

        report = TrainingReport(
            mode=mode,
            backend=self.cost_model.backend,
            dataset=self.dataset.name,
            arch=config.arch,
            num_machines=cluster.config.num_machines,
            trainers_per_machine=cluster.config.trainers_per_machine,
            epochs=config.epochs,
            total_simulated_time_s=total_time,
            wall_clock_s=time.perf_counter() - wall_start,
            epoch_records=epoch_records,
            component_breakdown=mean_breakdown,
            per_trainer_breakdown=breakdown_means,
            rpc_stats=aggregate_rpc_stats([t.rpc for t in trainers]),
            hit_tracker=(
                merge_trainer_hit_trackers([p.tracker for p in prefetchers if p is not None])
                if mode == "prefetch"
                else None
            ),
            per_trainer_hit_trackers=(
                [p.tracker for p in prefetchers if p is not None] if mode == "prefetch" else []
            ),
            prefetch_init=init_reports,
            overlap_efficiency=overlap,
            final_train_accuracy=epoch_records[-1].train_accuracy if epoch_records else 0.0,
            num_minibatches=total_minibatches,
            config_description=prefetch_config.describe() if prefetch_config else "baseline",
        )
        if mode == "prefetch":
            report.extras["mean_buffer_nbytes"] = float(
                np.mean([p.buffer_nbytes() for p in prefetchers if p is not None])
            )
            report.extras["mean_scoreboard_nbytes"] = float(
                np.mean([p.scoreboard_nbytes() for p in prefetchers if p is not None])
            )
            report.extras["remote_nodes_fetched_prefetch"] = float(
                np.sum([p.counters.remote_nodes_fetched for p in prefetchers if p is not None])
            )

        if config.evaluate:
            report.val_accuracy = evaluate_accuracy(
                model,
                self.dataset,
                self.dataset.val_nids(),
                fanouts=cluster.config.fanouts,
                batch_size=config.eval_batch_size,
                seed=derive_seed(config.seed, 997),
            )
            report.test_accuracy = evaluate_accuracy(
                model,
                self.dataset,
                self.dataset.test_nids(),
                fanouts=cluster.config.fanouts,
                batch_size=config.eval_batch_size,
                seed=derive_seed(config.seed, 998),
            )
        report.extras["model_num_parameters"] = float(num_params)
        self._final_model = model
        return report

    # ------------------------------------------------------------------ #
    # Per-trainer step
    # ------------------------------------------------------------------ #
    def _train_step(
        self,
        trainer: TrainerContext,
        minibatch: MiniBatch,
        model,
        mode: str,
        prefetcher: Optional[Prefetcher],
        trainer_step: int,
    ) -> Tuple[StepTiming, float, int, int, Dict[str, np.ndarray]]:
        cost = self.cost_model
        partition = trainer.partition
        local_ids, halo_ids, local_rows, halo_rows = split_local_halo(partition, minibatch)

        t_sampling = cost.time_sampling(minibatch.total_edges())
        features = np.zeros(
            (minibatch.num_input_nodes, self.dataset.feature_dim), dtype=np.float32
        )
        local_feats, t_copy = trainer.rpc.local_pull(local_ids)
        features[local_rows] = local_feats

        timing = StepTiming(sampling=t_sampling, copy=t_copy)

        if mode == "baseline":
            owners = self.cluster.book.owner(halo_ids) if len(halo_ids) else np.zeros(0, dtype=np.int64)
            halo_feats, t_rpc, _ = trainer.rpc.remote_pull(halo_ids, owners)
            features[halo_rows] = halo_feats
            timing.rpc = t_rpc
        else:
            result = prefetcher.process_minibatch(halo_ids, step=trainer_step)
            features[halo_rows] = result.features
            timing.rpc = result.rpc_time_s
            timing.lookup = cost.time_lookup(result.lookup_nodes)
            timing.scoring = cost.time_scoring(result.scoring_nodes)
            if result.eviction_round:
                timing.eviction = cost.time_eviction(
                    result.buffer_capacity, result.nodes_replaced
                )

        # ---------------- model compute ----------------
        logits = model.forward(minibatch.blocks, features)
        loss, grad_logits = cross_entropy(logits, minibatch.labels)
        model.backward(grad_logits)
        grads = {name: grad.copy() for name, grad in model.gradients().items()}
        model.zero_grad()
        preds = np.argmax(logits, axis=1)
        n_correct = int(np.sum(preds == minibatch.labels))
        n_seen = int(len(minibatch.labels))
        timing.ddp = cost.time_compute(model.flops(minibatch))

        # ---------------- simulated time accounting ----------------
        if mode == "baseline":
            # Eq. 2: sampling + max(rpc, copy) + ddp; rpc beyond the local copy
            # is the communication stall (Eq. 9).
            critical = timing.sampling + max(timing.rpc, timing.copy) + timing.ddp
            trainer.clock.advance(timing.sampling, "sampling")
            trainer.clock.advance(timing.copy, "copy")
            trainer.clock.advance(max(0.0, timing.rpc - timing.copy), "rpc")
            trainer.clock.advance(timing.ddp, "ddp")
            timing.prepare = 0.0
            timing.hidden = 0.0
        else:
            # Eq. 3: preparation of the next minibatch; scoreboard maintenance
            # overlaps with the RPC fetch of missed nodes.
            prepare = (
                timing.sampling
                + timing.lookup
                + max(timing.scoring + timing.eviction, max(timing.rpc, timing.copy))
            )
            timing.prepare = prepare
            if trainer_step == 0:
                # Eq. 4: the very first minibatch cannot reuse a prefetched batch.
                critical = prepare + max(prepare, timing.ddp)
                timing.hidden = min(prepare, timing.ddp)
            else:
                # Eq. 5: steady state — preparation overlaps DDP training.
                critical = max(prepare, timing.ddp)
                timing.hidden = min(prepare, timing.ddp)
            trainer.clock.advance(timing.ddp, "ddp")
            trainer.clock.advance(max(0.0, critical - timing.ddp), "stall")

        timing.critical_path = critical
        return timing, loss, n_correct, n_seen, grads

    # ------------------------------------------------------------------ #
    @property
    def final_model(self):
        """The trained model from the most recent run (for evaluation/examples)."""
        model = getattr(self, "_final_model", None)
        if model is None:
            raise RuntimeError("no training run has completed yet")
        return model
