"""Execution backends: the seam between cluster engines and trainer compute.

Both cluster engines (the lockstep :class:`~repro.training.cluster_engine.
ClusterEngine` and the event-driven :class:`~repro.training.async_engine.
AsyncClusterEngine`) decide *which* trainers step *when*; an execution backend
from :data:`EXECUTION_BACKENDS` decides *where* those steps run:

* ``inline`` (the default) steps trainers serially in the engine process —
  byte-for-byte the historical behaviour;
* ``process-pool`` steps trainers in parallel worker processes over a
  shared-memory (memmap) export of the graph/feature stores, merging results
  deterministically in ascending global-rank order at every sync point, so
  reports are **bit-identical** to ``inline`` (pinned by
  ``tests/test_execution_backends.py``).

The seam is :meth:`ExecutionBackend.run_steps`: the engine hands over a
rank-ordered list of ``(rank, round_id)`` step requests plus callbacks, and
the backend guarantees the callbacks fire in exactly the order the inline
serial loop would fire them.  Worker granularity is **whole machines**, never
individual trainers: a machine's trainers share mutable state (the batched-RPC
coalescing window, the machine-shared cache tier), so each worker owns one or
more machines and steps their trainers in rank order intra-process.

Determinism of the process pool rests on four mechanisms:

* **replicated models** — parent and every worker build the same model and
  optimizer from the same derived seed; identical averaged-gradient sequences
  (forwarded as ``("apply", averaged)`` ops) keep the replicas bit-identical,
  the same replica-equivalence property synchronous DDP itself relies on;
* **mirror clocks** — the parent swaps each trainer's clock for a recording
  mirror; sync-point advances (allreduce, stall, downtime) are replayed on the
  worker's real clock before that trainer's next compute, and worker-reported
  post-step times are adopted back, so both sides perform the identical float
  sequence;
* **two-phase async steps** — a batch is first *prepared* (RPC window +
  iterator advance; model-independent), which reveals exhaustion; the parent
  then walks ranks serially, fires exhaustion callbacks at their serial
  points, and dispatches the contiguous non-exhausted groups as parallel
  computes with any queued ops flushed first;
* **allreduce shadow accumulators** — sync-point allreduce charges land on
  parent-side accumulators whose totals are grafted onto the worker-collected
  artifacts at the end (exact, because worker step timings carry 0.0 there).
"""

from __future__ import annotations

import multiprocessing as mp
import shutil
import tempfile
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache.config import CacheConfig
from repro.core.config import PrefetchConfig
from repro.core.eviction import EvictionPolicy
from repro.distributed.clock import SimClock
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.cost_model import CostModel
from repro.features.shared import (
    SharedDatasetHandle,
    export_shared_dataset,
    load_shared_dataset,
)
from repro.nn import build_model, build_optimizer
from repro.training.artifacts import (
    TrainerArtifacts,
    collect_trainer_artifacts,
    trainer_artifacts,
)
from repro.training.config import TrainConfig
from repro.training.engine import (
    PipelineBuilder,
    apply_averaged_gradients,
    train_step,
)
from repro.training.pipelines import PIPELINES
from repro.training.telemetry import ComponentAccumulator
from repro.utils.registry import Registry
from repro.utils.rng import derive_seed, spawn_worker_seed

EXECUTION_BACKENDS = Registry("execution backend")

#: A step request: (global rank, RPC coalescing round id).
StepRequest = Tuple[int, int]


@dataclass
class StepOutcome:
    """One completed trainer step, as plain pickle-safe data.

    ``clock_time`` is the trainer's simulated clock *after* the step — the
    value the engine timestamps completion events with, and (for the pool
    backend) the value the parent-side mirror clock adopts.
    """

    rank: int
    loss: float
    n_correct: int
    n_seen: int
    grads: Dict[str, np.ndarray]
    critical_path: float
    clock_time: float


@dataclass(frozen=True)
class TrainerTask:
    """Everything one pool worker needs, as a pickle-safe spec.

    Carries configs, registry names, and a :class:`~repro.features.shared.
    SharedDatasetHandle` — never live objects — so worker processes can be
    started with the ``spawn`` method on platforms without ``fork``.
    """

    worker_index: int
    num_workers: int
    machines: Tuple[int, ...]
    ranks: Tuple[int, ...]
    cluster_config: ClusterConfig
    train_config: TrainConfig
    pipeline: str
    prefetch_config: Optional[PrefetchConfig]
    cache_config: Optional[CacheConfig]
    cost_model: CostModel
    dataset: SharedDatasetHandle
    # Worker-process RNG seed via SeedSequence.spawn (hygiene for any
    # global-RNG consumer; nothing on the deterministic path reads it).
    worker_seed: int


class ExecutionBackend:
    """Contract between a cluster engine and its step executor.

    ``run_steps`` receives *requests* in ascending global-rank order and must
    invoke the callbacks exactly as the inline serial loop would: for each
    rank in order, either ``on_exhausted(rank)`` (iterator finished) or
    ``before_step(rank)`` followed — after the compute — by
    ``on_outcome(StepOutcome)``.  ``begin_step_all`` (lockstep) opens the
    round's RPC window on *every* trainer before any compute; otherwise each
    request's own round id is opened just before its iterator advances.
    """

    name = "execution-backend"
    #: Whether sync policies that own per-trainer replicas (mutating the
    #: shared model around every step) can run on this backend.
    supports_replica_policies = False

    def prepare(
        self,
        pipeline: Union[str, PipelineBuilder],
        prefetch_config: Optional[PrefetchConfig],
        eviction_policy: Optional[EvictionPolicy],
        cache_config: Optional[CacheConfig],
    ) -> "ClusterRunSetup":  # noqa: F821 - forward ref to cluster_engine
        """Build model/optimizer/pipelines; returns the engine-facing setup."""
        raise NotImplementedError  # pragma: no cover

    def begin_epoch(self) -> None:
        """Open fresh epoch iterators on every trainer's pipeline."""
        raise NotImplementedError  # pragma: no cover

    def run_steps(
        self,
        requests: Sequence[StepRequest],
        *,
        begin_step_all: Optional[int] = None,
        before_step: Optional[Callable[[int], None]] = None,
        on_outcome: Optional[Callable[[StepOutcome], None]] = None,
        on_exhausted: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Execute the requested steps, firing callbacks in serial order."""
        raise NotImplementedError  # pragma: no cover

    def apply_update(self, averaged: Dict[str, np.ndarray]) -> bool:
        """Apply an averaged gradient to the model (and any replicas)."""
        raise NotImplementedError  # pragma: no cover

    def epoch_hit_rates(self) -> List[Optional[float]]:
        """Per-rank pipeline hit rate at the current epoch boundary."""
        raise NotImplementedError  # pragma: no cover

    def end_epoch(self) -> None:
        """Epoch rollover on every pipeline's feature store."""
        raise NotImplementedError  # pragma: no cover

    def collect_artifacts(self) -> List[TrainerArtifacts]:
        """End-of-run per-trainer telemetry snapshots, in rank order."""
        raise NotImplementedError  # pragma: no cover

    def close(self) -> None:
        """Release backend resources (worker processes, exports, mirrors)."""

    def describe(self) -> str:
        """Human-readable backend identity for run headers and reports."""
        return self.name


# --------------------------------------------------------------------------- #
# inline: serial in-process execution (the historical loop, verbatim)
# --------------------------------------------------------------------------- #
@EXECUTION_BACKENDS.register("inline", aliases=("serial",))
class InlineExecutionBackend(ExecutionBackend):
    """Step trainers serially in the engine process (default backend)."""

    name = "inline"
    supports_replica_policies = True

    def __init__(
        self,
        cluster: SimCluster,
        train_config: TrainConfig,
        workers: Optional[int] = None,
    ):
        if workers is not None:
            raise ValueError(
                "the inline execution backend runs in-process; a worker count "
                "only applies to the 'process-pool' backend"
            )
        self.cluster = cluster
        self.config = train_config
        self.setup = None
        self._iterators: List[object] = []
        self._steps: List[int] = []

    def prepare(self, pipeline, prefetch_config, eviction_policy, cache_config):
        from repro.training.cluster_engine import prepare_cluster_run

        self.setup = prepare_cluster_run(
            self.cluster, self.config, pipeline,
            prefetch_config, eviction_policy, cache_config,
        )
        self._steps = [0] * len(self.cluster.trainers)
        return self.setup

    def begin_epoch(self) -> None:
        self._iterators = [iter(pl.epoch()) for pl in self.setup.pipelines]

    def run_steps(self, requests, *, begin_step_all=None, before_step=None,
                  on_outcome=None, on_exhausted=None):
        trainers = self.cluster.trainers
        setup = self.setup
        if begin_step_all is not None:
            # Lockstep semantics: every trainer's window opens for the round,
            # active or not (same-machine trainers share the window).
            for trainer in trainers:
                trainer.rpc.begin_step(begin_step_all)
        for rank, round_id in requests:
            trainer = trainers[rank]
            if begin_step_all is None:
                trainer.rpc.begin_step(round_id)
            try:
                batch = next(self._iterators[rank])
            except StopIteration:
                if on_exhausted is not None:
                    on_exhausted(rank)
                continue
            if before_step is not None:
                before_step(rank)
            timing, loss, n_correct, n_seen, grads = train_step(
                setup.cost_models[rank],
                trainer,
                batch,
                setup.model,
                setup.pipelines[rank].timing,
                self._steps[rank],
            )
            self._steps[rank] += 1
            setup.accumulators[rank].add(timing)
            if on_outcome is not None:
                on_outcome(
                    StepOutcome(
                        rank=rank,
                        loss=loss,
                        n_correct=n_correct,
                        n_seen=n_seen,
                        grads=grads,
                        critical_path=timing.critical_path,
                        clock_time=trainer.clock.time,
                    )
                )

    def apply_update(self, averaged) -> bool:
        return apply_averaged_gradients(self.setup.optimizer, self.setup.model, averaged)

    def epoch_hit_rates(self):
        return [pl.hit_rate for pl in self.setup.pipelines]

    def end_epoch(self) -> None:
        for pl in self.setup.pipelines:
            if pl.feature_store is not None:
                pl.feature_store.end_epoch()

    def collect_artifacts(self):
        return collect_trainer_artifacts(
            self.cluster, self.setup.pipelines, self.setup.accumulators
        )


# --------------------------------------------------------------------------- #
# process-pool: machine-granularity worker processes over shared memory
# --------------------------------------------------------------------------- #
class _MirrorClock(SimClock):
    """Parent-side stand-in for a worker-owned trainer clock.

    Engine/policy advances (allreduce, stall, downtime) are applied locally
    *and* recorded on :attr:`pending` for replay on the worker's real clock;
    :meth:`adopt` takes over the worker-reported post-step time without
    recording.  Both sides thereby perform the identical float-addition
    sequence, which is what keeps clock totals and breakdowns bit-identical
    to the inline backend.
    """

    def __init__(self) -> None:
        super().__init__()
        self.pending: List[Tuple[float, str]] = []

    def advance(self, seconds: float, component: str = "other") -> float:
        result = super().advance(seconds, component)
        self.pending.append((float(seconds), str(component)))
        return result

    def adopt(self, timestamp: float) -> None:
        """Adopt a worker-reported clock time (already advanced worker-side)."""
        self.time = float(timestamp)


@EXECUTION_BACKENDS.register("process-pool", aliases=("pool", "mp"))
class ProcessPoolExecutionBackend(ExecutionBackend):
    """Step trainers in parallel worker processes, bit-identical to inline.

    Workers are allocated whole machines (contiguous split); requesting more
    workers than machines clamps to one worker per machine.  The default
    start method is ``fork`` where available (cheapest), falling back to
    ``spawn``; ``start_method`` forces one, and the pickle-safe
    :class:`TrainerTask` spec is what makes ``spawn`` work everywhere.
    """

    name = "process-pool"

    def __init__(
        self,
        cluster: SimCluster,
        train_config: TrainConfig,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        num_machines = cluster.config.num_machines
        if workers is None:
            workers = num_machines
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = min(workers, num_machines)
        self.cluster = cluster
        self.config = train_config
        self.start_method = start_method
        self.setup = None
        self._conns: List[object] = []
        self._procs: List[object] = []
        self._op_queues: List[List[tuple]] = []
        self._worker_ranks: List[Tuple[int, ...]] = []
        self._rank_worker: Dict[int, int] = {}
        self._mirrors: Dict[int, _MirrorClock] = {}
        self._saved_clocks: Dict[int, SimClock] = {}
        self._shadow: List[ComponentAccumulator] = []
        self._tmpdir: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Setup / teardown
    # ------------------------------------------------------------------ #
    def _resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        return "fork" if "fork" in mp.get_all_start_methods() else "spawn"

    def prepare(self, pipeline, prefetch_config, eviction_policy, cache_config):
        from repro.training.cluster_engine import ClusterRunSetup

        if not isinstance(pipeline, str):
            raise ValueError(
                "the process-pool backend needs a registry pipeline name; "
                "a callable builder cannot cross process boundaries "
                "(use the inline backend for custom builders)"
            )
        if eviction_policy is not None:
            raise ValueError(
                "the process-pool backend cannot ship a live eviction-policy "
                "object to workers; select the policy by name through "
                "PrefetchConfig, or use the inline backend"
            )
        mode = PIPELINES.resolve(pipeline)
        wall_start = time.perf_counter()
        cluster, config = self.cluster, self.config
        cluster.reset()
        model = build_model(
            config.arch,
            in_dim=cluster.dataset.feature_dim,
            hidden_dim=config.hidden_dim,
            num_classes=cluster.dataset.num_classes,
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            seed=derive_seed(config.seed, 401),
        )
        optimizer = build_optimizer(
            config.optimizer, lr=config.learning_rate, weight_decay=config.weight_decay
        )

        # One memmap export shared by every worker (read-only pages).
        self._tmpdir = tempfile.mkdtemp(prefix="repro-pool-")
        payloads = {
            part_id: store.shared_arrays()
            for part_id, store in cluster.servers.items()
        }
        handle = export_shared_dataset(
            cluster.dataset, cluster.partition_result, payloads, self._tmpdir
        )

        ctx = mp.get_context(self._resolved_start_method())
        tpm = cluster.config.trainers_per_machine
        chunks = np.array_split(np.arange(cluster.config.num_machines), self.workers)
        for w, chunk in enumerate(chunks):
            machines = tuple(int(m) for m in chunk)
            ranks = tuple(
                r for m in machines for r in range(m * tpm, (m + 1) * tpm)
            )
            task = TrainerTask(
                worker_index=w,
                num_workers=self.workers,
                machines=machines,
                ranks=ranks,
                cluster_config=cluster.config,
                train_config=config,
                pipeline=mode,
                prefetch_config=prefetch_config,
                cache_config=cache_config,
                cost_model=cluster.cost_model,
                dataset=handle,
                worker_seed=spawn_worker_seed(cluster.config.seed, w),
            )
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child_conn, task), daemon=True)
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
            self._op_queues.append([])
            self._worker_ranks.append(ranks)
            for rank in ranks:
                self._rank_worker[rank] = w

        # Collect per-trainer init results (pipelines are built worker-side
        # only — that is where the setup wall-clock parallelism comes from).
        init_entries: Dict[int, Tuple[Optional[dict], float]] = {}
        for w in range(self.workers):
            for rank, init_report, clock_time in self._recv(w):
                init_entries[rank] = (init_report, clock_time)

        # Install mirror clocks over the (freshly reset) real clocks.
        for trainer in cluster.trainers:
            mirror = _MirrorClock()
            report, clock_time = init_entries[trainer.global_rank]
            mirror.adopt(clock_time)
            self._saved_clocks[trainer.global_rank] = trainer.clock
            trainer.clock = mirror
            self._mirrors[trainer.global_rank] = mirror
        init_reports = [
            dict(init_entries[t.global_rank][0])
            for t in cluster.trainers
            if init_entries[t.global_rank][0] is not None
        ]

        self._shadow = [ComponentAccumulator() for _ in cluster.trainers]
        self.setup = ClusterRunSetup(
            model=model,
            optimizer=optimizer,
            num_params=model.num_parameters(),
            cost_models=[],
            pipelines=[],
            mode=mode,
            init_reports=init_reports,
            accumulators=self._shadow,
            wall_start=wall_start,
        )
        return self.setup

    def close(self) -> None:
        for w, conn in enumerate(self._conns):
            try:
                conn.send(("shutdown", self._drain_ops(w)))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - defensive teardown
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._conns, self._procs, self._op_queues = [], [], []
        for rank, clock in self._saved_clocks.items():
            self.cluster.trainers[rank].clock = clock
        self._saved_clocks, self._mirrors = {}, {}
        if self._tmpdir is not None:
            shutil.rmtree(self._tmpdir, ignore_errors=True)
            self._tmpdir = None

    def describe(self) -> str:
        return f"{self.name}({self.workers} workers)"

    # ------------------------------------------------------------------ #
    # Parent <-> worker plumbing
    # ------------------------------------------------------------------ #
    def _drain_ops(self, w: int) -> List[tuple]:
        """Queued ops plus any pending mirror-clock advances for worker *w*."""
        ops = self._op_queues[w]
        self._op_queues[w] = []
        for rank in self._worker_ranks[w]:
            mirror = self._mirrors.get(rank)
            if mirror is not None and mirror.pending:
                ops.append(("clock", rank, mirror.pending))
                mirror.pending = []
        return ops

    def _send(self, w: int, kind: str, *payload: object) -> None:
        self._conns[w].send((kind, self._drain_ops(w)) + payload)

    def _recv(self, w: int):
        try:
            reply = self._conns[w].recv()
        except EOFError:
            raise RuntimeError(f"execution worker {w} exited unexpectedly") from None
        if reply[0] == "error":
            raise RuntimeError(f"execution worker {w} failed:\n{reply[1]}")
        return reply[1]

    # ------------------------------------------------------------------ #
    # Engine-facing operations
    # ------------------------------------------------------------------ #
    def begin_epoch(self) -> None:
        for w in range(self.workers):
            self._send(w, "begin-epoch")
        for w in range(self.workers):
            self._recv(w)

    def run_steps(self, requests, *, begin_step_all=None, before_step=None,
                  on_outcome=None, on_exhausted=None):
        if begin_step_all is not None:
            self._run_fused(list(requests), begin_step_all, on_outcome, on_exhausted)
        else:
            self._run_two_phase(list(requests), before_step, on_outcome, on_exhausted)

    def _run_fused(self, requests, round_id, on_outcome, on_exhausted):
        """Lockstep round: one message per worker, exhaustion has no parent
        side effects until the serial merge below."""
        by_worker: Dict[int, List[int]] = {}
        for rank, _ in requests:
            by_worker.setdefault(self._rank_worker[rank], []).append(rank)
        # Every worker opens the round's RPC windows, active ranks or not
        # (matching the inline loop over all trainers).
        for w in range(self.workers):
            self._send(w, "step", by_worker.get(w, []), round_id)
        outcomes: Dict[int, StepOutcome] = {}
        exhausted: set = set()
        for w in range(self.workers):
            for item in self._recv(w):
                if item[0] == "exhausted":
                    exhausted.add(item[1])
                else:
                    outcomes[item[1].rank] = item[1]
        for rank, _ in requests:
            if rank in exhausted:
                if on_exhausted is not None:
                    on_exhausted(rank)
                continue
            out = outcomes[rank]
            self._mirrors[rank].adopt(out.clock_time)
            if on_outcome is not None:
                on_outcome(out)

    def _run_two_phase(self, requests, before_step, on_outcome, on_exhausted):
        """Async batch: prepare (reveals exhaustion, model-independent), then
        walk ranks serially, firing exhaustion callbacks at their serial
        points and computing the contiguous survivor groups in parallel."""
        by_worker: Dict[int, List[StepRequest]] = {}
        for rank, round_id in requests:
            by_worker.setdefault(self._rank_worker[rank], []).append((rank, round_id))
        for w in sorted(by_worker):
            self._send(w, "prepare", by_worker[w])
        exhausted: set = set()
        for w in sorted(by_worker):
            for rank, is_exhausted in self._recv(w):
                if is_exhausted:
                    exhausted.add(rank)
        group: List[int] = []
        for rank, _ in requests:
            if rank in exhausted:
                # Flush the survivors computed *before* this rank, then fire
                # the exhaustion at its serial position (its callbacks may
                # apply gradients — queued as ops for the next dispatch).
                self._dispatch_compute(group, before_step, on_outcome)
                group = []
                if on_exhausted is not None:
                    on_exhausted(rank)
            else:
                group.append(rank)
        self._dispatch_compute(group, before_step, on_outcome)

    def _dispatch_compute(self, ranks, before_step, on_outcome):
        if not ranks:
            return
        if before_step is not None:
            for rank in ranks:
                before_step(rank)
        by_worker: Dict[int, List[int]] = {}
        for rank in ranks:
            by_worker.setdefault(self._rank_worker[rank], []).append(rank)
        for w in sorted(by_worker):
            self._send(w, "compute", by_worker[w])
        outcomes: Dict[int, StepOutcome] = {}
        for w in sorted(by_worker):
            for out in self._recv(w):
                outcomes[out.rank] = out
        for rank in ranks:
            out = outcomes[rank]
            self._mirrors[rank].adopt(out.clock_time)
            if on_outcome is not None:
                on_outcome(out)

    def apply_update(self, averaged) -> bool:
        changed = apply_averaged_gradients(self.setup.optimizer, self.setup.model, averaged)
        for queue in self._op_queues:
            queue.append(("apply", averaged))
        return changed

    def epoch_hit_rates(self):
        for w in range(self.workers):
            self._send(w, "hit-rates")
        rates: Dict[int, Optional[float]] = {}
        for w in range(self.workers):
            rates.update(self._recv(w))
        return [rates[t.global_rank] for t in self.cluster.trainers]

    def end_epoch(self) -> None:
        for w in range(self.workers):
            self._send(w, "end-epoch")
        for w in range(self.workers):
            self._recv(w)

    def collect_artifacts(self):
        for w in range(self.workers):
            self._send(w, "collect")
        collected: Dict[int, TrainerArtifacts] = {}
        for w in range(self.workers):
            for art in self._recv(w):
                collected[art.global_rank] = art
        out: List[TrainerArtifacts] = []
        for i, trainer in enumerate(self.cluster.trainers):
            art = collected[trainer.global_rank]
            # Sync-point allreduce charges were accumulated parent-side (the
            # worker's per-step timings carry allreduce=0.0, so the totals
            # partition exactly): graft the shadow total onto the artifact.
            art.accumulator.totals["allreduce"] = self._shadow[i].totals["allreduce"]
            out.append(art)
        return out


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #
class _WorkerState:
    """One pool worker's live objects: its machines' trainers and pipelines."""

    def __init__(self, task: TrainerTask):
        # Per-worker RNG hygiene: reseed the global stream via
        # SeedSequence.spawn so fork-started workers never share library
        # randomness.  Nothing on the deterministic path consumes it.
        np.random.seed(task.worker_seed % (2**32))
        dataset, partition_result, server_rows = load_shared_dataset(task.dataset)
        self.task = task
        config = task.train_config
        self.cluster = SimCluster(
            dataset,
            task.cluster_config,
            cost_model=task.cost_model,
            partition_result=partition_result,
            server_rows=server_rows,
        )
        self.cluster.reset()
        self.model = build_model(
            config.arch,
            in_dim=dataset.feature_dim,
            hidden_dim=config.hidden_dim,
            num_classes=dataset.num_classes,
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            seed=derive_seed(config.seed, 401),
        )
        self.optimizer = build_optimizer(
            config.optimizer, lr=config.learning_rate, weight_decay=config.weight_decay
        )
        builder = PIPELINES.get(task.pipeline)
        builder_kwargs = {
            "prefetch_config": task.prefetch_config,
            "eviction_policy": None,
        }
        if task.cache_config is not None:
            builder_kwargs["cache_config"] = task.cache_config
        self.ranks = list(task.ranks)
        self.pipelines: Dict[int, object] = {}
        self.cost_models: Dict[int, CostModel] = {}
        self.accumulators = {r: ComponentAccumulator() for r in self.ranks}
        self.steps = {r: 0 for r in self.ranks}
        self.iterators: Dict[int, object] = {}
        self.prepared: Dict[int, object] = {}
        self.init_payload: List[Tuple[int, Optional[dict], float]] = []
        # Build pipelines for owned ranks only, in rank order; per-trainer
        # derived seeds make each build independent of the other trainers.
        for rank in self.ranks:
            trainer = self.cluster.trainers[rank]
            pl = builder(trainer, self.cluster, **builder_kwargs)
            self.pipelines[rank] = pl
            self.cost_models[rank] = self.cluster.cost_model_for_machine(trainer.machine)
            init_report = None
            if pl.init_report is not None:
                trainer.clock.advance(pl.init_time_s, "init")
                init_report = dict(pl.init_report)
            self.init_payload.append((rank, init_report, trainer.clock.time))

    # ------------------------------------------------------------------ #
    def apply_ops(self, ops: List[tuple]) -> None:
        """Replay parent-side ops: mirror-clock advances and model updates."""
        for op in ops:
            if op[0] == "clock":
                clock = self.cluster.trainers[op[1]].clock
                for amount, component in op[2]:
                    clock.advance(amount, component)
            elif op[0] == "apply":
                apply_averaged_gradients(self.optimizer, self.model, op[1])

    def begin_epoch(self) -> None:
        self.iterators = {r: iter(self.pipelines[r].epoch()) for r in self.ranks}
        self.prepared = {}

    def fused(self, ranks: List[int], round_id: int) -> List[tuple]:
        """One lockstep round over this worker's active ranks."""
        for rank in self.ranks:
            self.cluster.trainers[rank].rpc.begin_step(round_id)
        items: List[tuple] = []
        for rank in ranks:
            try:
                batch = next(self.iterators[rank])
            except StopIteration:
                items.append(("exhausted", rank))
                continue
            items.append(("outcome", self._step(rank, batch)))
        return items

    def prepare(self, reqs: List[StepRequest]) -> List[Tuple[int, bool]]:
        """Phase one of an async batch: window + iterator advance per rank."""
        statuses: List[Tuple[int, bool]] = []
        for rank, round_id in reqs:
            self.cluster.trainers[rank].rpc.begin_step(round_id)
            try:
                self.prepared[rank] = next(self.iterators[rank])
                statuses.append((rank, False))
            except StopIteration:
                statuses.append((rank, True))
        return statuses

    def compute(self, ranks: List[int]) -> List[StepOutcome]:
        """Phase two: run the prepared batches (model is current via ops)."""
        return [self._step(rank, self.prepared.pop(rank)) for rank in ranks]

    def _step(self, rank: int, batch: object) -> StepOutcome:
        trainer = self.cluster.trainers[rank]
        timing, loss, n_correct, n_seen, grads = train_step(
            self.cost_models[rank],
            trainer,
            batch,
            self.model,
            self.pipelines[rank].timing,
            self.steps[rank],
        )
        self.steps[rank] += 1
        self.accumulators[rank].add(timing)
        return StepOutcome(
            rank=rank,
            loss=loss,
            n_correct=n_correct,
            n_seen=n_seen,
            grads=grads,
            critical_path=timing.critical_path,
            clock_time=trainer.clock.time,
        )

    def hit_rates(self) -> Dict[int, Optional[float]]:
        return {r: self.pipelines[r].hit_rate for r in self.ranks}

    def end_epoch(self) -> None:
        for rank in self.ranks:
            store = self.pipelines[rank].feature_store
            if store is not None:
                store.end_epoch()

    def collect(self) -> List[TrainerArtifacts]:
        return [
            trainer_artifacts(
                self.cluster.trainers[r], self.pipelines[r], self.accumulators[r]
            )
            for r in self.ranks
        ]


def _worker_main(conn, task: TrainerTask) -> None:
    """Pool worker entry point: message loop over the parent pipe."""
    try:
        state = _WorkerState(task)
        conn.send(("ready", state.init_payload))
    except Exception:  # noqa: BLE001 - full traceback forwarded to parent
        conn.send(("error", traceback.format_exc()))
        return
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return
        kind, ops = msg[0], msg[1]
        try:
            state.apply_ops(ops)
            if kind == "shutdown":
                return
            if kind == "begin-epoch":
                state.begin_epoch()
                conn.send(("ok", None))
            elif kind == "step":
                conn.send(("ok", state.fused(msg[2], msg[3])))
            elif kind == "prepare":
                conn.send(("ok", state.prepare(msg[2])))
            elif kind == "compute":
                conn.send(("ok", state.compute(msg[2])))
            elif kind == "hit-rates":
                conn.send(("ok", state.hit_rates()))
            elif kind == "end-epoch":
                state.end_epoch()
                conn.send(("ok", None))
            elif kind == "collect":
                conn.send(("ok", state.collect()))
            else:
                conn.send(("error", f"unknown execution-backend message {kind!r}"))
                return
        except Exception:  # noqa: BLE001 - full traceback forwarded to parent
            conn.send(("error", traceback.format_exc()))
            return


def build_execution_backend(
    name: str,
    cluster: SimCluster,
    train_config: TrainConfig,
    workers: Optional[int] = None,
    **kwargs,
) -> ExecutionBackend:
    """Build a registered execution backend by name (see :data:`EXECUTION_BACKENDS`)."""
    return EXECUTION_BACKENDS.build(name, cluster, train_config, workers=workers, **kwargs)
