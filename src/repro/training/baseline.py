"""Baseline (DistDGL-style) distributed training entry point.

A thin shim over the pipeline API: ``train_baseline(...)`` is exactly
``TrainingEngine(cluster, train_config).run_pipeline("baseline")``.
"""

from __future__ import annotations

from typing import Optional

from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.cost_model import CostModel
from repro.graph.datasets import GraphDataset
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine
from repro.training.telemetry import TrainingReport


def train_baseline(
    dataset: GraphDataset,
    cluster_config: Optional[ClusterConfig] = None,
    train_config: Optional[TrainConfig] = None,
    cost_model: Optional[CostModel] = None,
    cluster: Optional[SimCluster] = None,
) -> TrainingReport:
    """Train a GNN with the baseline DistDGL data path (no prefetching).

    Either pass an existing ``cluster`` (so the baseline and the prefetch run
    share partitions and seed assignments) or let this function build one from
    ``cluster_config``.
    """
    cluster_config = cluster_config or ClusterConfig()
    train_config = train_config or TrainConfig()
    if cluster is None:
        cluster = SimCluster(dataset, cluster_config, cost_model=cost_model)
    engine = TrainingEngine(cluster, train_config)
    return engine.run_pipeline("baseline")
