"""MassiveGNN (prefetch + eviction) distributed training entry points.

Thin shims over the pipeline API: ``train_massive`` runs the registered
``"prefetch"`` pipeline, ``train_with_pipeline`` runs any registered pipeline
by name, and ``compare_baseline_and_prefetch`` runs ``"baseline"`` and
``"prefetch"`` on one shared cluster.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.config import PrefetchConfig
from repro.core.eviction import EvictionPolicy
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.cost_model import CostModel
from repro.graph.datasets import GraphDataset
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine
from repro.training.telemetry import TrainingReport


def train_with_pipeline(
    dataset: GraphDataset,
    pipeline: str = "baseline",
    prefetch_config: Optional[PrefetchConfig] = None,
    cluster_config: Optional[ClusterConfig] = None,
    train_config: Optional[TrainConfig] = None,
    cost_model: Optional[CostModel] = None,
    cluster: Optional[SimCluster] = None,
    eviction_policy: Optional[EvictionPolicy] = None,
) -> TrainingReport:
    """Train a GNN with any pipeline registered in
    :data:`repro.training.pipelines.PIPELINES` (``"baseline"``, ``"prefetch"``,
    ``"static-cache"``, ...)."""
    cluster_config = cluster_config or ClusterConfig()
    train_config = train_config or TrainConfig()
    if cluster is None:
        cluster = SimCluster(dataset, cluster_config, cost_model=cost_model)
    engine = TrainingEngine(cluster, train_config)
    return engine.run_pipeline(
        pipeline, prefetch_config=prefetch_config, eviction_policy=eviction_policy
    )


def train_massive(
    dataset: GraphDataset,
    prefetch_config: Optional[PrefetchConfig] = None,
    cluster_config: Optional[ClusterConfig] = None,
    train_config: Optional[TrainConfig] = None,
    cost_model: Optional[CostModel] = None,
    cluster: Optional[SimCluster] = None,
    eviction_policy: Optional[EvictionPolicy] = None,
) -> TrainingReport:
    """Train a GNN with MassiveGNN's continuous prefetch-and-eviction scheme."""
    return train_with_pipeline(
        dataset,
        pipeline="prefetch",
        prefetch_config=prefetch_config or PrefetchConfig(),
        cluster_config=cluster_config,
        train_config=train_config,
        cost_model=cost_model,
        cluster=cluster,
        eviction_policy=eviction_policy,
    )


def compare_baseline_and_prefetch(
    dataset: GraphDataset,
    prefetch_config: Optional[PrefetchConfig] = None,
    cluster_config: Optional[ClusterConfig] = None,
    train_config: Optional[TrainConfig] = None,
    cost_model: Optional[CostModel] = None,
) -> Tuple[TrainingReport, TrainingReport]:
    """Run both pipelines on the *same* cluster and return (baseline, prefetch).

    Sharing the cluster guarantees both runs see identical partitions and seed
    assignments, which is how the paper's Fig. 6 comparison is constructed.
    """
    cluster_config = cluster_config or ClusterConfig()
    train_config = train_config or TrainConfig()
    prefetch_config = prefetch_config or PrefetchConfig()
    cluster = SimCluster(dataset, cluster_config, cost_model=cost_model)
    engine = TrainingEngine(cluster, train_config)
    baseline_report = engine.run_pipeline("baseline")
    prefetch_report = engine.run_pipeline("prefetch", prefetch_config=prefetch_config)
    return baseline_report, prefetch_report
