"""Training pipelines: baseline DistDGL-style and MassiveGNN prefetch-enabled."""

from repro.training.async_engine import AsyncClusterEngine
from repro.training.baseline import train_baseline
from repro.training.cluster_engine import ClusterEngine, ClusterReport, TrainerRunStats
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine
from repro.training.engines import ENGINES, build_engine
from repro.training.evaluate import evaluate_accuracy, evaluate_loss, majority_class_accuracy
from repro.training.massive import (
    compare_baseline_and_prefetch,
    train_massive,
    train_with_pipeline,
)
from repro.training.memory import MemoryProfile, compare_memory, profile_memory
from repro.training.pipelines import (
    PIPELINES,
    OverlappedTimingPolicy,
    SerialTimingPolicy,
    build_pipeline,
)
from repro.training.sweep import (
    SweepPoint,
    SweepResult,
    delta_sweep,
    find_optimal,
    gamma_sweep,
    paper_grid,
    run_parameter_sweep,
)
from repro.training.telemetry import (
    ComponentAccumulator,
    EpochRecord,
    StepTiming,
    TrainingReport,
)

__all__ = [
    "train_baseline",
    "train_with_pipeline",
    "TrainConfig",
    "TrainingEngine",
    "AsyncClusterEngine",
    "ENGINES",
    "build_engine",
    "ClusterEngine",
    "ClusterReport",
    "TrainerRunStats",
    "PIPELINES",
    "OverlappedTimingPolicy",
    "SerialTimingPolicy",
    "build_pipeline",
    "evaluate_accuracy",
    "evaluate_loss",
    "majority_class_accuracy",
    "compare_baseline_and_prefetch",
    "train_massive",
    "MemoryProfile",
    "compare_memory",
    "profile_memory",
    "SweepPoint",
    "SweepResult",
    "delta_sweep",
    "find_optimal",
    "gamma_sweep",
    "paper_grid",
    "run_parameter_sweep",
    "ComponentAccumulator",
    "EpochRecord",
    "StepTiming",
    "TrainingReport",
]
