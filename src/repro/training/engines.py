"""The :data:`ENGINES` registry: cluster execution backends selected by name.

Three backends ship:

* ``lockstep`` — :class:`~repro.training.cluster_engine.ClusterEngine`, the
  bulk-synchronous loop (every trainer meets every allreduce barrier);
* ``async`` — :class:`~repro.training.async_engine.AsyncClusterEngine`, the
  discrete-event backend whose gradient synchronization is a pluggable
  :class:`~repro.events.sync.SyncPolicy` (``allreduce-barrier``,
  ``bounded-staleness``, ``local-sgd``) and which supports seeded transient
  failures;
* ``serving`` — :class:`~repro.serving.engine.InferenceClusterEngine`, the
  online-inference backend that consumes an open-loop request stream
  (:data:`~repro.serving.arrivals.ARRIVALS`) instead of training epochs and
  returns a :class:`~repro.serving.report.ServingReport`.

Scenarios and the CLI resolve engines the same way they resolve pipelines and
samplers — by registry key — so a new backend plugs in without touching
either.  Each factory rejects the knobs it cannot honour (a non-barrier sync
policy on ``lockstep``, a ``ServingSpec`` on either training backend, a
missing one on ``serving``) instead of silently ignoring them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Union

from repro.distributed.cluster import SimCluster
from repro.events.schedule import ElasticSpec, FailureSpec
from repro.events.sync import SYNC_POLICIES
from repro.training.async_engine import AsyncClusterEngine
from repro.training.cluster_engine import ClusterEngine
from repro.training.config import TrainConfig
from repro.utils.registry import Registry

if TYPE_CHECKING:  # repro.serving imports this module's internals; import lazily
    from repro.serving.arrivals import ServingSpec
    from repro.serving.engine import InferenceClusterEngine

ENGINES = Registry("cluster engine")


def sync_policy_options(
    sync: str,
    staleness: Optional[int] = None,
    sync_period: Optional[int] = None,
) -> Dict[str, int]:
    """Factory kwargs for the named sync policy from the generic CLI/scenario knobs."""
    resolved = SYNC_POLICIES.resolve(sync)
    options: Dict[str, int] = {}
    if resolved == "bounded-staleness" and staleness is not None:
        options["staleness"] = int(staleness)
    if resolved == "local-sgd" and sync_period is not None:
        options["sync_period"] = int(sync_period)
    return options


def _reject_elastic(elastic: Optional[ElasticSpec], engine: str) -> None:
    if elastic is not None and not elastic.is_empty:
        raise ValueError(
            f"elastic membership requires the event-driven backend "
            f"(engine='async'); got a non-empty ElasticSpec with "
            f"engine={engine!r}"
        )


def _reject_serving(serving, engine: str) -> None:
    if serving is not None:
        raise ValueError(
            f"a ServingSpec only drives the serving engine (got one with "
            f"engine={engine!r}); select it with engine='serving'"
        )


def _reject_pool(execution_backend: str, workers: Optional[int], engine: str) -> None:
    from repro.training.backends import EXECUTION_BACKENDS

    if EXECUTION_BACKENDS.resolve(execution_backend) != "inline":
        raise ValueError(
            f"the {engine} engine only runs on the inline execution backend "
            f"(got execution_backend={execution_backend!r})"
        )
    if workers is not None:
        raise ValueError(
            f"a worker count only applies to the process-pool execution "
            f"backend (got workers={workers!r} with engine={engine!r})"
        )


@ENGINES.register("lockstep", aliases=("sync", "bsp"))
def _build_lockstep(
    cluster: SimCluster,
    train_config: TrainConfig,
    scenario: Optional[str] = None,
    sync: str = "allreduce-barrier",
    staleness: Optional[int] = None,
    sync_period: Optional[int] = None,
    failures: Optional[FailureSpec] = None,
    elastic: Optional[ElasticSpec] = None,
    serving: Optional["ServingSpec"] = None,
    record_events: bool = False,
    execution_backend: str = "inline",
    workers: Optional[int] = None,
) -> ClusterEngine:
    if SYNC_POLICIES.resolve(sync) != "allreduce-barrier":
        raise ValueError(
            f"the lockstep engine only implements the 'allreduce-barrier' sync "
            f"policy (got {sync!r}); select the event-driven backend with "
            f"engine='async'"
        )
    if failures is not None:
        raise ValueError(
            "transient failures require the event-driven backend (engine='async')"
        )
    _reject_elastic(elastic, "lockstep")
    _reject_serving(serving, "lockstep")
    return ClusterEngine(
        cluster,
        train_config,
        scenario=scenario,
        execution_backend=execution_backend,
        workers=workers,
    )


@ENGINES.register("async", aliases=("event", "event-driven"))
def _build_async(
    cluster: SimCluster,
    train_config: TrainConfig,
    scenario: Optional[str] = None,
    sync: str = "allreduce-barrier",
    staleness: Optional[int] = None,
    sync_period: Optional[int] = None,
    failures: Optional[FailureSpec] = None,
    elastic: Optional[ElasticSpec] = None,
    serving: Optional["ServingSpec"] = None,
    record_events: bool = False,
    execution_backend: str = "inline",
    workers: Optional[int] = None,
) -> AsyncClusterEngine:
    _reject_serving(serving, "async")
    return AsyncClusterEngine(
        cluster,
        train_config,
        scenario=scenario,
        sync=sync,
        sync_options=sync_policy_options(sync, staleness, sync_period),
        failures=failures,
        elastic=elastic,
        record_events=record_events,
        execution_backend=execution_backend,
        workers=workers,
    )


@ENGINES.register("serving", aliases=("serve", "inference"))
def _build_serving(
    cluster: SimCluster,
    train_config: TrainConfig,
    scenario: Optional[str] = None,
    sync: str = "allreduce-barrier",
    staleness: Optional[int] = None,
    sync_period: Optional[int] = None,
    failures: Optional[FailureSpec] = None,
    elastic: Optional[ElasticSpec] = None,
    serving: Optional["ServingSpec"] = None,
    record_events: bool = False,
    execution_backend: str = "inline",
    workers: Optional[int] = None,
) -> "InferenceClusterEngine":
    from repro.serving.engine import InferenceClusterEngine

    _reject_pool(execution_backend, workers, "serving")
    if serving is None:
        raise ValueError(
            "the serving engine needs a ServingSpec (scenario field 'serving' "
            "or ServingSpec(...) passed to build_engine)"
        )
    if failures is not None:
        raise ValueError("transient failures are not modeled by the serving engine")
    _reject_elastic(elastic, "serving")
    if SYNC_POLICIES.resolve(sync) != "allreduce-barrier":
        raise ValueError(
            "gradient sync policies do not apply to inference serving "
            f"(got sync={sync!r})"
        )
    return InferenceClusterEngine(
        cluster,
        train_config,
        scenario=scenario,
        serving=serving,
        record_events=record_events,
    )


def build_engine(
    name: str,
    cluster: SimCluster,
    train_config: TrainConfig,
    **kwargs,
) -> Union[ClusterEngine, AsyncClusterEngine, "InferenceClusterEngine"]:
    """Build a registered cluster engine by name (see :data:`ENGINES`)."""
    return ENGINES.build(name, cluster, train_config, **kwargs)
