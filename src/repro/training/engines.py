"""The :data:`ENGINES` registry: cluster execution backends selected by name.

Two backends ship:

* ``lockstep`` — :class:`~repro.training.cluster_engine.ClusterEngine`, the
  bulk-synchronous loop (every trainer meets every allreduce barrier);
* ``async`` — :class:`~repro.training.async_engine.AsyncClusterEngine`, the
  discrete-event backend whose gradient synchronization is a pluggable
  :class:`~repro.events.sync.SyncPolicy` (``allreduce-barrier``,
  ``bounded-staleness``, ``local-sgd``) and which supports seeded transient
  failures.

Scenarios and the CLI resolve engines the same way they resolve pipelines and
samplers — by registry key — so a new backend plugs in without touching
either.  The ``lockstep`` factory rejects async-only knobs (a non-barrier
sync policy, a failure schedule) instead of silently ignoring them.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.distributed.cluster import SimCluster
from repro.events.schedule import FailureSpec
from repro.events.sync import SYNC_POLICIES
from repro.training.async_engine import AsyncClusterEngine
from repro.training.cluster_engine import ClusterEngine
from repro.training.config import TrainConfig
from repro.utils.registry import Registry

ENGINES = Registry("cluster engine")


def sync_policy_options(
    sync: str,
    staleness: Optional[int] = None,
    sync_period: Optional[int] = None,
) -> Dict[str, int]:
    """Factory kwargs for the named sync policy from the generic CLI/scenario knobs."""
    resolved = SYNC_POLICIES.resolve(sync)
    options: Dict[str, int] = {}
    if resolved == "bounded-staleness" and staleness is not None:
        options["staleness"] = int(staleness)
    if resolved == "local-sgd" and sync_period is not None:
        options["sync_period"] = int(sync_period)
    return options


@ENGINES.register("lockstep", aliases=("sync", "bsp"))
def _build_lockstep(
    cluster: SimCluster,
    train_config: TrainConfig,
    scenario: Optional[str] = None,
    sync: str = "allreduce-barrier",
    staleness: Optional[int] = None,
    sync_period: Optional[int] = None,
    failures: Optional[FailureSpec] = None,
    record_events: bool = False,
) -> ClusterEngine:
    if SYNC_POLICIES.resolve(sync) != "allreduce-barrier":
        raise ValueError(
            f"the lockstep engine only implements the 'allreduce-barrier' sync "
            f"policy (got {sync!r}); select the event-driven backend with "
            f"engine='async'"
        )
    if failures is not None:
        raise ValueError(
            "transient failures require the event-driven backend (engine='async')"
        )
    return ClusterEngine(cluster, train_config, scenario=scenario)


@ENGINES.register("async", aliases=("event", "event-driven"))
def _build_async(
    cluster: SimCluster,
    train_config: TrainConfig,
    scenario: Optional[str] = None,
    sync: str = "allreduce-barrier",
    staleness: Optional[int] = None,
    sync_period: Optional[int] = None,
    failures: Optional[FailureSpec] = None,
    record_events: bool = False,
) -> AsyncClusterEngine:
    return AsyncClusterEngine(
        cluster,
        train_config,
        scenario=scenario,
        sync=sync,
        sync_options=sync_policy_options(sync, staleness, sync_period),
        failures=failures,
        record_events=record_events,
    )


def build_engine(
    name: str,
    cluster: SimCluster,
    train_config: TrainConfig,
    **kwargs,
) -> Union[ClusterEngine, AsyncClusterEngine]:
    """Build a registered cluster engine by name (see :data:`ENGINES`)."""
    return ENGINES.build(name, cluster, train_config, **kwargs)
