"""Event-driven cluster execution: trainers post events instead of lockstepping.

:class:`AsyncClusterEngine` is the discrete-event counterpart of the lockstep
:class:`~repro.training.cluster_engine.ClusterEngine`.  Instead of marching
every trainer to a shared allreduce barrier each step, trainers post
**step-completion events** onto a deterministic
:class:`~repro.events.loop.EventLoop` (ties broken by ``(timestamp, rank,
seq)``), and a pluggable :class:`~repro.events.sync.SyncPolicy` from
:data:`~repro.events.sync.SYNC_POLICIES` decides when gradients meet the
model:

* ``allreduce-barrier`` reproduces the lockstep engine **bit-identically** —
  same losses, clocks, barrier waits, and RPC wire counters on the golden
  2x2 workload (pinned by ``tests/test_async_engine.py``);
* ``bounded-staleness`` lets trainers run up to K rounds ahead, applying
  stale averaged gradients — stragglers stop dragging the whole cluster;
* ``local-sgd`` gives every trainer its own parameter replica and averages
  them every H steps.

The event loop is also where behaviours a barrier cannot express live:

* **transient failures** (``trainer-flaky`` scenario) — a seeded
  :class:`~repro.events.schedule.FailureSchedule` takes a trainer down after
  selected steps; the outage is booked as ``downtime`` on its clock, a
  ``fail``/``recover`` event pair lands in the loop, and peers feel the gap
  through whichever sync policy is active.  Same seed ⇒ bit-identical replay.
* **time-varying congestion** (``congested-link`` scenario) — handled below
  the engine by :class:`~repro.distributed.cost_model.CongestedCostModel`,
  which the event-driven clocks make meaningful (different trainers hit
  different bursts).

Everything around the event core — run setup, per-step compute, telemetry
roll-up — is shared with the lockstep engine via the module-level helpers in
:mod:`repro.training.cluster_engine`, so the two engines cannot drift.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Union

import numpy as np

from repro.cache.config import CacheConfig
from repro.core.config import PrefetchConfig
from repro.core.eviction import EvictionPolicy
from repro.distributed.cluster import SimCluster
from repro.events.loop import Event, EventLoop
from repro.events.schedule import FailureSchedule, FailureSpec
from repro.events.sync import SYNC_POLICIES, StepContribution, SyncContext
from repro.sampling.pipeline import MiniBatchPipeline
from repro.training.cluster_engine import (
    ClusterReport,
    collect_trainer_stats,
    merged_store_summary,
    prepare_cluster_run,
)
from repro.training.config import TrainConfig
from repro.training.engine import (
    PipelineBuilder,
    assemble_training_report,
    train_step,
)
from repro.training.telemetry import EpochRecord


class AsyncClusterEngine:
    """Run one pipeline per trainer, scheduled by a discrete-event loop.

    Parameters
    ----------
    cluster, train_config, scenario:
        As for :class:`~repro.training.cluster_engine.ClusterEngine`.
    sync:
        Name of the gradient synchronization policy
        (:data:`~repro.events.sync.SYNC_POLICIES`).
    sync_options:
        Keyword arguments for the policy factory (e.g. ``staleness=2`` for
        ``bounded-staleness``, ``sync_period=4`` for ``local-sgd``).
    failures:
        Optional :class:`~repro.events.schedule.FailureSpec`; when set, a
        seeded schedule injects transient trainer outages.
    record_events:
        Keep the popped-event history on :attr:`event_history` after a run
        (the determinism tests compare histories across runs).
    """

    def __init__(
        self,
        cluster: SimCluster,
        train_config: TrainConfig,
        scenario: Optional[str] = None,
        sync: str = "allreduce-barrier",
        sync_options: Optional[Dict[str, object]] = None,
        failures: Optional[FailureSpec] = None,
        record_events: bool = False,
    ):
        self.cluster = cluster
        self.config = train_config
        self.cost_model = cluster.cost_model
        self.dataset = cluster.dataset
        self.scenario = scenario
        self.sync = SYNC_POLICIES.resolve(sync)
        self.sync_options = dict(sync_options or {})
        self.failures = failures
        self.record_events = record_events
        #: ``(kind, time, rank, seq)`` tuples of the last run (record_events).
        self.event_history: List[tuple] = []
        cluster.validate_seed_coverage()

    # ------------------------------------------------------------------ #
    def run(
        self,
        pipeline: Union[str, PipelineBuilder] = "baseline",
        prefetch_config: Optional[PrefetchConfig] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        cache_config: Optional[CacheConfig] = None,
    ) -> ClusterReport:
        """Train the cluster event-driven; same contract as the lockstep engine."""
        cluster, config = self.cluster, self.config
        setup = prepare_cluster_run(
            cluster, config, pipeline, prefetch_config, eviction_policy, cache_config
        )
        trainers = cluster.trainers
        world = len(trainers)
        model, optimizer = setup.model, setup.optimizer
        pipelines: List[MiniBatchPipeline] = setup.pipelines
        accumulators = setup.accumulators

        policy = SYNC_POLICIES.build(self.sync, **self.sync_options)
        loop = EventLoop(record=self.record_events)
        schedule = (
            FailureSchedule(self.failures, world, cluster.config.seed)
            if self.failures is not None
            else None
        )

        # Mutable run state shared with the nested handlers.
        trainer_steps = [0] * world          # lifetime steps (drives Δ/Eq. 4 + failures)
        barrier_waits = [0.0] * world
        sync_extras: List[Dict[str, float]] = [{} for _ in range(world)]
        down = [False] * world
        pending_release = [False] * world
        total_minibatches = 0

        # Per-epoch state, rebound at each epoch start.
        state: Dict[str, object] = {}

        def schedule_ready(rank: int) -> None:
            """Policy callback: the trainer may begin its next step.

            Routed through the engine so epoch caps, exhausted iterators, and
            failure outages are honoured before an event lands in the loop.
            """
            if not state["active"][rank]:
                return
            if (
                config.max_steps_per_epoch is not None
                and state["epoch_steps"][rank] >= config.max_steps_per_epoch
            ):
                mark_exhausted(rank)
                return
            if down[rank]:
                pending_release[rank] = True
                return
            loop.push(trainers[rank].clock.time, "step-ready", rank)

        def mark_exhausted(rank: int) -> None:
            state["active"][rank] = False
            state["epoch_done"][rank] = True
            policy.on_trainer_exhausted(rank, trainers[rank].clock.time)

        def record_round(contributions: List[StepContribution]) -> None:
            for c in contributions:
                record_step(c)

        def record_step(c: StepContribution) -> None:
            state["losses"].append(c.loss)
            state["correct"] = state["correct"] + c.n_correct
            state["seen"] = state["seen"] + c.n_seen

        # ---------------- event handlers ----------------
        def on_step_ready(ev: Event) -> None:
            rank = ev.rank
            if down[rank]:
                # Unreachable under the shipped policies (a trainer can only
                # fail during its own step-done, before any release), but a
                # future policy releasing early must not start a downed
                # trainer.
                pending_release[rank] = True
                return
            if not policy.can_start(rank):
                return  # the policy holds the trainer (and starts it itself)
            start_step(rank)

        def start_step(rank: int) -> None:
            nonlocal total_minibatches
            trainer = trainers[rank]
            # Open this trainer's RPC coalescing window for its current round
            # *before* advancing the pipeline generator — the halo fetch runs
            # inside next().  Same-machine trainers in the same round share
            # the window (begin_step with an unchanged id is idempotent), so
            # barrier-mode coalescing matches the lockstep engine's, which
            # also opens the round's windows before any trainer fetches.
            trainer.rpc.begin_step(policy.coalescing_round(rank))
            try:
                batch = next(state["iterators"][rank])
            except StopIteration:
                mark_exhausted(rank)
                return
            policy.before_step(rank)
            timing, loss, n_correct, n_seen, grads = train_step(
                setup.cost_models[rank],
                trainer,
                batch,
                model,
                pipelines[rank].timing,
                trainer_steps[rank],
            )
            trainer_steps[rank] += 1
            state["epoch_steps"][rank] += 1
            total_minibatches += 1
            accumulators[rank].add(timing)
            grads = policy.process_step(rank, grads)
            loop.push(
                trainer.clock.time,
                "step-done",
                rank,
                contribution=StepContribution(rank, loss, n_correct, n_seen, grads),
                step_critical=timing.critical_path,
            )

        def on_step_done(ev: Event) -> None:
            rank, now = ev.rank, ev.time
            # Failure (if scheduled for the step that just finished) lands
            # *before* the policy reacts: the gradient still counts — the
            # compute completed — but the trainer goes dark before it can be
            # released, so peers meet the outage at their next sync point.
            if schedule is not None:
                factor = schedule.downtime_factor(rank, trainer_steps[rank] - 1)
                if factor is not None:
                    fail(rank, now, factor * max(ev.payload["step_critical"], 1e-12))
            policy.on_step_done(ev.payload["contribution"], now)

        def fail(rank: int, now: float, downtime: float) -> None:
            down[rank] = True
            loop.push(now, "fail", rank)  # observational marker in the history
            clock = trainers[rank].clock
            clock.advance(downtime, "downtime")
            extras = sync_extras[rank]
            extras["failures"] = extras.get("failures", 0.0) + 1.0
            extras["downtime_s"] = extras.get("downtime_s", 0.0) + downtime
            loop.push(clock.time, "recover", rank)

        def on_recover(ev: Event) -> None:
            rank = ev.rank
            down[rank] = False
            if pending_release[rank]:
                pending_release[rank] = False
                schedule_ready(rank)

        handlers = {
            "step-ready": on_step_ready,
            "step-done": on_step_done,
            "recover": on_recover,
            "fail": lambda ev: None,
        }

        ctx = SyncContext(
            trainers=trainers,
            model=model,
            optimizer=optimizer,
            cost_model=cluster.cost_model,
            num_params=setup.num_params,
            accumulators=accumulators,
            barrier_waits=barrier_waits,
            sync_extras=sync_extras,
            train_config=config,
            schedule_ready=schedule_ready,
            record_round=record_round,
            record_step=record_step,
            start_step=start_step,
        )
        policy.bind(ctx)

        # ---------------- epoch loop ----------------
        epoch_records: List[EpochRecord] = []
        previous_epoch_end = max(t.clock.time for t in trainers) if trainers else 0.0

        for epoch in range(config.epochs):
            state = {
                "iterators": [iter(pl.epoch()) for pl in pipelines],
                "active": [True] * world,
                "epoch_done": [False] * world,
                "epoch_steps": [0] * world,
                "losses": [],
                "correct": 0,
                "seen": 0,
            }
            policy.on_epoch_start(list(range(world)))
            for rank in range(world):
                schedule_ready(rank)

            while True:
                ev = loop.pop()
                if ev is None:
                    break
                handlers[ev.kind](ev)

            stranded = [r for r in range(world) if not state["epoch_done"][r]]
            if stranded:
                raise RuntimeError(
                    f"event loop drained with trainers {stranded} stranded in epoch "
                    f"{epoch}: sync policy {policy.name!r} failed to release them"
                )
            policy.on_epoch_end()

            epoch_end = max(t.clock.time for t in trainers) if trainers else 0.0
            hit_rates = [pl.hit_rate for pl in pipelines if pl.hit_rate is not None]
            losses = state["losses"]
            epoch_records.append(
                EpochRecord(
                    epoch=epoch,
                    simulated_time_s=epoch_end - previous_epoch_end,
                    loss=float(np.mean(losses)) if losses else 0.0,
                    train_accuracy=(
                        state["correct"] / state["seen"] if state["seen"] else 0.0
                    ),
                    hit_rate=float(np.mean(hit_rates)) if hit_rates else None,
                )
            )
            previous_epoch_end = epoch_end
            for pl in pipelines:
                if pl.feature_store is not None:
                    pl.feature_store.end_epoch()

        policy.on_run_end()
        if self.record_events:
            self.event_history = list(loop.history)

        report = assemble_training_report(
            mode=setup.mode,
            cluster=cluster,
            train_config=config,
            pipelines=pipelines,
            accumulators=accumulators,
            epoch_records=epoch_records,
            init_reports=setup.init_reports,
            total_minibatches=total_minibatches,
            wall_clock_s=time.perf_counter() - setup.wall_start,
            model=model,
            prefetch_config=prefetch_config,
        )
        self._final_model = model
        return ClusterReport(
            report=report,
            trainer_stats=collect_trainer_stats(
                cluster, pipelines, trainer_steps, barrier_waits, sync_extras
            ),
            scenario=self.scenario,
            store_summary=merged_store_summary(pipelines),
            engine="async",
            sync=policy.describe(),
        )

    # ------------------------------------------------------------------ #
    @property
    def final_model(self):
        """The trained model from the most recent run."""
        model = getattr(self, "_final_model", None)
        if model is None:
            raise RuntimeError("no cluster run has completed yet")
        return model
