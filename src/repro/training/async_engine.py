"""Event-driven cluster execution: trainers post events instead of lockstepping.

:class:`AsyncClusterEngine` is the discrete-event counterpart of the lockstep
:class:`~repro.training.cluster_engine.ClusterEngine`.  Instead of marching
every trainer to a shared allreduce barrier each step, trainers post
**step-completion events** onto a deterministic
:class:`~repro.events.loop.EventLoop` (ties broken by ``(timestamp, rank,
seq)``), and a pluggable :class:`~repro.events.sync.SyncPolicy` from
:data:`~repro.events.sync.SYNC_POLICIES` decides when gradients meet the
model:

* ``allreduce-barrier`` reproduces the lockstep engine **bit-identically** —
  same losses, clocks, barrier waits, and RPC wire counters on the golden
  2x2 workload (pinned by ``tests/test_async_engine.py``);
* ``bounded-staleness`` lets trainers run up to K rounds ahead, applying
  stale averaged gradients — stragglers stop dragging the whole cluster;
* ``local-sgd`` gives every trainer its own parameter replica and averages
  them every H steps.

The event loop is also where behaviours a barrier cannot express live:

* **transient failures** (``trainer-flaky`` scenario) — a seeded
  :class:`~repro.events.schedule.FailureSchedule` takes a trainer down after
  selected steps; the outage is booked as ``downtime`` on its clock, a
  ``fail``/``recover`` event pair lands in the loop, and peers feel the gap
  through whichever sync policy is active.  Same seed ⇒ bit-identical replay.
* **time-varying congestion** (``congested-link`` scenario) — handled below
  the engine by :class:`~repro.distributed.cost_model.CongestedCostModel`,
  which the event-driven clocks make meaningful (different trainers hit
  different bursts).

Everything around the event core — run setup, per-step compute, telemetry
roll-up — is shared with the lockstep engine via the module-level helpers in
:mod:`repro.training.cluster_engine`, so the two engines cannot drift.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Union

import numpy as np

from repro.cache.config import CacheConfig
from repro.core.config import PrefetchConfig
from repro.core.eviction import EvictionPolicy
from repro.distributed.cluster import SimCluster
from repro.events.loop import Event, EventLoop
from repro.events.schedule import FailureSchedule, FailureSpec
from repro.events.sync import SYNC_POLICIES, StepContribution, SyncContext
from repro.training.cluster_engine import (
    ClusterReport,
    collect_trainer_stats,
    merged_store_summary_from_artifacts,
)
from repro.training.config import TrainConfig
from repro.training.engine import (
    PipelineBuilder,
    assemble_training_report,
)
from repro.training.telemetry import EpochRecord


class AsyncClusterEngine:
    """Run one pipeline per trainer, scheduled by a discrete-event loop.

    Parameters
    ----------
    cluster, train_config, scenario:
        As for :class:`~repro.training.cluster_engine.ClusterEngine`.
    sync:
        Name of the gradient synchronization policy
        (:data:`~repro.events.sync.SYNC_POLICIES`).
    sync_options:
        Keyword arguments for the policy factory (e.g. ``staleness=2`` for
        ``bounded-staleness``, ``sync_period=4`` for ``local-sgd``).
    failures:
        Optional :class:`~repro.events.schedule.FailureSpec`; when set, a
        seeded schedule injects transient trainer outages.
    record_events:
        Keep the popped-event history on :attr:`event_history` after a run
        (the determinism tests compare histories across runs).
    """

    def __init__(
        self,
        cluster: SimCluster,
        train_config: TrainConfig,
        scenario: Optional[str] = None,
        sync: str = "allreduce-barrier",
        sync_options: Optional[Dict[str, object]] = None,
        failures: Optional[FailureSpec] = None,
        record_events: bool = False,
        execution_backend: str = "inline",
        workers: Optional[int] = None,
    ):
        from repro.training.backends import EXECUTION_BACKENDS

        self.cluster = cluster
        self.config = train_config
        self.cost_model = cluster.cost_model
        self.dataset = cluster.dataset
        self.scenario = scenario
        self.sync = SYNC_POLICIES.resolve(sync)
        self.sync_options = dict(sync_options or {})
        self.failures = failures
        self.record_events = record_events
        self.execution_backend = EXECUTION_BACKENDS.resolve(execution_backend)
        self.workers = workers
        #: ``(kind, time, rank, seq)`` tuples of the last run (record_events).
        self.event_history: List[tuple] = []
        cluster.validate_seed_coverage()

    # ------------------------------------------------------------------ #
    def run(
        self,
        pipeline: Union[str, PipelineBuilder] = "baseline",
        prefetch_config: Optional[PrefetchConfig] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        cache_config: Optional[CacheConfig] = None,
    ) -> ClusterReport:
        """Train the cluster event-driven; same contract as the lockstep engine."""
        from repro.training.backends import EXECUTION_BACKENDS

        cluster, config = self.cluster, self.config
        policy = SYNC_POLICIES.build(self.sync, **self.sync_options)
        backend = EXECUTION_BACKENDS.build(
            self.execution_backend, cluster, config, workers=self.workers
        )
        if policy.owns_replicas and not backend.supports_replica_policies:
            backend.close()
            raise ValueError(
                f"sync policy {policy.name!r} owns per-trainer model replicas "
                f"and requires the inline execution backend "
                f"(got {backend.name!r})"
            )
        try:
            return self._run(
                backend, policy, pipeline, prefetch_config, eviction_policy, cache_config
            )
        finally:
            backend.close()

    def _run(
        self,
        backend,
        policy,
        pipeline: Union[str, PipelineBuilder],
        prefetch_config: Optional[PrefetchConfig],
        eviction_policy: Optional[EvictionPolicy],
        cache_config: Optional[CacheConfig],
    ) -> ClusterReport:
        """The event loop proper, once backend and policy are validated."""
        from repro.training.backends import StepOutcome

        cluster, config = self.cluster, self.config
        setup = backend.prepare(pipeline, prefetch_config, eviction_policy, cache_config)
        trainers = cluster.trainers
        world = len(trainers)
        model, optimizer = setup.model, setup.optimizer
        accumulators = setup.accumulators

        loop = EventLoop(record=self.record_events)
        schedule = (
            FailureSchedule(self.failures, world, cluster.config.seed)
            if self.failures is not None
            else None
        )

        # Mutable run state shared with the nested handlers.
        trainer_steps = [0] * world          # lifetime steps (drives Δ/Eq. 4 + failures)
        barrier_waits = [0.0] * world
        sync_extras: List[Dict[str, float]] = [{} for _ in range(world)]
        down = [False] * world
        pending_release = [False] * world
        total_minibatches = 0

        # Per-epoch state, rebound at each epoch start.
        state: Dict[str, object] = {}

        def schedule_ready(rank: int) -> None:
            """Policy callback: the trainer may begin its next step.

            Routed through the engine so epoch caps, exhausted iterators, and
            failure outages are honoured before an event lands in the loop.
            """
            if not state["active"][rank]:
                return
            if (
                config.max_steps_per_epoch is not None
                and state["epoch_steps"][rank] >= config.max_steps_per_epoch
            ):
                mark_exhausted(rank)
                return
            if down[rank]:
                pending_release[rank] = True
                return
            loop.push(trainers[rank].clock.time, "step-ready", rank)

        def mark_exhausted(rank: int) -> None:
            state["active"][rank] = False
            state["epoch_done"][rank] = True
            policy.on_trainer_exhausted(rank, trainers[rank].clock.time)

        def record_round(contributions: List[StepContribution]) -> None:
            for c in contributions:
                record_step(c)

        def record_step(c: StepContribution) -> None:
            state["losses"].append(c.loss)
            state["correct"] = state["correct"] + c.n_correct
            state["seen"] = state["seen"] + c.n_seen

        # ---------------- event handlers ----------------
        def on_step_ready(ev: Event) -> None:
            # Batch every consecutive same-timestamp step-ready event into one
            # handler pass: popping them up front assigns no event seqs and
            # preserves the serial pop order, but it hands the execution
            # backend a whole cohort to compute in parallel.  Collection stops
            # at any other event kind, so interleaved same-time events (e.g. a
            # recover) keep their serial position.
            batch = [ev]
            nxt = loop.peek()
            while nxt is not None and nxt.kind == "step-ready" and nxt.time == ev.time:
                batch.append(loop.pop())
                nxt = loop.peek()
            starts: List[int] = []
            for e in batch:
                rank = e.rank
                if down[rank]:
                    # Unreachable under the shipped policies (a trainer can
                    # only fail during its own step-done, before any release),
                    # but a future policy releasing early must not start a
                    # downed trainer.
                    pending_release[rank] = True
                    continue
                if not policy.can_start(rank):
                    continue  # the policy holds the trainer (and starts it itself)
                starts.append(rank)
            if len(starts) == 1:
                start_step(starts[0])
            elif starts:
                run_requests(starts, floor=ev.time)

        def start_step(rank: int) -> None:
            run_requests([rank])

        def start_steps(ranks: List[int]) -> None:
            run_requests(list(ranks))

        def run_requests(ranks: List[int], floor: Optional[float] = None) -> None:
            """Step *ranks* (ascending) through the execution backend.

            Opens each trainer's RPC coalescing window for its current round
            *before* advancing the pipeline generator — the halo fetch runs
            inside next().  Same-machine trainers in the same round share the
            window (begin_step with an unchanged id is idempotent), so
            barrier-mode coalescing matches the lockstep engine's, which also
            opens the round's windows before any trainer fetches.

            ``floor`` guards batched same-time releases: a zero-duration step
            would let its completion event overtake an already-collected
            ready event, diverging from the serial order, so it is an error.
            """
            requests = [(r, policy.coalescing_round(r)) for r in ranks]
            multi = len(ranks) > 1

            def on_outcome(out: StepOutcome) -> None:
                nonlocal total_minibatches
                if floor is not None and multi and out.clock_time <= floor:
                    raise RuntimeError(
                        f"zero-duration step for trainer {out.rank} in a "
                        f"batched release at t={floor}: batched execution "
                        f"requires strictly positive step durations"
                    )
                trainer_steps[out.rank] += 1
                state["epoch_steps"][out.rank] += 1
                total_minibatches += 1
                grads = policy.process_step(out.rank, out.grads)
                loop.push(
                    out.clock_time,
                    "step-done",
                    out.rank,
                    contribution=StepContribution(
                        out.rank, out.loss, out.n_correct, out.n_seen, grads
                    ),
                    step_critical=out.critical_path,
                )

            backend.run_steps(
                requests,
                before_step=policy.before_step,
                on_outcome=on_outcome,
                on_exhausted=mark_exhausted,
            )

        def on_step_done(ev: Event) -> None:
            rank, now = ev.rank, ev.time
            # Failure (if scheduled for the step that just finished) lands
            # *before* the policy reacts: the gradient still counts — the
            # compute completed — but the trainer goes dark before it can be
            # released, so peers meet the outage at their next sync point.
            if schedule is not None:
                factor = schedule.downtime_factor(rank, trainer_steps[rank] - 1)
                if factor is not None:
                    fail(rank, now, factor * max(ev.payload["step_critical"], 1e-12))
            policy.on_step_done(ev.payload["contribution"], now)

        def fail(rank: int, now: float, downtime: float) -> None:
            down[rank] = True
            loop.push(now, "fail", rank)  # observational marker in the history
            clock = trainers[rank].clock
            clock.advance(downtime, "downtime")
            extras = sync_extras[rank]
            extras["failures"] = extras.get("failures", 0.0) + 1.0
            extras["downtime_s"] = extras.get("downtime_s", 0.0) + downtime
            loop.push(clock.time, "recover", rank)

        def on_recover(ev: Event) -> None:
            rank = ev.rank
            down[rank] = False
            if pending_release[rank]:
                pending_release[rank] = False
                schedule_ready(rank)

        handlers = {
            "step-ready": on_step_ready,
            "step-done": on_step_done,
            "recover": on_recover,
            "fail": lambda ev: None,
        }

        ctx = SyncContext(
            trainers=trainers,
            model=model,
            optimizer=optimizer,
            cost_model=cluster.cost_model,
            num_params=setup.num_params,
            accumulators=accumulators,
            barrier_waits=barrier_waits,
            sync_extras=sync_extras,
            train_config=config,
            schedule_ready=schedule_ready,
            record_round=record_round,
            record_step=record_step,
            start_step=start_step,
            start_steps=start_steps,
            apply_update=backend.apply_update,
        )
        policy.bind(ctx)

        # ---------------- epoch loop ----------------
        epoch_records: List[EpochRecord] = []
        previous_epoch_end = max(t.clock.time for t in trainers) if trainers else 0.0

        for epoch in range(config.epochs):
            backend.begin_epoch()
            state = {
                "active": [True] * world,
                "epoch_done": [False] * world,
                "epoch_steps": [0] * world,
                "losses": [],
                "correct": 0,
                "seen": 0,
            }
            policy.on_epoch_start(list(range(world)))
            for rank in range(world):
                schedule_ready(rank)

            while True:
                ev = loop.pop()
                if ev is None:
                    break
                handlers[ev.kind](ev)

            stranded = [r for r in range(world) if not state["epoch_done"][r]]
            if stranded:
                raise RuntimeError(
                    f"event loop drained with trainers {stranded} stranded in epoch "
                    f"{epoch}: sync policy {policy.name!r} failed to release them"
                )
            policy.on_epoch_end()

            epoch_end = max(t.clock.time for t in trainers) if trainers else 0.0
            hit_rates = [h for h in backend.epoch_hit_rates() if h is not None]
            losses = state["losses"]
            epoch_records.append(
                EpochRecord(
                    epoch=epoch,
                    simulated_time_s=epoch_end - previous_epoch_end,
                    loss=float(np.mean(losses)) if losses else 0.0,
                    train_accuracy=(
                        state["correct"] / state["seen"] if state["seen"] else 0.0
                    ),
                    hit_rate=float(np.mean(hit_rates)) if hit_rates else None,
                )
            )
            previous_epoch_end = epoch_end
            backend.end_epoch()

        policy.on_run_end()
        if self.record_events:
            self.event_history = list(loop.history)

        artifacts = backend.collect_artifacts()
        report = assemble_training_report(
            mode=setup.mode,
            cluster=cluster,
            train_config=config,
            artifacts=artifacts,
            epoch_records=epoch_records,
            init_reports=setup.init_reports,
            total_minibatches=total_minibatches,
            wall_clock_s=time.perf_counter() - setup.wall_start,
            model=model,
            prefetch_config=prefetch_config,
        )
        self._final_model = model
        return ClusterReport(
            report=report,
            trainer_stats=collect_trainer_stats(
                cluster, artifacts, trainer_steps, barrier_waits, sync_extras
            ),
            scenario=self.scenario,
            store_summary=merged_store_summary_from_artifacts(artifacts),
            engine="async",
            sync=policy.describe(),
        )

    # ------------------------------------------------------------------ #
    @property
    def final_model(self):
        """The trained model from the most recent run."""
        model = getattr(self, "_final_model", None)
        if model is None:
            raise RuntimeError("no cluster run has completed yet")
        return model
