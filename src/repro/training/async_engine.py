"""Event-driven cluster execution: trainers post events instead of lockstepping.

:class:`AsyncClusterEngine` is the discrete-event counterpart of the lockstep
:class:`~repro.training.cluster_engine.ClusterEngine`.  Instead of marching
every trainer to a shared allreduce barrier each step, trainers post
**step-completion events** onto a deterministic
:class:`~repro.events.loop.EventLoop` (ties broken by ``(timestamp, rank,
seq)``), and a pluggable :class:`~repro.events.sync.SyncPolicy` from
:data:`~repro.events.sync.SYNC_POLICIES` decides when gradients meet the
model:

* ``allreduce-barrier`` reproduces the lockstep engine **bit-identically** —
  same losses, clocks, barrier waits, and RPC wire counters on the golden
  2x2 workload (pinned by ``tests/test_async_engine.py``);
* ``bounded-staleness`` lets trainers run up to K rounds ahead, applying
  stale averaged gradients — stragglers stop dragging the whole cluster;
* ``local-sgd`` gives every trainer its own parameter replica and averages
  them every H steps.

The event loop is also where behaviours a barrier cannot express live:

* **transient failures** (``trainer-flaky`` scenario) — a seeded
  :class:`~repro.events.schedule.FailureSchedule` takes a trainer down after
  selected steps; the outage is booked as ``downtime`` on its clock, a
  ``fail``/``recover`` event pair lands in the loop, and peers feel the gap
  through whichever sync policy is active.  Same seed ⇒ bit-identical replay.
* **time-varying congestion** (``congested-link`` scenario) — handled below
  the engine by :class:`~repro.distributed.cost_model.CongestedCostModel`,
  which the event-driven clocks make meaningful (different trainers hit
  different bursts).
* **elastic membership** (``scale-out-burst``/``cascading-failure``/
  ``rolling-upgrade`` scenarios) — a seeded
  :class:`~repro.events.schedule.ElasticSpec` holds ranks out, joins them, or
  removes them mid-run.  Every membership change lands a ``rebalance`` event
  that re-splits the machine's seed ownership (and adopts a fully drained
  machine's partition onto a survivor); the data movement is charged through
  :meth:`~repro.distributed.cost_model.CostModel.time_migration` as the
  ``migration`` clock component.  Joins take effect on scheduling at the next
  epoch boundary; leaves drain immediately (after the in-flight step, whose
  gradient still counts).
* **checkpoint/restore** (:mod:`repro.training.checkpoint`) — whenever
  failures or elasticity are in play, the engine captures the consensus
  model/optimizer state after every applied sync round; a trainer recovering
  from an outage restores from the last checkpoint (resuming from its step,
  not step 0) and pays the restore transfer as ``migration`` time.

All stress inputs arrive through one seam: each spec implements
:class:`~repro.events.schedule.ScheduleSpec` and the engine calls
``spec.materialize(world_size, seed)`` to obtain the runtime schedule.

Everything around the event core — run setup, per-step compute, telemetry
roll-up — is shared with the lockstep engine via the module-level helpers in
:mod:`repro.training.cluster_engine`, so the two engines cannot drift.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Union

import numpy as np

from repro.cache.config import CacheConfig
from repro.core.config import PrefetchConfig
from repro.core.eviction import EvictionPolicy
from repro.distributed.cluster import SimCluster
from repro.distributed.cost_model import BYTES_PER_FEATURE
from repro.events.loop import Event, EventLoop
from repro.events.schedule import ElasticSpec, FailureSpec
from repro.events.sync import SYNC_POLICIES, StepContribution, SyncContext
from repro.training.checkpoint import CheckpointStore
from repro.training.cluster_engine import (
    ClusterReport,
    collect_trainer_stats,
    merged_store_summary_from_artifacts,
)
from repro.training.config import TrainConfig
from repro.training.engine import (
    PipelineBuilder,
    assemble_training_report,
)
from repro.training.telemetry import EpochRecord


class AsyncClusterEngine:
    """Run one pipeline per trainer, scheduled by a discrete-event loop.

    Parameters
    ----------
    cluster, train_config, scenario:
        As for :class:`~repro.training.cluster_engine.ClusterEngine`.
    sync:
        Name of the gradient synchronization policy
        (:data:`~repro.events.sync.SYNC_POLICIES`).
    sync_options:
        Keyword arguments for the policy factory (e.g. ``staleness=2`` for
        ``bounded-staleness``, ``sync_period=4`` for ``local-sgd``).
    failures:
        Optional :class:`~repro.events.schedule.FailureSpec`; when set, a
        seeded schedule injects transient trainer outages.
    elastic:
        Optional :class:`~repro.events.schedule.ElasticSpec`; when set (and
        non-empty), a seeded membership timeline holds ranks out, joins them,
        or removes them mid-run, with seed ownership re-split and migration
        charged on every change.  Requires the inline execution backend and
        a sync policy without per-trainer replicas.
    record_events:
        Keep the popped-event history on :attr:`event_history` after a run
        (the determinism tests compare histories across runs).
    """

    def __init__(
        self,
        cluster: SimCluster,
        train_config: TrainConfig,
        scenario: Optional[str] = None,
        sync: str = "allreduce-barrier",
        sync_options: Optional[Dict[str, object]] = None,
        failures: Optional[FailureSpec] = None,
        elastic: Optional[ElasticSpec] = None,
        record_events: bool = False,
        execution_backend: str = "inline",
        workers: Optional[int] = None,
    ):
        from repro.training.backends import EXECUTION_BACKENDS

        self.cluster = cluster
        self.config = train_config
        self.cost_model = cluster.cost_model
        self.dataset = cluster.dataset
        self.scenario = scenario
        self.sync = SYNC_POLICIES.resolve(sync)
        self.sync_options = dict(sync_options or {})
        self.failures = failures
        self.elastic = elastic
        self.record_events = record_events
        self.execution_backend = EXECUTION_BACKENDS.resolve(execution_backend)
        self.workers = workers
        #: ``(kind, time, rank, seq)`` tuples of the last run (record_events).
        self.event_history: List[tuple] = []
        cluster.validate_seed_coverage()

    # ------------------------------------------------------------------ #
    def run(
        self,
        pipeline: Union[str, PipelineBuilder] = "baseline",
        prefetch_config: Optional[PrefetchConfig] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        cache_config: Optional[CacheConfig] = None,
    ) -> ClusterReport:
        """Train the cluster event-driven; same contract as the lockstep engine."""
        from repro.training.backends import EXECUTION_BACKENDS

        cluster, config = self.cluster, self.config
        policy = SYNC_POLICIES.build(self.sync, **self.sync_options)
        backend = EXECUTION_BACKENDS.build(
            self.execution_backend, cluster, config, workers=self.workers
        )
        if policy.owns_replicas and not backend.supports_replica_policies:
            backend.close()
            raise ValueError(
                f"sync policy {policy.name!r} owns per-trainer model replicas "
                f"and requires the inline execution backend "
                f"(got {backend.name!r})"
            )
        if self.elastic is not None and not self.elastic.is_empty:
            if self.execution_backend != "inline":
                backend.close()
                raise ValueError(
                    "elastic membership requires the inline execution backend "
                    f"(got {backend.name!r})"
                )
            if policy.owns_replicas:
                backend.close()
                raise ValueError(
                    f"elastic membership is incompatible with sync policy "
                    f"{policy.name!r}: replica averaging over dynamic "
                    f"membership is undefined"
                )
        try:
            return self._run(
                backend, policy, pipeline, prefetch_config, eviction_policy, cache_config
            )
        finally:
            backend.close()

    def _run(
        self,
        backend,
        policy,
        pipeline: Union[str, PipelineBuilder],
        prefetch_config: Optional[PrefetchConfig],
        eviction_policy: Optional[EvictionPolicy],
        cache_config: Optional[CacheConfig],
    ) -> ClusterReport:
        """The event loop proper, once backend and policy are validated."""
        from repro.training.backends import StepOutcome

        cluster, config = self.cluster, self.config
        setup = backend.prepare(pipeline, prefetch_config, eviction_policy, cache_config)
        trainers = cluster.trainers
        world = len(trainers)
        model, optimizer = setup.model, setup.optimizer
        accumulators = setup.accumulators

        loop = EventLoop(record=self.record_events)
        # Stress schedules materialize through the one ScheduleSpec seam.
        schedule = (
            self.failures.materialize(world, cluster.config.seed)
            if self.failures is not None
            else None
        )
        elastic_schedule = (
            self.elastic.materialize(world, cluster.config.seed)
            if self.elastic is not None and not self.elastic.is_empty
            else None
        )

        # Mutable run state shared with the nested handlers.
        trainer_steps = [0] * world          # lifetime steps (drives Δ/Eq. 4 + failures)
        barrier_waits = [0.0] * world
        sync_extras: List[Dict[str, float]] = [{} for _ in range(world)]
        down = [False] * world
        pending_release = [False] * world
        total_minibatches = 0

        # Elastic membership state.  member_active is the authoritative
        # roster; it changes mid-run only under an elastic schedule, and the
        # per-epoch scheduling state is derived from it at epoch start.
        member_active = [True] * world
        inflight = [False] * world           # a step-done event is in the loop
        # Membership events landing mid-step defer past the in-flight step and
        # replay in arrival order at its step-done ("leave"/"join" strings), so
        # a leave→rejoin pair spanning one long step still detaches *and*
        # reactivates instead of the rejoin being dropped as a no-op.
        deferred: List[List[str]] = [[] for _ in range(world)]
        rebalance_salts: Dict[int, int] = {}
        tpm = cluster.config.trainers_per_machine
        if elastic_schedule is not None:
            for held_rank in elastic_schedule.initially_inactive:
                member_active[held_rank] = False

        # Consensus checkpointing: captured after every applied sync round
        # whenever a recovery (failures) or membership change (elastic) could
        # need it; None keeps the legacy apply path bit-identical.
        checkpoint_store = (
            CheckpointStore()
            if schedule is not None or elastic_schedule is not None
            else None
        )
        self.checkpoint_store = checkpoint_store
        applied_rounds = [0]

        if checkpoint_store is not None:

            def apply_update(averaged) -> None:
                backend.apply_update(averaged)
                applied_rounds[0] += 1
                now = max(t.clock.time for t in trainers) if trainers else 0.0
                checkpoint_store.update(model, optimizer, applied_rounds[0], now)

        else:
            apply_update = backend.apply_update

        # Per-epoch state, rebound at each epoch start.
        state: Dict[str, object] = {}

        def schedule_ready(rank: int) -> None:
            """Policy callback: the trainer may begin its next step.

            Routed through the engine so epoch caps, exhausted iterators, and
            failure outages are honoured before an event lands in the loop.
            """
            if not state["active"][rank]:
                return
            if (
                config.max_steps_per_epoch is not None
                and state["epoch_steps"][rank] >= config.max_steps_per_epoch
            ):
                mark_exhausted(rank)
                return
            if down[rank]:
                pending_release[rank] = True
                return
            loop.push(trainers[rank].clock.time, "step-ready", rank)

        def mark_exhausted(rank: int) -> None:
            state["active"][rank] = False
            state["epoch_done"][rank] = True
            policy.on_trainer_exhausted(rank, trainers[rank].clock.time)

        def record_round(contributions: List[StepContribution]) -> None:
            for c in contributions:
                record_step(c)

        def record_step(c: StepContribution) -> None:
            state["losses"].append(c.loss)
            state["correct"] = state["correct"] + c.n_correct
            state["seen"] = state["seen"] + c.n_seen

        # ---------------- event handlers ----------------
        def on_step_ready(ev: Event) -> None:
            # Batch every consecutive same-timestamp step-ready event into one
            # handler pass: popping them up front assigns no event seqs and
            # preserves the serial pop order, but it hands the execution
            # backend a whole cohort to compute in parallel.  Collection stops
            # at any other event kind, so interleaved same-time events (e.g. a
            # recover) keep their serial position.
            batch = [ev]
            nxt = loop.peek()
            while nxt is not None and nxt.kind == "step-ready" and nxt.time == ev.time:
                batch.append(loop.pop())
                nxt = loop.peek()
            starts: List[int] = []
            for e in batch:
                rank = e.rank
                if not state["active"][rank]:
                    # The rank detached (elastic leave) after this ready
                    # event was queued; never hand it to the policy.
                    continue
                if down[rank]:
                    # Unreachable under the shipped policies (a trainer can
                    # only fail during its own step-done, before any release),
                    # but a future policy releasing early must not start a
                    # downed trainer.
                    pending_release[rank] = True
                    continue
                if not policy.can_start(rank):
                    continue  # the policy holds the trainer (and starts it itself)
                starts.append(rank)
            if len(starts) == 1:
                start_step(starts[0])
            elif starts:
                run_requests(starts, floor=ev.time)

        def start_step(rank: int) -> None:
            run_requests([rank])

        def start_steps(ranks: List[int]) -> None:
            run_requests(list(ranks))

        def run_requests(ranks: List[int], floor: Optional[float] = None) -> None:
            """Step *ranks* (ascending) through the execution backend.

            Opens each trainer's RPC coalescing window for its current round
            *before* advancing the pipeline generator — the halo fetch runs
            inside next().  Same-machine trainers in the same round share the
            window (begin_step with an unchanged id is idempotent), so
            barrier-mode coalescing matches the lockstep engine's, which also
            opens the round's windows before any trainer fetches.

            ``floor`` guards batched same-time releases: a zero-duration step
            would let its completion event overtake an already-collected
            ready event, diverging from the serial order, so it is an error.
            """
            requests = [(r, policy.coalescing_round(r)) for r in ranks]
            multi = len(ranks) > 1

            def on_outcome(out: StepOutcome) -> None:
                nonlocal total_minibatches
                if floor is not None and multi and out.clock_time <= floor:
                    raise RuntimeError(
                        f"zero-duration step for trainer {out.rank} in a "
                        f"batched release at t={floor}: batched execution "
                        f"requires strictly positive step durations"
                    )
                trainer_steps[out.rank] += 1
                state["epoch_steps"][out.rank] += 1
                total_minibatches += 1
                inflight[out.rank] = True
                grads = policy.process_step(out.rank, out.grads)
                loop.push(
                    out.clock_time,
                    "step-done",
                    out.rank,
                    contribution=StepContribution(
                        out.rank, out.loss, out.n_correct, out.n_seen, grads
                    ),
                    step_critical=out.critical_path,
                )

            backend.run_steps(
                requests,
                before_step=policy.before_step,
                on_outcome=on_outcome,
                on_exhausted=mark_exhausted,
            )

        def on_step_done(ev: Event) -> None:
            rank, now = ev.rank, ev.time
            inflight[rank] = False
            # Failure (if scheduled for the step that just finished) lands
            # *before* the policy reacts: the gradient still counts — the
            # compute completed — but the trainer goes dark before it can be
            # released, so peers meet the outage at their next sync point.
            if schedule is not None:
                factor = schedule.downtime_factor(rank, trainer_steps[rank] - 1)
                if factor is not None:
                    fail(rank, now, factor * max(ev.payload["step_critical"], 1e-12))
            policy.on_step_done(ev.payload["contribution"], now)
            if deferred[rank]:
                # Elastic membership events that landed mid-step replay now,
                # in arrival order: the contribution above still counted.
                ops, deferred[rank] = deferred[rank], []
                for op in ops:
                    if op == "leave":
                        detach(rank, now)
                    else:
                        activate(rank, now)

        def fail(rank: int, now: float, downtime: float) -> None:
            down[rank] = True
            loop.push(now, "fail", rank)  # observational marker in the history
            clock = trainers[rank].clock
            clock.advance(downtime, "downtime")
            extras = sync_extras[rank]
            extras["failures"] = extras.get("failures", 0.0) + 1.0
            extras["downtime_s"] = extras.get("downtime_s", 0.0) + downtime
            if checkpoint_store is not None and checkpoint_store.latest is not None:
                # Recover from the last consensus state: numerically a no-op
                # between sync rounds (the shared replica *is* consensus), but
                # the provenance and the costed restore transfer are real.
                ckpt = checkpoint_store.restore(model, optimizer)
                restore_s = cluster.cost_model_for_machine(
                    trainers[rank].machine
                ).time_migration(ckpt.nbytes())
                clock.advance(restore_s, "migration")
                extras["restores"] = extras.get("restores", 0.0) + 1.0
                extras["restored_from_step"] = float(ckpt.step)
                extras["restore_s"] = extras.get("restore_s", 0.0) + restore_s
            loop.push(clock.time, "recover", rank)

        def on_recover(ev: Event) -> None:
            rank = ev.rank
            down[rank] = False
            if pending_release[rank]:
                pending_release[rank] = False
                schedule_ready(rank)

        # ---------------- elastic membership handlers ----------------
        def next_salt(machine: int) -> int:
            rebalance_salts[machine] = rebalance_salts.get(machine, 0) + 1
            return rebalance_salts[machine]

        def rebalance_machine(machine: int, charge: bool = True) -> None:
            """Re-split *machine*'s seed ownership across its active trainers.

            With survivors on the machine, the partition is first brought
            home (if a drain had moved it elsewhere) and the training seeds
            re-split across the active local ranks; each receiving trainer
            pays for its newly assigned seed rows through the cost model.
            With the machine fully drained, its partition is adopted by the
            lowest-indexed machine that still has an active trainer, and the
            adopters pay for the KVStore payload (plus the shared cache tier
            under the ``"warm"`` policy; ``"invalidate"`` drops it cold).
            """
            cache_policy = self.elastic.cache_policy
            feature_dim = cluster.dataset.feature_dim
            active_locals = [
                lr for lr in range(tpm) if member_active[machine * tpm + lr]
            ]
            if active_locals:
                home_bytes = cluster.migrate_partition(machine, machine, cache_policy)
                moved = cluster.rebalance_seeds(
                    machine, active_locals, salt=next_salt(machine)
                )
                cost = cluster.cost_model_for_machine(machine)
                for i, lr in enumerate(active_locals):
                    rank = machine * tpm + lr
                    extras = sync_extras[rank]
                    extras["rebalances"] = extras.get("rebalances", 0.0) + 1.0
                    if not charge:
                        continue
                    nbytes = moved.get(rank, 0) * feature_dim * BYTES_PER_FEATURE
                    if i == 0:
                        nbytes += home_bytes
                    if nbytes <= 0:
                        continue
                    migration_s = cost.time_migration(nbytes)
                    trainers[rank].clock.advance(migration_s, "migration")
                    extras["migration_bytes"] = (
                        extras.get("migration_bytes", 0.0) + float(nbytes)
                    )
                    extras["migration_s"] = (
                        extras.get("migration_s", 0.0) + migration_s
                    )
                return
            host = next(
                (
                    m
                    for m in range(cluster.config.num_machines)
                    if any(member_active[m * tpm + lr] for lr in range(tpm))
                ),
                None,
            )
            if host is None:
                return  # every rank left; nothing can adopt the partition
            moved_bytes = cluster.migrate_partition(machine, host, cache_policy)
            if moved_bytes <= 0:
                return
            host_actives = [
                host * tpm + lr for lr in range(tpm) if member_active[host * tpm + lr]
            ]
            if charge:
                migration_s = cluster.cost_model_for_machine(host).time_migration(
                    moved_bytes
                )
                for rank in host_actives:
                    trainers[rank].clock.advance(migration_s, "migration")
                    extras = sync_extras[rank]
                    extras["migration_s"] = (
                        extras.get("migration_s", 0.0) + migration_s
                    )
                extras = sync_extras[host_actives[0]]
                extras["migration_bytes"] = (
                    extras.get("migration_bytes", 0.0) + float(moved_bytes)
                )

        def detach(rank: int, now: float) -> None:
            member_active[rank] = False
            extras = sync_extras[rank]
            extras["leaves"] = extras.get("leaves", 0.0) + 1.0
            if not state["epoch_done"][rank]:
                mark_exhausted(rank)
            else:
                state["active"][rank] = False
            loop.push(now, "rebalance", rank, machine=trainers[rank].machine)

        def activate(rank: int, now: float) -> None:
            member_active[rank] = True
            trainers[rank].clock.advance_to(now, "idle")
            extras = sync_extras[rank]
            extras["joins"] = extras.get("joins", 0.0) + 1.0
            # Scheduling picks the rank up at the next epoch start; the seed
            # re-split happens now so the next epoch's shuffle sees it.
            loop.push(now, "rebalance", rank, machine=trainers[rank].machine)

        def on_join(ev: Event) -> None:
            rank = ev.rank
            if member_active[rank]:
                if deferred[rank]:
                    # A leave is deferred past the in-flight step; the rejoin
                    # queues behind it and replays at the same step-done.
                    deferred[rank].append("join")
                return
            activate(rank, ev.time)

        def on_leave(ev: Event) -> None:
            rank = ev.rank
            if not member_active[rank]:
                return
            if inflight[rank]:
                deferred[rank].append("leave")
            else:
                detach(rank, ev.time)

        def on_rebalance(ev: Event) -> None:
            rebalance_machine(ev.payload["machine"])

        handlers = {
            "step-ready": on_step_ready,
            "step-done": on_step_done,
            "recover": on_recover,
            "fail": lambda ev: None,
            "join": on_join,
            "leave": on_leave,
            "rebalance": on_rebalance,
        }

        ctx = SyncContext(
            trainers=trainers,
            model=model,
            optimizer=optimizer,
            cost_model=cluster.cost_model,
            num_params=setup.num_params,
            accumulators=accumulators,
            barrier_waits=barrier_waits,
            sync_extras=sync_extras,
            train_config=config,
            schedule_ready=schedule_ready,
            record_round=record_round,
            record_step=record_step,
            start_step=start_step,
            start_steps=start_steps,
            apply_update=apply_update,
        )
        policy.bind(ctx)

        # ---------------- elastic setup ----------------
        if elastic_schedule is not None:
            # Initial holdout: strip the held-out ranks' seeds and hand them
            # to the active trainers (uncharged — this is the starting
            # deployment, not a mid-run migration), adopting any fully
            # drained machine's partition onto a survivor.
            for machine in range(cluster.config.num_machines):
                machine_ranks = range(machine * tpm, (machine + 1) * tpm)
                if any(not member_active[r] for r in machine_ranks):
                    rebalance_machine(machine, charge=False)
            # The whole membership timeline lands in the loop up front; the
            # heap interleaves it with step events by simulated time.
            for event_time, kind, rank in elastic_schedule.events:
                loop.push(event_time, kind, rank)

        # ---------------- epoch loop ----------------
        epoch_records: List[EpochRecord] = []
        previous_epoch_end = max(t.clock.time for t in trainers) if trainers else 0.0

        for epoch in range(config.epochs):
            backend.begin_epoch()
            state = {
                "active": list(member_active),
                "epoch_done": [not active for active in member_active],
                "epoch_steps": [0] * world,
                "losses": [],
                "correct": 0,
                "seen": 0,
            }
            policy.on_epoch_start(
                [rank for rank in range(world) if member_active[rank]]
            )
            for rank in range(world):
                schedule_ready(rank)

            while True:
                ev = loop.pop()
                if ev is None:
                    break
                handlers[ev.kind](ev)

            stranded = [r for r in range(world) if not state["epoch_done"][r]]
            if stranded:
                raise RuntimeError(
                    f"event loop drained with trainers {stranded} stranded in epoch "
                    f"{epoch}: sync policy {policy.name!r} failed to release them"
                )
            policy.on_epoch_end()

            epoch_end = max(t.clock.time for t in trainers) if trainers else 0.0
            hit_rates = [h for h in backend.epoch_hit_rates() if h is not None]
            losses = state["losses"]
            epoch_records.append(
                EpochRecord(
                    epoch=epoch,
                    simulated_time_s=epoch_end - previous_epoch_end,
                    loss=float(np.mean(losses)) if losses else 0.0,
                    train_accuracy=(
                        state["correct"] / state["seen"] if state["seen"] else 0.0
                    ),
                    hit_rate=float(np.mean(hit_rates)) if hit_rates else None,
                )
            )
            previous_epoch_end = epoch_end
            backend.end_epoch()

        policy.on_run_end()
        if self.record_events:
            self.event_history = list(loop.history)

        artifacts = backend.collect_artifacts()
        report = assemble_training_report(
            mode=setup.mode,
            cluster=cluster,
            train_config=config,
            artifacts=artifacts,
            epoch_records=epoch_records,
            init_reports=setup.init_reports,
            total_minibatches=total_minibatches,
            wall_clock_s=time.perf_counter() - setup.wall_start,
            model=model,
            prefetch_config=prefetch_config,
        )
        self._final_model = model
        return ClusterReport(
            report=report,
            trainer_stats=collect_trainer_stats(
                cluster, artifacts, trainer_steps, barrier_waits, sync_extras
            ),
            scenario=self.scenario,
            store_summary=merged_store_summary_from_artifacts(artifacts),
            engine="async",
            sync=policy.describe(),
        )

    # ------------------------------------------------------------------ #
    @property
    def final_model(self):
        """The trained model from the most recent run."""
        model = getattr(self, "_final_model", None)
        if model is None:
            raise RuntimeError("no cluster run has completed yet")
        return model
