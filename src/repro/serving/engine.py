"""Event-driven online inference over a simulated cluster.

:class:`InferenceClusterEngine` is the serving counterpart of the training
engines: the same :class:`~repro.distributed.cluster.SimCluster`, pipelines,
and cost models, but driven by an open-loop request stream instead of epochs.
Each request is one user's ego-net inference:

1. an :data:`~repro.serving.arrivals.ARRIVALS` generator emits seeded
   ``(arrival_time, phase)`` pairs and a popularity-skewed user draw routes
   every request to the worker that **owns** the user's node (partition
   ownership, not load balancing — the same locality the training side
   exploits);
2. the worker's :class:`~repro.sampling.dataloader.DistDataLoader` samples
   the user's ego-net, the
   :class:`~repro.features.store.FeatureStore` fetches features through the
   tiered cache / batched-RPC path, and the model runs a forward-only pass;
3. every component is charged to the worker's
   :class:`~repro.distributed.clock.SimClock` and booked on the request's
   :class:`~repro.serving.report.RequestRecord` — queue wait falls out of
   FIFO service on the shared :class:`~repro.events.loop.EventLoop`.

Cache warm-up (the pipelines' init cost) happens *before* the serving
timeline starts and is reported as ``warmup_time_s``, so latency percentiles
measure steady-state serving, not one-time population.

Determinism is the async engine's contract: the loop breaks ties by
``(timestamp, rank, seq)`` and every stochastic choice derives from the
cluster seed, so the same seed replays the identical event history and the
identical :class:`~repro.serving.report.ServingReport` (pinned by
``tests/test_serving.py``).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, List, Optional, Union

import numpy as np

from repro.cache.config import CacheConfig
from repro.core.config import PrefetchConfig
from repro.core.eviction import EvictionPolicy
from repro.distributed.cluster import SimCluster
from repro.events.loop import Event, EventLoop
from repro.serving.arrivals import ServingSpec, build_arrivals
from repro.serving.report import RequestRecord, ServingReport, WorkerServeStats
from repro.training.cluster_engine import merged_store_summary, prepare_cluster_run
from repro.training.config import TrainConfig
from repro.training.engine import PipelineBuilder
from repro.utils.rng import derive_seed, ensure_rng

# Forward-only inference: train_step charges model.flops() for the full
# forward+backward+update of a step; a serving request runs just the forward
# pass, roughly one third of that FLOP count on the MLP-style layers here.
FORWARD_FRACTION = 1.0 / 3.0

# derive_seed salts of the serving engine's RNG streams (disjoint from the
# cluster's 101/211/307 spawn salts and the failure schedule's 761).
_ARRIVAL_SALT = 977
_USER_SALT = 983


class InferenceClusterEngine:
    """Serve an open-loop request stream with one worker per trainer context.

    Parameters
    ----------
    cluster, train_config, scenario:
        As for :class:`~repro.training.cluster_engine.ClusterEngine`; the
        train config supplies the model architecture/seed (a serving fleet
        loads the model training produced).
    serving:
        The :class:`~repro.serving.arrivals.ServingSpec` describing the
        arrival process, SLO, and user-popularity skew.
    record_events:
        Keep the popped-event history on :attr:`event_history` after a run
        (the determinism tests compare histories across runs).
    """

    def __init__(
        self,
        cluster: SimCluster,
        train_config: TrainConfig,
        scenario: Optional[str] = None,
        serving: Optional[ServingSpec] = None,
        record_events: bool = False,
    ):
        if serving is None:
            raise ValueError(
                "InferenceClusterEngine needs a ServingSpec (scenario field "
                "'serving'); training scenarios have none"
            )
        self.cluster = cluster
        self.config = train_config
        self.dataset = cluster.dataset
        self.scenario = scenario
        self.serving = serving
        self.record_events = record_events
        #: ``(kind, time, rank, seq)`` tuples of the last run (record_events).
        self.event_history: List[tuple] = []
        #: per-request ledgers of the last run (tests introspect these).
        self.request_records: List[RequestRecord] = []
        cluster.validate_seed_coverage()

    # ------------------------------------------------------------------ #
    def run(
        self,
        pipeline: Union[str, PipelineBuilder] = "tiered-cache",
        prefetch_config: Optional[PrefetchConfig] = None,
        eviction_policy: Optional[EvictionPolicy] = None,
        cache_config: Optional[CacheConfig] = None,
    ) -> ServingReport:
        """Serve ``serving.num_requests`` requests; returns the run's report."""
        cluster, spec = self.cluster, self.serving
        setup = prepare_cluster_run(
            cluster, self.config, pipeline, prefetch_config, eviction_policy, cache_config
        )
        trainers = cluster.trainers
        world = len(trainers)
        model = setup.model
        pipelines = setup.pipelines
        for pl in pipelines:
            if pl.feature_store is None:
                raise RuntimeError(
                    f"pipeline {pl.name!r} has no feature store; serving needs "
                    "the feature-fetch path (use 'tiered-cache' or 'prefetch')"
                )

        # Cache warm-up (init cost) stays off the serving timeline: record it,
        # then restart every clock at t=0 where the arrival process begins.
        warmup_time_s = max((t.clock.time for t in trainers), default=0.0)
        for trainer in trainers:
            trainer.clock.reset()

        # ---------------- the request stream ----------------
        seed = cluster.config.seed
        process = build_arrivals(spec)
        times, phases = process.generate(
            spec.num_requests, derive_seed(seed, _ARRIVAL_SALT)
        )
        users_global, users_local, users_rank = self._draw_users(
            phases, derive_seed(seed, _USER_SALT)
        )

        loop = EventLoop(record=self.record_events)
        n = spec.num_requests
        for i in range(n):
            loop.push(float(times[i]), "request", int(users_rank[i]), request=i)

        # ---------------- FIFO service per worker ----------------
        queues: List[Deque[int]] = [deque() for _ in range(world)]
        busy = [False] * world
        records: List[Optional[RequestRecord]] = [None] * n
        worker_requests = [0] * world
        worker_hits = [0] * world
        worker_misses = [0] * world

        def start_service(rank: int, now: float) -> None:
            i = queues[rank].popleft()
            trainer = trainers[rank]
            clock = trainer.clock
            clock.advance_to(now, "idle")
            start_s = clock.time
            # One coalescing window per request: the halo pulls of a single
            # ego-net batch share an RPC round, but requests never batch with
            # each other — latency is per-request, not per-convoy.
            trainer.rpc.begin_step(i)
            minibatch = trainer.dataloader.sample(
                np.asarray([users_local[i]], dtype=np.int64)
            )
            features, fetch_result = pipelines[rank].feature_store.fetch_minibatch(
                minibatch
            )
            fetch = fetch_result.merged
            cost = setup.cost_models[rank]

            sample_s = cost.time_sampling(minibatch.total_edges())
            lookup_s = cost.time_lookup(fetch.lookup_nodes)
            scoring_s = cost.time_scoring(fetch.scoring_nodes)
            eviction_s = (
                cost.time_eviction(fetch.buffer_capacity, fetch.nodes_replaced)
                if fetch.eviction_round
                else 0.0
            )
            fetch_s = (
                fetch.rpc_time_s + fetch.copy_time_s + lookup_s + scoring_s + eviction_s
            )
            model.forward(minibatch.blocks, features)
            compute_s = cost.time_compute(model.flops(minibatch) * FORWARD_FRACTION)

            clock.advance(sample_s, "sampling")
            clock.advance(fetch.rpc_time_s, "rpc")
            clock.advance(fetch.copy_time_s, "copy")
            clock.advance(lookup_s, "lookup")
            clock.advance(scoring_s, "scoring")
            clock.advance(eviction_s, "eviction")
            clock.advance(compute_s, "compute")

            worker_requests[rank] += 1
            worker_hits[rank] += fetch.num_hits
            worker_misses[rank] += fetch.num_misses
            records[i] = RequestRecord(
                request=i,
                user=int(users_global[i]),
                global_rank=rank,
                machine=trainer.machine,
                phase=int(phases[i]),
                arrival_s=float(times[i]),
                start_s=start_s,
                done_s=clock.time,
                sample_s=sample_s,
                fetch_s=fetch_s,
                compute_s=compute_s,
            )
            loop.push(clock.time, "done", rank, request=i)

        def on_request(ev: Event) -> None:
            rank = ev.rank
            queues[rank].append(ev.payload["request"])
            if not busy[rank]:
                busy[rank] = True
                start_service(rank, ev.time)

        def on_done(ev: Event) -> None:
            rank = ev.rank
            if queues[rank]:
                start_service(rank, ev.time)
            else:
                busy[rank] = False

        handlers = {"request": on_request, "done": on_done}
        while True:
            ev = loop.pop()
            if ev is None:
                break
            handlers[ev.kind](ev)

        stranded = [i for i in range(n) if records[i] is None]
        if stranded:
            raise RuntimeError(
                f"event loop drained with requests {stranded[:5]} unserved: "
                "the FIFO release chain broke"
            )
        if self.record_events:
            self.event_history = list(loop.history)
        self.request_records = [r for r in records if r is not None]

        # ---------------- roll-up ----------------
        worker_stats = []
        for rank, (trainer, pl) in enumerate(zip(trainers, pipelines)):
            total = worker_hits[rank] + worker_misses[rank]
            worker_stats.append(
                WorkerServeStats(
                    global_rank=trainer.global_rank,
                    machine=trainer.machine,
                    local_rank=trainer.local_rank,
                    requests=worker_requests[rank],
                    busy_time_s=trainer.clock.time
                    - trainer.clock.component_time("idle"),
                    hit_rate=worker_hits[rank] / total if total else None,
                    rpc_stats=trainer.rpc.stats.as_dict(),
                    components=trainer.clock.breakdown(),
                    cache_stats=(
                        pl.feature_store.cache_summary()
                        if hasattr(pl.feature_store, "cache_summary")
                        else {}
                    ),
                )
            )

        done_times = [r.done_s for r in self.request_records]
        first_arrival = float(times.min()) if n else 0.0
        duration_s = (max(done_times) - first_arrival) if done_times else 0.0
        return ServingReport(
            scenario=self.scenario,
            dataset=cluster.dataset.name,
            arrival=spec.describe(),
            num_machines=cluster.config.num_machines,
            trainers_per_machine=cluster.config.trainers_per_machine,
            num_requests=n,
            completed=len(self.request_records),
            offered_rate_rps=spec.rate_rps,
            slo_ms=spec.slo_ms,
            warmup_time_s=warmup_time_s,
            duration_s=duration_s,
            requests=self.request_records,
            worker_stats=worker_stats,
            store_summary=merged_store_summary(pipelines),
            wall_clock_s=time.perf_counter() - setup.wall_start,
        )

    # ------------------------------------------------------------------ #
    def _draw_users(self, phases: np.ndarray, seed: int):
        """Popularity-skewed user draw, routed by partition ownership.

        The candidate pool is the union of every worker's training seeds, so
        the requesting "users" are nodes the owning worker can both sample
        and label.  A seeded permutation defines the popularity order and a
        power-law (``zipf_alpha``) weights it; with ``phase_drift`` the
        peak-phase popularity order is the permutation rotated by half the
        pool — the working set moves between phases, which is what drags the
        cache hit rate in ``diurnal-cache-drift``.
        """
        trainers = self.cluster.trainers
        pools_local = [np.asarray(t.seeds_local, dtype=np.int64) for t in trainers]
        pool_local = np.concatenate(pools_local)
        pool_global = np.concatenate(
            [t.partition.owned_global[p] for t, p in zip(trainers, pools_local)]
        )
        pool_rank = np.concatenate(
            [np.full(len(p), r, dtype=np.int64) for r, p in enumerate(pools_local)]
        )
        size = len(pool_local)
        if size == 0:
            raise RuntimeError("no training seeds to serve requests for")

        rng = ensure_rng(seed)
        perm = rng.permutation(size)
        weights = (np.arange(size, dtype=np.float64) + 1.0) ** (
            -self.serving.zipf_alpha
        )
        weights /= weights.sum()
        draws = rng.choice(size, size=len(phases), p=weights)

        positions = perm[draws]
        if self.serving.phase_drift:
            shifted = np.roll(perm, size // 2)
            peak = np.asarray(phases) == 1
            positions = np.where(peak, shifted[draws], positions)
        return pool_global[positions], pool_local[positions], pool_rank[positions]
