"""Online inference serving on the simulated cluster.

The serving subsystem turns the training stack's sampler/RPC/cache machinery
into a request-driven product surface: seeded arrival processes
(:data:`~repro.serving.arrivals.ARRIVALS`) feed an event-driven
:class:`~repro.serving.engine.InferenceClusterEngine` whose per-request
latency ledgers roll up into a :class:`~repro.serving.report.ServingReport`.
Exposed through the ``serving`` entry of
:data:`~repro.training.engines.ENGINES`, the ``steady-poisson`` /
``diurnal-cache-drift`` / ``flash-crowd-burst`` scenarios, and the
``repro serve`` CLI command.
"""

from repro.serving.arrivals import ARRIVALS, PHASE_LABELS, ServingSpec, build_arrivals
from repro.serving.engine import InferenceClusterEngine
from repro.serving.report import RequestRecord, ServingReport, WorkerServeStats

__all__ = [
    "ARRIVALS",
    "PHASE_LABELS",
    "ServingSpec",
    "build_arrivals",
    "InferenceClusterEngine",
    "RequestRecord",
    "ServingReport",
    "WorkerServeStats",
]
