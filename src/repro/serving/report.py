"""Per-request ledgers and the run-level :class:`ServingReport`.

The serving engine books every request's life as four component times —
queue wait, ego-net sampling, feature fetch, forward compute — and the
report rolls those ledgers up into the tail metrics a serving system is
judged by: p50/p95/p99 latency, sustained throughput, SLO-violation rate,
and the per-tier cache hit rates that explain *why* the tail looks the way
it does.  Quantiles come from the shared
:func:`~repro.training.telemetry.percentile_summary`, the same rule the
training-side :class:`~repro.training.cluster_engine.ClusterReport` uses.

``as_dict()`` deliberately excludes wall-clock time and follows the repo's
conditional-key schema discipline (phase splits appear only when a second
phase exists), so canonical-JSON comparison of two same-seed reports is the
determinism test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.training.telemetry import percentile_summary

#: latency components, in request-lifecycle order.
COMPONENTS = ("queue_wait", "sample", "fetch", "compute")


@dataclass
class RequestRecord:
    """One served request's ledger (all times simulated seconds)."""

    request: int
    user: int                 # global node id of the requesting user
    global_rank: int          # worker that served it
    machine: int
    phase: int                # 0 steady, 1 peak/burst (ARRIVALS phases)
    arrival_s: float
    start_s: float
    done_s: float
    sample_s: float
    fetch_s: float
    compute_s: float

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> float:
        return self.sample_s + self.fetch_s + self.compute_s

    @property
    def latency_s(self) -> float:
        return self.done_s - self.arrival_s

    def component_times_s(self) -> Dict[str, float]:
        return {
            "queue_wait": self.queue_wait_s,
            "sample": self.sample_s,
            "fetch": self.fetch_s,
            "compute": self.compute_s,
        }


@dataclass
class WorkerServeStats:
    """One worker's (trainer context repurposed as a server) run summary."""

    global_rank: int
    machine: int
    local_rank: int
    requests: int
    busy_time_s: float
    hit_rate: Optional[float] = None
    rpc_stats: Dict[str, float] = field(default_factory=dict)
    components: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        out = {
            "global_rank": self.global_rank,
            "machine": self.machine,
            "local_rank": self.local_rank,
            "requests": self.requests,
            "busy_time_s": self.busy_time_s,
            "hit_rate": self.hit_rate,
            "rpc_stats": dict(self.rpc_stats),
            "components": dict(self.components),
        }
        if self.cache_stats:
            out["cache_stats"] = dict(self.cache_stats)
        return out


@dataclass
class ServingReport:
    """Everything one serving run produces (benchmarks, CLI, replay tests)."""

    scenario: Optional[str]
    dataset: str
    arrival: str                       # ServingSpec.describe() of the stream
    num_machines: int
    trainers_per_machine: int
    num_requests: int
    completed: int
    offered_rate_rps: float
    slo_ms: float
    warmup_time_s: float               # cache-warm/init cost, off the timeline
    duration_s: float                  # first arrival -> last completion
    requests: List[RequestRecord] = field(default_factory=list)
    worker_stats: List[WorkerServeStats] = field(default_factory=list)
    store_summary: Dict[str, float] = field(default_factory=dict)
    wall_clock_s: float = 0.0          # excluded from as_dict (not replayable)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def latency_ms(self) -> Dict[str, float]:
        """p50/p95/p99/mean/max end-to-end latency, milliseconds."""
        return percentile_summary(r.latency_s * 1e3 for r in self.requests)

    def component_ms(self) -> Dict[str, Dict[str, float]]:
        """Per-component latency summaries, milliseconds, lifecycle order."""
        out: Dict[str, Dict[str, float]] = {}
        for name in COMPONENTS:
            out[name] = percentile_summary(
                r.component_times_s()[name] * 1e3 for r in self.requests
            )
        return out

    @property
    def slo_violations(self) -> int:
        slo_s = self.slo_ms / 1e3
        return sum(1 for r in self.requests if r.latency_s > slo_s)

    @property
    def slo_violation_rate(self) -> float:
        return self.slo_violations / len(self.requests) if self.requests else 0.0

    def phase_latency_ms(self) -> Dict[str, Dict[str, float]]:
        """Latency summaries split by arrival phase (steady vs peak/burst).

        Empty when the stream is single-phase, so single-phase report schemas
        stay flat (the conditional-key discipline the golden fixtures follow).
        """
        phases = sorted({r.phase for r in self.requests})
        if len(phases) < 2:
            return {}
        from repro.serving.arrivals import PHASE_LABELS

        return {
            PHASE_LABELS.get(p, str(p)): percentile_summary(
                r.latency_s * 1e3 for r in self.requests if r.phase == p
            )
            for p in phases
        }

    @property
    def mean_hit_rate(self) -> Optional[float]:
        rates = [w.hit_rate for w in self.worker_stats if w.hit_rate is not None]
        return float(np.mean(rates)) if rates else None

    def mean_tier_hit_rates(self) -> Dict[str, float]:
        """Mean per-tier hit rate across workers (same keys as ClusterReport)."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for w in self.worker_stats:
            for key, value in w.cache_stats.items():
                if key.endswith(".hit_rate"):
                    prefix = key[: -len(".hit_rate")]
                    sums[prefix] = sums.get(prefix, 0.0) + float(value)
                    counts[prefix] = counts.get(prefix, 0) + 1
        return {k: sums[k] / counts[k] for k in sums}

    @property
    def mean_utilization(self) -> float:
        """Mean fraction of the serving window workers spent busy."""
        if not self.worker_stats or self.duration_s <= 0:
            return 0.0
        busy = [w.busy_time_s for w in self.worker_stats]
        return float(np.mean(busy) / self.duration_s)

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """Flat serving metrics (benchmark tables and the CLI)."""
        latency = self.latency_ms()
        out: Dict[str, object] = {
            "scenario": self.scenario or "",
            "arrival": self.arrival,
            "dataset": self.dataset,
            "num_machines": float(self.num_machines),
            "world_size": float(self.num_machines * self.trainers_per_machine),
            "num_requests": float(self.num_requests),
            "completed": float(self.completed),
            "offered_rate_rps": self.offered_rate_rps,
            "throughput_rps": self.throughput_rps,
            "duration_s": self.duration_s,
            "warmup_time_s": self.warmup_time_s,
            "mean_utilization": self.mean_utilization,
            "slo_ms": self.slo_ms,
            "slo_violations": float(self.slo_violations),
            "slo_violation_rate": self.slo_violation_rate,
        }
        for key in ("p50", "p95", "p99", "mean", "max"):
            out[f"latency_ms.{key}"] = latency[key]
        if self.mean_hit_rate is not None:
            out["mean_hit_rate"] = self.mean_hit_rate
        for prefix, rate in sorted(self.mean_tier_hit_rates().items()):
            out[f"cache.{prefix}.hit_rate"] = rate
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable dump (trace files, replay/determinism tests)."""
        out: Dict[str, object] = {
            "scenario": self.scenario,
            "dataset": self.dataset,
            "arrival": self.arrival,
            "num_machines": self.num_machines,
            "trainers_per_machine": self.trainers_per_machine,
            "num_requests": self.num_requests,
            "completed": self.completed,
            "offered_rate_rps": self.offered_rate_rps,
            "throughput_rps": self.throughput_rps,
            "duration_s": self.duration_s,
            "warmup_time_s": self.warmup_time_s,
            "slo_ms": self.slo_ms,
            "slo_violations": self.slo_violations,
            "slo_violation_rate": self.slo_violation_rate,
            "latency_ms": self.latency_ms(),
            "component_ms": self.component_ms(),
            "requests": [
                {
                    "request": r.request,
                    "user": r.user,
                    "global_rank": r.global_rank,
                    "machine": r.machine,
                    "phase": r.phase,
                    "arrival_s": r.arrival_s,
                    "start_s": r.start_s,
                    "done_s": r.done_s,
                    "queue_wait_s": r.queue_wait_s,
                    "sample_s": r.sample_s,
                    "fetch_s": r.fetch_s,
                    "compute_s": r.compute_s,
                }
                for r in self.requests
            ],
            "workers": [w.as_dict() for w in self.worker_stats],
            "store_summary": dict(self.store_summary),
        }
        phase_split = self.phase_latency_ms()
        if phase_split:
            out["phase_latency_ms"] = phase_split
        return out
