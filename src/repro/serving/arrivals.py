"""Seeded open-loop arrival processes for the serving engine.

An arrival process turns ``(num_requests, seed)`` into the timestamps at
which requests hit the cluster — *open loop*: arrivals never wait for
completions, so queueing delay is visible instead of being absorbed by the
generator (the classic closed-loop measurement bug).  Three generators ship
in the :data:`ARRIVALS` registry:

* ``poisson`` — memoryless arrivals at a constant rate (exponential gaps);
* ``diurnal`` — a square-wave rate alternating between a peak and a trough,
  reusing the period/duty parameterization of
  :class:`~repro.events.schedule.CongestionSpec` (``peak`` iff
  ``(t % period_s) < duty * period_s``);
* ``flash-crowd`` — a Poisson baseline plus a burst of
  ``round(num_requests * burst_fraction)`` extra arrivals compressed into a
  short window, the serving analogue of the training side's transient
  failures: a stress input, not a steady state.

Every generator returns ``(times, phases)`` — ``phases[i]`` is ``1`` when
request ``i`` belongs to the peak/burst regime and ``0`` otherwise — so the
report can split latency tails by regime without re-deriving the schedule.
Generation is a pure function of ``(spec, num_requests, seed)``: same seed ⇒
bit-identical arrays, which is what pins the serving engine's replay tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro.utils.registry import Registry
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction

ARRIVALS = Registry("arrival process")

#: phases value -> human label (report keys, CLI tables).
PHASE_LABELS = {0: "steady", 1: "peak"}


@dataclass(frozen=True)
class ServingSpec:
    """Parameters of one serving workload (arrival process + SLO + popularity).

    ``arrival`` names an :data:`ARRIVALS` entry; the remaining knobs are
    grouped by the generator that reads them.  ``zipf_alpha`` skews the
    per-request user draw toward popular users (0 = uniform), and
    ``phase_drift`` rotates which users are popular between the steady and
    peak phases — the mechanism behind the ``diurnal-cache-drift`` scenario.
    Validated eagerly, same contract as :class:`~repro.cache.config.CacheConfig`.
    """

    arrival: str = "poisson"
    rate_rps: float = 2000.0
    num_requests: int = 256
    slo_ms: float = 5.0
    zipf_alpha: float = 0.8
    phase_drift: bool = False
    # diurnal knobs (CongestionSpec's square-wave parameterization)
    period_s: float = 0.05
    duty: float = 0.5
    trough_fraction: float = 0.25
    # flash-crowd knobs (burst window relative to the baseline horizon)
    burst_fraction: float = 0.3
    burst_start_fraction: float = 0.5
    burst_duration_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")
        if self.num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {self.num_requests}")
        if self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {self.slo_ms}")
        if self.zipf_alpha < 0:
            raise ValueError(f"zipf_alpha must be >= 0, got {self.zipf_alpha}")
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")
        if not 0 < self.duty < 1:
            raise ValueError(f"duty must be in (0, 1), got {self.duty}")
        check_fraction(self.trough_fraction, "trough_fraction")
        if not 0 < self.burst_fraction < 1:
            raise ValueError(
                f"burst_fraction must be in (0, 1), got {self.burst_fraction}"
            )
        check_fraction(self.burst_start_fraction, "burst_start_fraction")
        if not 0 < self.burst_duration_fraction <= 1:
            raise ValueError(
                "burst_duration_fraction must be in (0, 1], "
                f"got {self.burst_duration_fraction}"
            )
        object.__setattr__(self, "arrival", ARRIVALS.resolve(self.arrival))

    # ------------------------------------------------------------------ #
    @property
    def slo_s(self) -> float:
        return self.slo_ms / 1e3

    def with_overrides(self, **overrides) -> "ServingSpec":
        """A copy with selected fields replaced; ``None`` values are ignored."""
        filtered = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **filtered)

    def describe(self) -> str:
        """Compact arrival-process label for catalogs and CLI tables."""
        if self.arrival == "diurnal":
            trough = self.rate_rps * self.trough_fraction
            return (
                f"diurnal({self.rate_rps:g}↔{trough:g} rps, "
                f"period={self.period_s * 1e3:g} ms)"
            )
        if self.arrival == "flash-crowd":
            return (
                f"flash-crowd({self.rate_rps:g} rps, "
                f"burst={self.burst_fraction:.0%})"
            )
        return f"poisson({self.rate_rps:g} rps)"


# --------------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------------- #
@ARRIVALS.register("poisson", aliases=("steady",))
class PoissonArrivals:
    """Constant-rate memoryless arrivals: i.i.d. exponential inter-arrival gaps."""

    name = "poisson"

    def __init__(self, spec: ServingSpec):
        self.spec = spec

    def generate(self, num_requests: int, seed) -> Tuple[np.ndarray, np.ndarray]:
        rng = ensure_rng(seed)
        gaps = rng.exponential(1.0 / self.spec.rate_rps, size=num_requests)
        return np.cumsum(gaps), np.zeros(num_requests, dtype=np.int64)


@ARRIVALS.register("diurnal", aliases=("square-wave",))
class DiurnalArrivals:
    """Square-wave rate: ``rate_rps`` during the peak, ``rate_rps *
    trough_fraction`` during the trough.

    The wave is the :class:`~repro.events.schedule.CongestionSpec` predicate —
    peak iff ``(t % period_s) < duty * period_s`` — applied to an arrival rate
    instead of link latency.  Each segment draws a Poisson count at its rate
    and scatters the arrivals uniformly inside the segment, which is exactly a
    piecewise-constant inhomogeneous Poisson process.
    """

    name = "diurnal"

    def __init__(self, spec: ServingSpec):
        self.spec = spec

    def generate(self, num_requests: int, seed) -> Tuple[np.ndarray, np.ndarray]:
        rng = ensure_rng(seed)
        spec = self.spec
        peak_len = spec.duty * spec.period_s
        trough_len = spec.period_s - peak_len
        trough_rate = spec.rate_rps * spec.trough_fraction
        chunks, phase_chunks = [], []
        start, count, peak = 0.0, 0, True
        while count < num_requests:
            seg_len = peak_len if peak else trough_len
            rate = spec.rate_rps if peak else trough_rate
            k = int(rng.poisson(rate * seg_len)) if rate > 0 else 0
            if k:
                chunks.append(start + np.sort(rng.uniform(0.0, seg_len, size=k)))
                phase_chunks.append(np.full(k, int(peak), dtype=np.int64))
                count += k
            start += seg_len
            peak = not peak
        times = np.concatenate(chunks)[:num_requests]
        phases = np.concatenate(phase_chunks)[:num_requests]
        return times, phases


@ARRIVALS.register("flash-crowd", aliases=("burst", "flash"))
class FlashCrowdArrivals:
    """A Poisson baseline plus a uniform burst in a short window.

    Exactly ``round(num_requests * burst_fraction)`` arrivals are burst-phase
    (mass conservation is an equality the property tests assert, not a
    tolerance); the window starts at ``burst_start_fraction`` of the baseline
    horizon and spans ``burst_duration_fraction`` of it.
    """

    name = "flash-crowd"

    def __init__(self, spec: ServingSpec):
        self.spec = spec

    def generate(self, num_requests: int, seed) -> Tuple[np.ndarray, np.ndarray]:
        rng = ensure_rng(seed)
        spec = self.spec
        n_burst = min(int(round(num_requests * spec.burst_fraction)), num_requests - 1)
        n_burst = max(n_burst, 0)
        n_base = num_requests - n_burst
        base = np.cumsum(rng.exponential(1.0 / spec.rate_rps, size=n_base))
        horizon = float(base[-1]) if n_base else num_requests / spec.rate_rps
        window_start = spec.burst_start_fraction * horizon
        window_len = spec.burst_duration_fraction * horizon
        burst = window_start + np.sort(rng.uniform(0.0, window_len, size=n_burst))
        times = np.concatenate([base, burst])
        phases = np.concatenate(
            [np.zeros(n_base, dtype=np.int64), np.ones(n_burst, dtype=np.int64)]
        )
        order = np.argsort(times, kind="stable")
        return times[order], phases[order]


def build_arrivals(spec: ServingSpec):
    """The arrival process instance named by ``spec.arrival``."""
    return ARRIVALS.build(spec.arrival, spec)
