"""The :class:`ClusterScenario` recipe type and the scenario registry."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.core.config import PrefetchConfig
from repro.distributed.cluster import ClusterConfig, SimCluster
from repro.distributed.cost_model import CostModel
from repro.events.schedule import CongestionSpec, ElasticSpec, FailureSpec
from repro.graph.datasets import GraphDataset, load_dataset
from repro.serving.arrivals import ServingSpec
from repro.training.cluster_engine import ClusterReport
from repro.training.config import TrainConfig
from repro.training.engines import ENGINES
from repro.utils.registry import Registry

SCENARIOS = Registry("scenario")


class _Unset:
    """Singleton marker: 'explicitly clear this field to None' in overrides.

    ``with_overrides`` ignores ``None`` (so CLI flags pass through
    unconditionally), which historically made it impossible to *clear* an
    optional field like ``failures`` from a base scenario.  Passing ``UNSET``
    maps the field to ``None`` explicitly.  The singleton survives pickling
    (``__new__`` returns the module instance) so identity checks stay valid.
    """

    _instance = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"


UNSET = _Unset()


@dataclass(frozen=True)
class ClusterScenario:
    """A named, fully specified cluster workload (topology + data path).

    ``compute_multipliers`` and ``partition_method`` are the two levers the
    shipped scenarios pull; ``cost_model_scaling`` applies multiplicative
    overrides to the backend's preset cost model (e.g. a slower network).
    ``paper_note`` maps the scenario onto the paper's deployment table for the
    README/CLI listings.
    """

    name: str
    description: str
    dataset: str = "products"
    scale: float = 0.1
    num_machines: int = 2
    trainers_per_machine: int = 2
    batch_size: int = 64
    fanouts: Tuple[int, ...] = (5, 10)
    partition_method: str = "metis"
    backend: str = "cpu"
    compute_multipliers: Optional[Tuple[float, ...]] = None
    cost_model_scaling: Dict[str, float] = field(default_factory=dict)
    pipeline: str = "prefetch"
    prefetch_config: Optional[PrefetchConfig] = None
    epochs: int = 3
    paper_note: str = ""
    # Hot-path registry keys (see SAMPLERS / RPC_CHANNELS); the defaults keep
    # every shipped scenario bit-identical to the pre-registry behavior.
    sampler: str = "legacy"
    rpc: str = "per-call"
    # Tiered feature cache (repro.cache): None runs the tier-less data path;
    # a CacheConfig parameterizes the "tiered-cache" pipeline (or threads a
    # machine-shared tier behind the prefetch buffer when tiers >= 2).
    cache_config: Optional[CacheConfig] = None
    # Hot-set drift: per-epoch active seed window (fraction, rotation); the
    # defaults iterate the full seed set exactly like the pre-drift loader.
    seed_active_fraction: float = 1.0
    seed_rotation: float = 0.0
    # Execution backend (see repro.training.engines.ENGINES) and — for the
    # event-driven backend — the gradient sync policy and its knobs
    # (repro.events.sync.SYNC_POLICIES).  The defaults run every pre-existing
    # scenario through the lockstep engine unchanged.
    engine: str = "lockstep"
    sync: str = "allreduce-barrier"
    staleness: int = 1
    sync_period: int = 4
    # Execution backend (repro.training.backends.EXECUTION_BACKENDS): "inline"
    # steps trainers in-process exactly like the historical loops; the
    # "process-pool" backend fans whole machines out to worker processes over
    # shared-memory stores and merges outcomes bit-identically.  ``workers``
    # only applies to the pool (None = one worker per machine).
    execution_backend: str = "inline"
    workers: Optional[int] = None
    # Event-driven stress inputs (all repro.events.schedule ScheduleSpec
    # implementations): a seeded transient-failure schedule, a time-varying
    # RPC congestion profile, and an elastic membership timeline.
    failures: Optional[FailureSpec] = None
    congestion: Optional[CongestionSpec] = None
    elastic: Optional[ElasticSpec] = None
    # Online-inference workload (engine="serving" only): the arrival process,
    # SLO, and popularity skew of the request stream (repro.serving.arrivals).
    serving: Optional[ServingSpec] = None

    # ------------------------------------------------------------------ #
    @property
    def execution(self) -> str:
        """Engine/sync label for catalogs and the CLI (e.g. ``async · local-sgd(H=4)``)."""
        from repro.events.sync import SYNC_POLICIES

        engine = ENGINES.resolve(self.engine)
        if engine == "lockstep":
            return "lockstep"
        if engine == "serving":
            arrival = self.serving.describe() if self.serving is not None else "no stream"
            return f"serving · {arrival}"
        sync = SYNC_POLICIES.resolve(self.sync)
        if sync == "bounded-staleness":
            sync = f"bounded-staleness(K={self.staleness})"
        elif sync == "local-sgd":
            sync = f"local-sgd(H={self.sync_period})"
        return f"async · {sync}"

    # ------------------------------------------------------------------ #
    def with_overrides(self, **overrides) -> "ClusterScenario":
        """A copy with selected fields replaced (CLI/benchmark knobs).

        ``None`` values are ignored so CLI flags can be passed through
        unconditionally; pass :data:`UNSET` to explicitly clear an optional
        field to ``None`` (e.g. strip ``failures`` from a base scenario).
        Unknown field names raise ``ValueError`` listing the valid keys.
        """
        valid = set(self.__dataclass_fields__)
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ValueError(
                f"unknown scenario field(s) {unknown}; "
                f"valid fields: {sorted(valid)}"
            )
        filtered = {
            k: (None if v is UNSET else v)
            for k, v in overrides.items()
            if v is not None
        }
        if "num_machines" in filtered:
            # Keep per-machine vectors aligned when the topology is resized.
            # Resizing also applies when multipliers arrive in the *same*
            # call: otherwise chained overrides (scenario -> preset -> CLI)
            # and the merged equivalent would disagree — the three-layer
            # merge must compose associatively.
            filtered["compute_multipliers"] = self._resize_multipliers(
                int(filtered["num_machines"]),
                filtered.get("compute_multipliers", self.compute_multipliers),
            )
        return replace(self, **filtered)

    def _resize_multipliers(
        self, num_machines: int, multipliers
    ) -> Optional[Tuple[float, ...]]:
        if multipliers is None:
            return None
        current = tuple(multipliers)
        if len(current) >= num_machines:
            return current[:num_machines]
        return current + (1.0,) * (num_machines - len(current))

    # ------------------------------------------------------------------ #
    def cluster_config(self, seed: int = 0) -> ClusterConfig:
        return ClusterConfig(
            num_machines=self.num_machines,
            trainers_per_machine=self.trainers_per_machine,
            batch_size=self.batch_size,
            fanouts=self.fanouts,
            partition_method=self.partition_method,
            backend=self.backend,
            seed=seed,
            compute_multipliers=self.compute_multipliers,
            sampler=self.sampler,
            rpc=self.rpc,
            seed_active_fraction=self.seed_active_fraction,
            seed_rotation=self.seed_rotation,
            congestion=self.congestion,
        )

    def cost_model(self) -> CostModel:
        model = CostModel.preset(self.backend)
        if self.cost_model_scaling:
            model = model.scaled(**self.cost_model_scaling)
        return model

    def materialize(
        self,
        seed: int = 0,
        train_config: Optional[TrainConfig] = None,
        dataset: Optional[GraphDataset] = None,
    ) -> "ClusterWorkload":
        """Build the dataset, cluster, and engine for this scenario."""
        if dataset is None:
            dataset = load_dataset(self.dataset, scale=self.scale, seed=seed)
        cluster = SimCluster(dataset, self.cluster_config(seed), cost_model=self.cost_model())
        if train_config is None:
            train_config = TrainConfig(epochs=self.epochs, hidden_dim=32, seed=seed)
        engine = ENGINES.build(
            self.engine,
            cluster,
            train_config,
            scenario=self.name,
            sync=self.sync,
            staleness=self.staleness,
            sync_period=self.sync_period,
            failures=self.failures,
            elastic=self.elastic,
            serving=self.serving,
            execution_backend=self.execution_backend,
            workers=self.workers,
        )
        return ClusterWorkload(scenario=self, dataset=dataset, cluster=cluster, engine=engine)


@dataclass
class ClusterWorkload:
    """A materialized scenario, ready to run.

    ``engine`` is whichever backend the scenario selected from
    :data:`~repro.training.engines.ENGINES`; all three expose the same
    ``run(pipeline, ...)`` contract — the training backends return a
    :class:`~repro.training.cluster_engine.ClusterReport`, the serving
    backend a :class:`~repro.serving.report.ServingReport`.
    """

    scenario: ClusterScenario
    dataset: GraphDataset
    cluster: SimCluster
    engine: object

    def run(
        self,
        pipeline: Optional[str] = None,
        prefetch_config: Optional[PrefetchConfig] = None,
        eviction_policy=None,
        cache_config: Optional[CacheConfig] = None,
    ) -> "ClusterReport":
        """Execute the scenario's pipeline; explicit arguments override the recipe."""
        name = pipeline or self.scenario.pipeline
        prefetch = prefetch_config or self.scenario.prefetch_config
        if name != "baseline" and prefetch is None:
            prefetch = PrefetchConfig()
        cache = cache_config or self.scenario.cache_config
        return self.engine.run(
            name,
            prefetch_config=prefetch,
            eviction_policy=eviction_policy,
            cache_config=cache,
        )


def available_scenarios(engine: Optional[str] = None) -> list:
    """Sorted names of the registered scenarios.

    ``engine`` filters by resolved execution backend (``"lockstep"``,
    ``"async"``, ``"serving"``, or any :data:`~repro.training.engines.ENGINES`
    alias); ``None`` returns everything.
    """
    names = SCENARIOS.names()
    if engine is None:
        return names
    resolved = ENGINES.resolve(engine)
    return [n for n in names
            if ENGINES.resolve(SCENARIOS.build(n).engine) == resolved]


def serving_scenarios() -> list:
    """Names of the scenarios that run the online-inference serving engine."""
    return available_scenarios(engine="serving")


def training_scenarios() -> list:
    """Names of the scenarios that train (lockstep or async backend)."""
    serving = set(serving_scenarios())
    return [n for n in SCENARIOS.names() if n not in serving]


def build_scenario(name: str, seed: int = 0, train_config: Optional[TrainConfig] = None,
                   **overrides) -> ClusterWorkload:
    """Materialize the named scenario, applying any field overrides.

    ``overrides`` accepts any :class:`ClusterScenario` field (``scale``,
    ``num_machines``, ``trainers_per_machine``, ``batch_size``, ``epochs``,
    ``backend``, ...); ``None`` values are ignored so CLI flags can be passed
    through unconditionally.
    """
    scenario: ClusterScenario = SCENARIOS.build(name)
    scenario = scenario.with_overrides(**overrides)
    return scenario.materialize(seed=seed, train_config=train_config)
