"""Named cluster workloads: string-keyed scenarios for benchmarks and the CLI.

A :class:`ClusterScenario` is a recipe for a full cluster training workload —
dataset analog, topology, partitioning policy, per-machine heterogeneity, the
execution backend (lockstep or event-driven, with its sync policy), the
pipeline to run, and its prefetch/cache tuning.  Scenarios are registered by
name in :data:`SCENARIOS`, so diverse deployments are exercised the same way
pipelines and eviction policies are selected everywhere else in the package::

    from repro.scenarios import build_scenario

    workload = build_scenario("skewed-partitions", seed=0, scale=0.1)
    report = workload.run()          # -> ClusterReport
    print(report.summary())

The shipped library (:mod:`repro.scenarios.library`) spans the deployment
axes of the paper's evaluation (``uniform``, ``skewed-partitions``,
``straggler-machine``, ``hot-halo``), the cache-stress workloads
(``hot-set-drift``, ``cache-churn``), the event-driven workloads only the
async backend can express (``async-staleness``, ``trainer-flaky``,
``congested-link``), and the online-inference serving streams
(``steady-poisson``, ``diurnal-cache-drift``, ``flash-crowd-burst``) that run
through ``repro serve`` and return a
:class:`~repro.serving.report.ServingReport`.  The rendered catalog lives in
``docs/SCENARIOS.md`` (regenerate with ``repro scenarios --markdown``; CI
drift-checks it).
"""

from repro.scenarios.catalog import catalog_markdown
from repro.scenarios.registry import (
    SCENARIOS,
    UNSET,
    ClusterScenario,
    ClusterWorkload,
    available_scenarios,
    build_scenario,
    serving_scenarios,
    training_scenarios,
)
from repro.scenarios import library as _library  # noqa: F401  (registers the scenarios)

__all__ = [
    "SCENARIOS",
    "UNSET",
    "ClusterScenario",
    "ClusterWorkload",
    "available_scenarios",
    "build_scenario",
    "catalog_markdown",
    "serving_scenarios",
    "training_scenarios",
]
