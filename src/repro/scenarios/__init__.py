"""Named cluster workloads: string-keyed scenarios for benchmarks and the CLI.

A :class:`ClusterScenario` is a recipe for a full cluster training workload —
dataset analog, topology, partitioning policy, per-machine heterogeneity, the
pipeline to run, and its prefetch tuning.  Scenarios are registered by name in
:data:`SCENARIOS`, so diverse deployments are exercised the same way pipelines
and eviction policies are selected everywhere else in the package::

    from repro.scenarios import build_scenario

    workload = build_scenario("skewed-partitions", seed=0, scale=0.1)
    report = workload.run()          # -> ClusterReport
    print(report.summary())

The shipped library (:mod:`repro.scenarios.library`) mirrors the deployment
axes of the paper's evaluation: ``uniform`` is the nominal one-partition-per-
machine Perlmutter layout, ``skewed-partitions`` breaks METIS's balance,
``straggler-machine`` slows one machine's compute, and ``hot-halo`` drives
power-law cross-partition traffic through a locality-free partitioning of a
hub-heavy graph.
"""

from repro.scenarios.registry import (
    SCENARIOS,
    ClusterScenario,
    ClusterWorkload,
    available_scenarios,
    build_scenario,
)
from repro.scenarios import library as _library  # noqa: F401  (registers the scenarios)

__all__ = [
    "SCENARIOS",
    "ClusterScenario",
    "ClusterWorkload",
    "available_scenarios",
    "build_scenario",
]
