"""The shipped scenario library: six named cluster workloads.

Each factory returns a fresh :class:`~repro.scenarios.registry.ClusterScenario`
so callers can override fields without mutating shared state.  The library
spans the deployment axes the paper's evaluation varies (Section V, Tables
II–III) — partition balance, machine homogeneity, and cross-partition traffic
shape — plus two cache-stress workloads (``hot-set-drift``, ``cache-churn``)
that exercise the tiered feature cache's admission/eviction policies.
"""

from __future__ import annotations

from repro.cache.config import CacheConfig
from repro.core.config import PrefetchConfig
from repro.scenarios.registry import SCENARIOS, ClusterScenario


@SCENARIOS.register("uniform", aliases=("nominal",))
def uniform_scenario() -> ClusterScenario:
    """The paper's nominal deployment: balanced METIS partitions, equal machines."""
    return ClusterScenario(
        name="uniform",
        description="Balanced METIS partitions on homogeneous machines "
                    "(one partition per machine, equal trainers).",
        dataset="products",
        partition_method="metis",
        prefetch_config=PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16),
        paper_note="Nominal Perlmutter layout: 1 partition/machine, 4 trainers/machine "
                   "(Table III row 1); here scaled to simulator size.",
    )


@SCENARIOS.register("skewed-partitions", aliases=("skewed",))
def skewed_partitions_scenario() -> ClusterScenario:
    """Geometrically imbalanced partitions: the big partition's trainers straggle."""
    return ClusterScenario(
        name="skewed-partitions",
        description="Geometric partition sizes (skewed assignment) so trainers on "
                    "the large partition run more minibatches per epoch and everyone "
                    "else waits at the allreduce barrier.",
        dataset="products",
        partition_method="skewed",
        prefetch_config=PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16),
        paper_note="Stress case absent from the paper's balanced METIS setup: "
                   "load imbalance > 1 turns barrier wait into the dominant stall.",
    )


@SCENARIOS.register("straggler-machine", aliases=("straggler",))
def straggler_machine_scenario() -> ClusterScenario:
    """One slow machine: machine 0 computes 2.5x slower than its peers."""
    return ClusterScenario(
        name="straggler-machine",
        description="Homogeneous partitions but machine 0's compute is 2.5x slower; "
                    "synchronous DDP drags every trainer to the straggler's pace.",
        dataset="products",
        partition_method="metis",
        compute_multipliers=(2.5, 1.0),
        prefetch_config=PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16),
        paper_note="Models a de-rated/oversubscribed node in the paper's 4-trainers-"
                   "per-machine deployment; overlap (Eqs. 3-5) hides prep behind the "
                   "longer DDP window on the slow machine.",
    )


@SCENARIOS.register("hot-halo", aliases=("powerlaw-halo",))
def hot_halo_scenario() -> ClusterScenario:
    """Power-law cross-partition traffic: hub-heavy graph, locality-free cut."""
    return ClusterScenario(
        name="hot-halo",
        description="RMAT (hub-heavy) graph partitioned randomly, so halo traffic "
                    "concentrates on a few high-degree nodes — the regime where a "
                    "scored prefetch buffer pays off most.",
        dataset="papers",
        partition_method="random",
        prefetch_config=PrefetchConfig(halo_fraction=0.25, gamma=0.995, delta=8),
        paper_note="Papers100M analog (Table II): heavy-tailed degrees mean the top "
                   "halo nodes serve most remote requests (Fig. 10/11 regime).",
    )


@SCENARIOS.register("hot-set-drift", aliases=("drift",))
def hot_set_drift_scenario() -> ClusterScenario:
    """The halo hot set drifts per epoch: static caches decay, adaptive tiers track.

    Each epoch only 40% of a trainer's seeds are active, and the window
    rotates by 30% of the seed set per epoch — so the sampled halo
    neighborhood (and with it the profitable cache contents) moves over
    training.  On the flat-degree ``products`` graph degree rank is a weak
    predictor of the drifting hot set, so the default static-degree tier (the
    paper's Fig. 10 decay regime) loses measurably to a two-tier
    always-admission/LRU stack with the adaptive controller — the gap
    ``bench_cache_tiers.py`` charts and CI gates on.
    """
    return ClusterScenario(
        name="hot-set-drift",
        description="Rotating per-epoch seed window (40% active, 30% rotation) on a "
                    "flat-degree graph: the halo hot set drifts, so a once-populated "
                    "degree cache decays while adaptive tier policies track the drift.",
        dataset="products",
        partition_method="random",
        pipeline="tiered-cache",
        prefetch_config=PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=8),
        cache_config=CacheConfig(),  # static-degree single tier: the decaying baseline
        seed_active_fraction=0.4,
        seed_rotation=0.3,
        epochs=4,
        paper_note="Extends Fig. 10's hit-rate progression to a non-stationary access "
                   "pattern: the regime where continuous admission/eviction beats any "
                   "once-populated cache.",
    )


@SCENARIOS.register("cache-churn", aliases=("churn",))
def cache_churn_scenario() -> ClusterScenario:
    """A deliberately undersized two-tier cache under diverse halo traffic.

    A small row budget (f_h = 0.1) split across a hot and a machine-shared
    tier forces constant admission/eviction churn — the stress case for
    eviction-policy quality and for the adaptive capacity controller, which
    re-splits the hot/shared budgets from the observed per-epoch hit rates.
    """
    return ClusterScenario(
        name="cache-churn",
        description="Undersized two-tier cache (f_h=0.1, hot+machine-shared, CLOCK "
                    "eviction, adaptive budget re-splitting) under locality-free "
                    "random partitioning: every minibatch churns the tiers.",
        dataset="products",
        partition_method="random",
        pipeline="tiered-cache",
        prefetch_config=PrefetchConfig(halo_fraction=0.1, gamma=0.995, delta=8),
        cache_config=CacheConfig(
            tiers=2,
            admission="always",
            eviction="clock",
            shared_admission="always",
            shared_eviction="lru",
            adaptive=True,
        ),
        epochs=3,
        paper_note="Memory/quality trade-off (Fig. 14) pushed past the paper's "
                   "smallest buffer: quantifies how policy choice moderates thrash "
                   "when the budget cannot hold the working set.",
    )
