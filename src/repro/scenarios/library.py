"""The shipped scenario library: four named cluster workloads.

Each factory returns a fresh :class:`~repro.scenarios.registry.ClusterScenario`
so callers can override fields without mutating shared state.  The library
spans the deployment axes the paper's evaluation varies (Section V, Tables
II–III): partition balance, machine homogeneity, and cross-partition traffic
shape.
"""

from __future__ import annotations

from repro.core.config import PrefetchConfig
from repro.scenarios.registry import SCENARIOS, ClusterScenario


@SCENARIOS.register("uniform", aliases=("nominal",))
def uniform_scenario() -> ClusterScenario:
    """The paper's nominal deployment: balanced METIS partitions, equal machines."""
    return ClusterScenario(
        name="uniform",
        description="Balanced METIS partitions on homogeneous machines "
                    "(one partition per machine, equal trainers).",
        dataset="products",
        partition_method="metis",
        prefetch_config=PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16),
        paper_note="Nominal Perlmutter layout: 1 partition/machine, 4 trainers/machine "
                   "(Table III row 1); here scaled to simulator size.",
    )


@SCENARIOS.register("skewed-partitions", aliases=("skewed",))
def skewed_partitions_scenario() -> ClusterScenario:
    """Geometrically imbalanced partitions: the big partition's trainers straggle."""
    return ClusterScenario(
        name="skewed-partitions",
        description="Geometric partition sizes (skewed assignment) so trainers on "
                    "the large partition run more minibatches per epoch and everyone "
                    "else waits at the allreduce barrier.",
        dataset="products",
        partition_method="skewed",
        prefetch_config=PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16),
        paper_note="Stress case absent from the paper's balanced METIS setup: "
                   "load imbalance > 1 turns barrier wait into the dominant stall.",
    )


@SCENARIOS.register("straggler-machine", aliases=("straggler",))
def straggler_machine_scenario() -> ClusterScenario:
    """One slow machine: machine 0 computes 2.5x slower than its peers."""
    return ClusterScenario(
        name="straggler-machine",
        description="Homogeneous partitions but machine 0's compute is 2.5x slower; "
                    "synchronous DDP drags every trainer to the straggler's pace.",
        dataset="products",
        partition_method="metis",
        compute_multipliers=(2.5, 1.0),
        prefetch_config=PrefetchConfig(halo_fraction=0.35, gamma=0.995, delta=16),
        paper_note="Models a de-rated/oversubscribed node in the paper's 4-trainers-"
                   "per-machine deployment; overlap (Eqs. 3-5) hides prep behind the "
                   "longer DDP window on the slow machine.",
    )


@SCENARIOS.register("hot-halo", aliases=("powerlaw-halo",))
def hot_halo_scenario() -> ClusterScenario:
    """Power-law cross-partition traffic: hub-heavy graph, locality-free cut."""
    return ClusterScenario(
        name="hot-halo",
        description="RMAT (hub-heavy) graph partitioned randomly, so halo traffic "
                    "concentrates on a few high-degree nodes — the regime where a "
                    "scored prefetch buffer pays off most.",
        dataset="papers",
        partition_method="random",
        prefetch_config=PrefetchConfig(halo_fraction=0.25, gamma=0.995, delta=8),
        paper_note="Papers100M analog (Table II): heavy-tailed degrees mean the top "
                   "halo nodes serve most remote requests (Fig. 10/11 regime).",
    )
